"""Structured spans and events on the discrete-event clock.

Every record carries a virtual-time timestamp (integer microseconds from
the simulator), so two runs with the same seed produce byte-identical
event streams.  Spans are recorded as a *pair* of records — ``span_begin``
at open and ``span_end`` at close — which keeps the trace buffer sorted by
timestamp even for spans that stay open across many sim events (a tenant's
whole waypoint, a container's lifetime).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List


class TraceRecord(dict):
    """One trace line; a plain dict so JSON export is free."""

    __slots__ = ()


class Span:
    """An open span.  ``end()`` (or exiting the context) closes it.

    The attrs dict starts out *shared* with the ``span_begin`` record
    (lazy payload: most spans are never annotated, so most spans never
    copy).  The first mutation — ``annotate()`` or ``end(**attrs)`` —
    copies it, so the begin record always keeps its as-of-open view.
    """

    __slots__ = ("_tracer", "span_id", "name", "attrs", "t_start", "closed",
                 "_shared")

    def __init__(self, tracer: "Tracer", span_id: int, name: str,
                 t_start: int, attrs: Dict[str, Any], shared: bool = False):
        self._tracer = tracer
        self.span_id = span_id
        self.name = name
        self.attrs = attrs
        self.t_start = t_start
        self.closed = False
        self._shared = shared

    def _own_attrs(self) -> Dict[str, Any]:
        if self._shared:
            self.attrs = dict(self.attrs)
            self._shared = False
        return self.attrs

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes that will ship with the ``span_end`` record."""
        if self.closed:
            # The end record already references attrs; mutating it now
            # would rewrite recorded history.
            return
        self._own_attrs().update(attrs)

    def end(self, **attrs: Any) -> int:
        """Close the span; returns its duration in sim microseconds."""
        if self.closed:
            return 0
        self.closed = True
        if attrs:
            self._own_attrs().update(attrs)
        return self._tracer._end_span(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"<Span #{self.span_id} {self.name!r} {state}>"


class Tracer:
    """Buffers timestamped events and spans for one registry."""

    def __init__(self, clock: Callable[[], int]):
        self._clock = clock
        self._span_ids = itertools.count(1)
        self.records: List[TraceRecord] = []
        #: (name, duration_us) of every closed span, for the report.
        self.closed_spans: List[tuple] = []
        #: run-level context stamped on every record while set (e.g. the
        #: schedule id during exploration).  Empty = no ``ctx`` field, so
        #: default traces are byte-identical to pre-context ones.
        self._context: Dict[str, Any] = {}

    def set_clock(self, clock: Callable[[], int]) -> None:
        self._clock = clock

    def set_context(self, **attrs: Any) -> None:
        """Replace the run-level context carried by subsequent records.

        Calling with no attributes clears it.  Exploration runs set
        ``schedule=<id>`` here so every trace line names the same-tick
        schedule it was recorded under (see docs/EXPLORATION.md).
        """
        self._context = dict(attrs)

    def event(self, name: str, /, **attrs: Any) -> TraceRecord:
        record = TraceRecord(t=self._clock(), kind="event", name=name,
                             attrs=attrs)
        if self._context:
            record["ctx"] = self._context
        self.records.append(record)
        return record

    def span(self, name: str, /, **attrs: Any) -> Span:
        # The kwargs dict is fresh per call, so the span and its begin
        # record can share it until the span is first annotated (the span
        # copies on write) — one allocation instead of three.
        span = Span(self, next(self._span_ids), name, self._clock(),
                    attrs, shared=True)
        record = TraceRecord(
            t=span.t_start, kind="span_begin", name=name, id=span.span_id,
            attrs=attrs)
        if self._context:
            record["ctx"] = self._context
        self.records.append(record)
        return span

    def _end_span(self, span: Span) -> int:
        t_end = self._clock()
        duration = t_end - span.t_start
        # span.attrs is immutable from here on (the span is closed), so
        # the end record references it without copying.
        record = TraceRecord(
            t=t_end, kind="span_end", name=span.name, id=span.span_id,
            dur_us=duration, attrs=span.attrs)
        if self._context:
            record["ctx"] = self._context
        self.records.append(record)
        self.closed_spans.append((span.name, duration))
        return duration

    def reset(self) -> None:
        self.records = []
        self.closed_spans = []
        self._span_ids = itertools.count(1)


class NullSpan:
    """Shared no-op span for disabled telemetry."""

    __slots__ = ()
    name = ""
    closed = True

    def annotate(self, **attrs: Any) -> None:
        pass

    def end(self, **attrs: Any) -> int:
        return 0

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = NullSpan()
