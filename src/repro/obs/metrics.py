"""Metric instruments: counters, gauges, and histograms.

Instruments are created through a :class:`~repro.obs.registry.
TelemetryRegistry` and identified by a name plus a (sorted) label set, the
way Prometheus-style systems key time series.  A histogram keeps its raw
samples — benchmark runs are short enough that exact percentiles beat
bucketed approximations, and the exporter only ships the summary.

Every instrument has a ``Null`` twin with the same interface and no
state; the module-level API in :mod:`repro.obs` hands those out when
telemetry is disabled, so instrumented call sites pay a single attribute
call on the hot path.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

#: An instrument's identity: (name, ((label, value), ...)).
InstrumentKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def labels_key(name: str, labels: Dict[str, object]) -> InstrumentKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def percentile(ordered: List[float], p: float) -> float:
    """Linear-interpolated percentile of an already-sorted sample list."""
    if not ordered:
        return 0.0
    k = (len(ordered) - 1) * p / 100.0
    lo = math.floor(k)
    hi = math.ceil(k)
    if lo == hi:
        return ordered[int(k)]
    value = ordered[lo] * (hi - k) + ordered[hi] * (k - lo)
    # Interpolation can overshoot its bracket by one ulp; clamp.
    return min(max(value, ordered[lo]), ordered[hi])


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name} {self.labels} = {self.value}>"


class Gauge:
    """A value that goes up and down (queue depth, tenants, joules left)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> dict:
        return {"value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name} {self.labels} = {self.value}>"


class Histogram:
    """A distribution with exact p50/p95/p99.

    ``unit`` is documentation shipped with every export (``us`` for sim
    microseconds, ``ns-wall`` for wall-clock nanoseconds, ...).
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "unit", "samples", "total")

    def __init__(self, name: str, labels: Dict[str, str], unit: str = ""):
        self.name = name
        self.labels = labels
        self.unit = unit
        self.samples: List[float] = []
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.samples.append(value)
        self.total += value

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return self.total / len(self.samples) if self.samples else 0.0

    def percentile(self, p: float) -> float:
        return percentile(sorted(self.samples), p)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def snapshot(self) -> dict:
        ordered = sorted(self.samples)
        return {
            "unit": self.unit,
            "count": len(ordered),
            "sum": self.total,
            "min": ordered[0] if ordered else 0.0,
            "p50": percentile(ordered, 50),
            "p95": percentile(ordered, 95),
            "p99": percentile(ordered, 99),
            "max": ordered[-1] if ordered else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} {self.labels} n={self.count}>"


class NullCounter:
    """No-op counter handed out while telemetry is disabled."""

    kind = "counter"
    __slots__ = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def snapshot(self) -> dict:
        return {"value": 0}


class NullGauge:
    kind = "gauge"
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def snapshot(self) -> dict:
        return {"value": 0.0}


class NullHistogram:
    kind = "histogram"
    __slots__ = ()
    count = 0
    mean = 0.0
    p50 = p95 = p99 = 0.0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, p: float) -> float:
        return 0.0

    def snapshot(self) -> dict:
        return {"unit": "", "count": 0, "sum": 0.0, "min": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}


#: Shared no-op instruments: one instance each, label-blind.
NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()
