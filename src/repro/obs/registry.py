"""The telemetry registry: one home for instruments and the tracer.

A registry is bound to a clock — normally ``sim.now`` of the one
:class:`~repro.sim.simulator.Simulator` driving the process — and hands
out create-or-get instruments keyed by name + labels.  The
:class:`NullRegistry` twin implements the same surface with shared no-op
instruments; the module-level API in :mod:`repro.obs` swaps between the
two so "telemetry off" costs one method call and no allocation on hot
paths.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    InstrumentKey,
    labels_key,
)
from repro.obs.tracer import NULL_SPAN, Span, Tracer


def _zero_clock() -> int:
    return 0


class TelemetryRegistry:
    """Instruments plus a tracer, all on one (virtual) clock."""

    enabled = True

    def __init__(self, clock: Optional[Callable[[], int]] = None):
        self._clock: Callable[[], int] = clock or _zero_clock
        self._instruments: Dict[InstrumentKey, object] = {}
        self.tracer = Tracer(self._now)

    # -- clock -----------------------------------------------------------------
    def bind_clock(self, source: Union[Callable[[], int], object]) -> None:
        """Bind the timestamp source: a callable, or anything with a
        ``now`` property (a :class:`~repro.sim.simulator.Simulator`)."""
        if callable(source):
            self._clock = source
        else:
            self._clock = lambda: source.now

    def _now(self) -> int:
        return int(self._clock())

    @property
    def now(self) -> int:
        return self._now()

    # -- instruments ------------------------------------------------------------
    def _get(self, cls, name: str, labels: Dict[str, object], **kw):
        key = labels_key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, dict(key[1]), **kw)
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, /, **labels: object) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, /, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, /, unit: str = "", **labels: object) -> Histogram:
        return self._get(Histogram, name, labels, unit=unit)

    def instruments(self) -> Iterator[object]:
        """All instruments, sorted by (name, labels) for stable exports."""
        for key in sorted(self._instruments):
            yield self._instruments[key]

    # -- tracing ---------------------------------------------------------------
    def event(self, name: str, /, **attrs: object):
        return self.tracer.event(name, **attrs)

    def span(self, name: str, /, **attrs: object) -> Span:
        return self.tracer.span(name, **attrs)

    # -- lifecycle ---------------------------------------------------------------
    def reset(self) -> None:
        """Drop all instruments and buffered trace records (tests)."""
        self._instruments = {}
        self.tracer.reset()

    def snapshot(self) -> List[dict]:
        """Point-in-time state of every instrument (plain dicts)."""
        rows = []
        for instrument in self.instruments():
            row = {"kind": instrument.kind, "name": instrument.name,
                   "labels": instrument.labels}
            row.update(instrument.snapshot())
            rows.append(row)
        return rows


class NullRegistry:
    """Telemetry disabled: same surface, shared no-op instruments."""

    enabled = False
    now = 0

    def bind_clock(self, source) -> None:
        pass

    def counter(self, name: str, /, **labels: object):
        return NULL_COUNTER

    def gauge(self, name: str, /, **labels: object):
        return NULL_GAUGE

    def histogram(self, name: str, /, unit: str = "", **labels: object):
        return NULL_HISTOGRAM

    def event(self, name: str, /, **attrs: object):
        return None

    def span(self, name: str, /, **attrs: object):
        return NULL_SPAN

    def instruments(self):
        return iter(())

    def reset(self) -> None:
        pass

    def snapshot(self) -> List[dict]:
        return []


NULL_REGISTRY = NullRegistry()
