"""Exporters: JSON-lines traces and the human-readable report.

The JSON-lines format is one record per line, every record carrying an
integer ``t`` (sim microseconds) and a ``kind``:

* ``event`` / ``span_begin`` / ``span_end`` — the trace, in timestamp
  order (the tracer appends in clock order, so the file is born sorted);
* ``counter`` / ``gauge`` / ``histogram`` — the final instrument
  snapshot, stamped with the clock value at export time.

``parse_jsonl`` + ``validate_records`` round-trip the format and are what
``python -m repro.obs.check`` (the ``make trace`` smoke check) runs.
"""

from __future__ import annotations

import json
from typing import IO, List, Union

from repro.analysis.reporting import render_metrics_report
from repro.obs.registry import TelemetryRegistry

TRACE_KINDS = ("event", "span_begin", "span_end")
METRIC_KINDS = ("counter", "gauge", "histogram")


def trace_records(registry: TelemetryRegistry,
                  include_snapshot: bool = True) -> List[dict]:
    """All records the exporter would write, as plain dicts."""
    records = [dict(r) for r in registry.tracer.records]
    if include_snapshot:
        now = registry.now
        for row in registry.snapshot():
            record = {"t": now}
            record.update(row)
            records.append(record)
    return records


def write_jsonl(registry: TelemetryRegistry, target: Union[str, IO],
                include_snapshot: bool = True) -> int:
    """Dump the registry to ``target`` (path or file); returns #records."""
    records = trace_records(registry, include_snapshot=include_snapshot)
    if hasattr(target, "write"):
        for record in records:
            target.write(json.dumps(record, sort_keys=True) + "\n")
    else:
        with open(target, "w") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def parse_jsonl(source: Union[str, IO]) -> List[dict]:
    """Read a JSON-lines trace back into a record list.

    Raises ``ValueError`` on any unparseable line.
    """
    if hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        with open(source) as fh:
            lines = fh.read().splitlines()
    records = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {number}: invalid JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise ValueError(f"line {number}: record is not an object")
        records.append(record)
    return records


def validate_records(records: List[dict]) -> None:
    """Structural validation of a parsed trace (the smoke-check core).

    Asserts: non-empty; every record has an integer ``t >= 0``, a known
    ``kind`` and a ``name``; trace-kind timestamps are monotonically
    non-decreasing in file order.
    """
    if not records:
        raise ValueError("trace is empty")
    last_t = None
    for index, record in enumerate(records):
        where = f"record {index}"
        t = record.get("t")
        if not isinstance(t, int) or t < 0:
            raise ValueError(f"{where}: bad timestamp {t!r}")
        kind = record.get("kind")
        if kind not in TRACE_KINDS and kind not in METRIC_KINDS:
            raise ValueError(f"{where}: unknown kind {kind!r}")
        if not record.get("name"):
            raise ValueError(f"{where}: missing name")
        if kind in TRACE_KINDS:
            if last_t is not None and t < last_t:
                raise ValueError(
                    f"{where}: timestamp {t} regresses below {last_t}")
            last_t = t
        if kind == "span_end" and "dur_us" not in record:
            raise ValueError(f"{where}: span_end without dur_us")


def render_report(registry: TelemetryRegistry) -> str:
    """The human-readable summary (tables via repro.analysis.reporting)."""
    return render_metrics_report(registry.snapshot(),
                                 registry.tracer.closed_spans,
                                 n_trace_records=len(registry.tracer.records))
