"""Exploration scenarios: seeded workloads run under one schedule each.

A scenario owns everything about one run *except* the same-tick order:
it builds a fresh simulator + stack, installs the tie-breaker it is
given, drives the workload to completion, and summarizes the run as a
:class:`~repro.sched.oracles.RunOutcome` — a canonical behavior digest
plus the structured state its oracle set inspects.

``neutral`` declares the schedule-neutrality claim: a neutral scenario's
digest covers only state that must be identical under *every* same-tick
schedule (per-sender sequences, conservation totals), so the explorer
holds it to the FIFO baseline bit for bit.  Non-neutral scenarios
(full-stack soaks whose traces legitimately reorder) are held to the
invariant oracles instead.

The registry (``SCENARIOS``/:func:`make_scenario`) is what the
``repro.sched`` CLI and ``make explore`` enumerate:

* ``binder-burst`` / ``binder-burst-legacy`` — concurrent async binder
  senders over the batched flush (resp. the per-message oracle path);
  the rig that surfaced the PR 8 flush-ordering fix.
* ``storm-smoke`` — one-drone/one-tenant device-service call storm
  through the full onboard stack (fleet harness + invariant monitor).
* ``city-smoke`` — a small sharded control-plane run (placement,
  migration, admission) on the city harness.
* ``fig10-smoke`` — a bounded slice of the paper's fig10 PassMark
  workload on the simulated kernel.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional

import repro.obs as obs
from repro.obs.export import trace_records
from repro.sched.oracles import RunOutcome

#: Wall-clock histograms are the one nondeterministic instrument; drop
#: them from digests exactly like the golden-trace test does.
WALL_CLOCK_UNIT = "us-wall"


def digest_of(payload) -> str:
    """Canonical sha256 of any JSON-serializable behavior summary."""
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


def _filtered_records(registry) -> List[dict]:
    """Exported records minus wall-clock-derived instruments."""
    return [r for r in trace_records(registry)
            if r.get("unit") != WALL_CLOCK_UNIT]


class ExplorationScenario:
    """Base: subclasses define ``name``/``neutral``/``oracles`` and
    :meth:`_execute`; :meth:`run` wraps it with obs bookkeeping."""

    name = "scenario"
    title = ""
    #: digest must match the FIFO baseline under every schedule?
    neutral = False
    #: oracle names from repro.sched.oracles.ORACLES, checked every run.
    oracles = ("monotone-clock",)

    def run(self, tie_breaker,
            schedule_id: Optional[str] = None) -> RunOutcome:
        """Execute under ``tie_breaker``; fresh stack, isolated obs.

        ``tie_breaker=None`` runs the scenario on the simulator's
        default (unexplored) drain loop — the reference the tie-break
        equivalence tests hold ``FifoTieBreaker`` to.
        """
        obs.reset()
        if schedule_id is not None:
            obs.set_trace_context(schedule=schedule_id)
        try:
            outcome = self._execute(tie_breaker)
        finally:
            obs.clear_trace_context()
            obs.reset()
        outcome.scenario = self.name
        outcome.schedule_id = schedule_id
        if tie_breaker is not None:
            outcome.decisions = list(tie_breaker.decisions)
            outcome.meta = list(tie_breaker.meta)
        return outcome

    def _execute(self, tie_breaker) -> RunOutcome:
        raise NotImplementedError


class BinderBurstScenario(ExplorationScenario):
    """Concurrent one-way binder senders racing through one driver.

    Each sender is an event chain (``key="sender<g>"``) submitting
    ``transact_async`` messages; chains overlap within ticks so the
    same-tick set always holds several senders plus the flush/delivery
    events.  The digest covers only per-sender sequences and totals —
    state the batched-flush contract promises is schedule-neutral.
    """

    name = "binder-burst"
    title = "async binder senders vs the batched flush"
    neutral = True
    oracles = ("sender-order", "balanced-async", "monotone-clock")

    #: messages switch to a later tick every STAGGER_EVERY submissions,
    #: so the run exercises cross-tick batches, not one giant tick.
    STAGGER_EVERY = 3

    def __init__(self, senders: int = 3, messages: int = 6,
                 batched: bool = True):
        self.senders = senders
        self.messages = messages
        self.batched = batched

    def _execute(self, tie_breaker) -> RunOutcome:
        from repro.binder import BinderDriver, ServiceManager
        from repro.kernel.namespaces import NamespaceSet
        from repro.sim import Simulator

        sim = Simulator()
        driver = BinderDriver(device_container_name="device")
        driver.use_fast_path = self.batched
        driver.bind_sim(sim)
        ns = NamespaceSet("vd1")
        server = driver.open(100, 1000, "vd1", ns.device_ns)
        manager = ServiceManager(server, is_device_container=False)
        calls: List[Dict] = []

        def handler(txn):
            calls.append(dict(txn.data))
            return {"sender": txn.data["sender"], "idx": txn.data["idx"]}

        manager.register("Echo", server.create_node(handler, "echo"))
        replies: List[Dict] = []
        clients = []
        handles = []
        for g in range(self.senders):
            client = driver.open(200 + g, 1000, "vd1", ns.device_ns)
            clients.append(client)
            handles.append(client.transact(0, "get", {"name": "Echo"})
                           ["service"])

        def submit(g: int, i: int) -> None:
            clients[g].transact_async(
                handles[g], "ping", {"sender": g, "idx": i},
                on_reply=replies.append)
            if i + 1 < self.messages:
                delay = 10 if (i + 1) % self.STAGGER_EVERY == 0 else 0
                sim.after(delay, lambda: submit(g, i + 1),
                          key=f"sender{g}")

        for g in range(self.senders):
            sim.at(0, lambda g=g: submit(g, 0), key=f"sender{g}")
        sim.set_tie_breaker(tie_breaker)
        executed = sim.run()
        sim.set_tie_breaker(None)

        orders: Dict[str, List[int]] = {}
        for record in replies:
            orders.setdefault(f"s{record['sender']}-replies",
                              []).append(record["idx"])
        for record in calls:
            orders.setdefault(f"s{record['sender']}-calls",
                              []).append(record["idx"])
        final = {
            "sender_reply_orders": orders,
            "async_pending": driver.async_pending(),
            "missing_replies": self.senders * self.messages - len(replies),
            "messages": self.senders * self.messages,
        }
        return RunOutcome(scenario=self.name, digest=digest_of(final),
                          final=final, executed=executed)


class BinderBurstLegacyScenario(BinderBurstScenario):
    """The same burst on the per-message (pre-batching) oracle path —
    the A/B side every batched-flush equivalence proof leans on."""

    name = "binder-burst-legacy"
    title = "async binder senders vs the per-message oracle path"

    def __init__(self, senders: int = 3, messages: int = 6):
        super().__init__(senders=senders, messages=messages, batched=False)


class StormSmokeScenario(ExplorationScenario):
    """One-drone, one-tenant device-service storm on the full stack."""

    name = "storm-smoke"
    title = "device-service storm through the fleet harness"
    neutral = False
    oracles = ("monotone-clock", "balanced-async", "allotment", "vfc-legal")

    def __init__(self, seed: int = 2024):
        self.seed = seed

    def _execute(self, tie_breaker) -> RunOutcome:
        from repro.loadgen import FleetScenario
        from repro.loadgen.harness import FleetHarness
        from repro.loadgen.invariants import TIME_SLACK_S
        from repro.mavproxy.vfc import VfcState

        harness = FleetHarness(FleetScenario(
            seed=self.seed, drones=1, tenants_per_drone=1,
            workload_mix=["storm"]))
        registry = obs.enable(harness.system.sim)
        harness.system.sim.set_tie_breaker(tie_breaker)
        result = harness.run()
        harness.system.sim.set_tie_breaker(None)

        allotments = {}
        vfc_illegal = {}
        async_pending = 0
        for slot in harness.slots:
            node = slot.node
            async_pending += node.driver.async_pending()
            for tenant, drone in node.vdc.drones.items():
                allotments[tenant] = {
                    "used": node.vdc.time_used(tenant),
                    "allotted": drone.definition.max_duration_s,
                    "slack": TIME_SLACK_S,
                }
                stats = result.tenants.get(tenant)
                if (stats is not None and stats.completed
                        and drone.vfc.state not in (VfcState.INACTIVE,
                                                    VfcState.FINISHED)):
                    vfc_illegal[tenant] = drone.vfc.state.name
        records = _filtered_records(registry)
        final = {
            "violations": [str(v) for v in result.violations],
            "allotments": allotments,
            "vfc_illegal": vfc_illegal,
            "async_pending": async_pending,
            "tenants_completed": len(result.completed),
            "waypoints_serviced": result.waypoints_serviced,
        }
        digest = digest_of([json.dumps(r, sort_keys=True) for r in records])
        return RunOutcome(scenario=self.name, digest=digest, final=final,
                          records=records)


class CitySmokeScenario(ExplorationScenario):
    """A small sharded control-plane run: placement, migration,
    admission, and the decision-journal digest."""

    name = "city-smoke"
    title = "sharded control plane (placement + migration)"
    neutral = False
    oracles = ("monotone-clock", "allotment")

    def __init__(self, seed: int = 42):
        self.seed = seed

    def _execute(self, tie_breaker) -> RunOutcome:
        from repro.loadgen.city import CityHarness, CityScenario

        harness = CityHarness(CityScenario(
            seed=self.seed, shards=2, drones=4, orders=16,
            migration_every=8))
        registry = obs.enable(harness.sim)
        harness.sim.set_tie_breaker(tie_breaker)
        result = harness.run()
        harness.sim.set_tie_breaker(None)

        violations = [str(v) for v in result.violations]
        accounted = (result.orders_completed + result.orders_failed
                     + result.orders_rejected)
        if accounted != result.orders_submitted:
            violations.append(
                f"order conservation: {result.orders_submitted} submitted "
                f"but {accounted} accounted for")
        records = _filtered_records(registry)
        final = {
            "violations": violations,
            "orders_completed": result.orders_completed,
            "orders_failed": result.orders_failed,
            "flights": result.flights,
            "journal_digest": result.digest,
        }
        return RunOutcome(scenario=self.name, digest=result.digest,
                          final=final, records=records)


class Fig10SmokeScenario(ExplorationScenario):
    """A bounded slice of the fig10 PassMark workload on the simulated
    kernel — the scheduler-heaviest event stream in the repo."""

    name = "fig10-smoke"
    title = "fig10 PassMark slice on the simulated kernel"
    neutral = False
    oracles = ("monotone-clock",)

    def __init__(self, seed: int = 1, until_us: int = 3_000_000,
                 max_events: int = 300_000):
        self.seed = seed
        self.until_us = until_us
        self.max_events = max_events

    def _execute(self, tie_breaker) -> RunOutcome:
        from repro.kernel import Kernel, KernelConfig, PreemptionMode
        from repro.sim import RngRegistry, Simulator
        from repro.workloads.passmark import PassMarkInstance

        sim = Simulator()
        registry = obs.enable(sim)
        kernel = Kernel(sim, RngRegistry(self.seed),
                        KernelConfig(preemption=PreemptionMode.PREEMPT))
        instance = PassMarkInstance(
            kernel,
            lambda prog, name, **kw: kernel.spawn(
                prog, name=name, container="vd1", **kw),
            label="pm0")
        instance.start()
        sim.set_tie_breaker(tie_breaker)
        executed = sim.run(until=self.until_us, max_events=self.max_events)
        sim.set_tie_breaker(None)
        records = _filtered_records(registry)
        digest = digest_of([json.dumps(r, sort_keys=True) for r in records])
        return RunOutcome(scenario=self.name, digest=digest,
                          final={"executed": executed}, records=records,
                          executed=executed)


#: Name -> scenario class, what the CLI / make explore enumerate.
SCENARIOS = {
    BinderBurstScenario.name: BinderBurstScenario,
    BinderBurstLegacyScenario.name: BinderBurstLegacyScenario,
    StormSmokeScenario.name: StormSmokeScenario,
    CitySmokeScenario.name: CitySmokeScenario,
    Fig10SmokeScenario.name: Fig10SmokeScenario,
}


def make_scenario(name: str, **overrides) -> ExplorationScenario:
    """Instantiate a registered scenario (kwargs tune smoke sizes)."""
    if name not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {name!r}: choose from {sorted(SCENARIOS)}")
    return SCENARIOS[name](**overrides)
