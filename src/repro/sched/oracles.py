"""Invariant oracles: what must hold under *every* same-tick schedule.

An oracle inspects one :class:`RunOutcome` — the scenario-independent
summary of a run under one schedule — and returns a list of violation
strings (empty = clean).  The explorer runs the scenario's oracle set
after every schedule; any non-empty result is a race finding, and the
offending schedule is shrunk and emitted as a replayable artifact.

The catalog (see docs/EXPLORATION.md for the prose version):

* ``digest-match`` — where a scenario claims *schedule neutrality*, its
  behavior digest must equal the FIFO baseline's bit for bit.
* ``monotone-clock`` — trace record timestamps never decrease.
* ``balanced-async`` — every queued binder async transaction was
  delivered (no pending residue, no reply callback skipped) and every
  closed span matches an opened one.
* ``sender-order`` — replies within a flush arrive in per-sender
  submission order (the batched-delivery contract, satellite of PR 8).
* ``allotment`` — per-tenant time/energy accounting is conserved:
  monitors saw no violation and usage never exceeds the allotment.
* ``vfc-legal`` — no virtual flight controller ended in (or passed
  through) an illegal state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class RunOutcome:
    """One scenario run under one schedule, summarized for the oracles.

    ``final`` is the scenario's structured summary (replies, violations,
    accounting); ``records`` the obs trace records (possibly empty when
    the scenario does not trace); ``digest`` the scenario's canonical
    behavior digest; ``decisions``/``meta`` the schedule actually taken.
    """

    scenario: str
    digest: str
    final: Dict[str, Any] = field(default_factory=dict)
    records: List[dict] = field(default_factory=list)
    decisions: List[int] = field(default_factory=list)
    meta: List[dict] = field(default_factory=list)
    executed: int = 0
    schedule_id: Optional[str] = None


class Oracle:
    """One invariant; ``check`` returns violation strings (empty = ok)."""

    name = "oracle"

    def check(self, outcome: RunOutcome) -> List[str]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Oracle {self.name}>"


class MonotoneClockOracle(Oracle):
    """Trace timestamps are nondecreasing: reordering same-tick events
    must never let a record claim time ran backwards."""

    name = "monotone-clock"

    def check(self, outcome: RunOutcome) -> List[str]:
        problems = []
        last = None
        for record in outcome.records:
            t = record.get("t")
            if t is None:
                continue
            if last is not None and t < last:
                problems.append(
                    f"trace clock went backwards: {last} -> {t} at "
                    f"{record.get('kind')}/{record.get('name')}")
            last = t
        return problems


class BalancedAsyncOracle(Oracle):
    """Binder async delivery is conservative under any schedule.

    The scenario reports ``async_pending`` (undelivered queue residue
    after the run drained) and ``missing_replies`` (reply callbacks that
    never fired); both must be zero.  Trace spans must pair: a
    ``span_end`` without a ``span_begin`` means an open/close imbalance.
    """

    name = "balanced-async"

    def check(self, outcome: RunOutcome) -> List[str]:
        problems = []
        pending = outcome.final.get("async_pending", 0)
        if pending:
            problems.append(
                f"{pending} async transaction(s) still queued after drain")
        missing = outcome.final.get("missing_replies", 0)
        if missing:
            problems.append(f"{missing} reply callback(s) never fired")
        opened = set()
        for record in outcome.records:
            kind = record.get("kind")
            if kind == "span_begin":
                opened.add(record.get("id"))
            elif kind == "span_end" and record.get("id") not in opened:
                problems.append(
                    f"span_end #{record.get('id')} "
                    f"({record.get('name')}) closes a span never opened")
        return problems


class SenderOrderOracle(Oracle):
    """Per-sender submission order of async replies.

    ``final['sender_reply_orders']`` maps each sender to the submission
    indices of its replies *in delivery order*; each list must be
    strictly increasing.  Cross-sender interleaving is free to vary —
    that is exactly the dimension being explored.
    """

    name = "sender-order"

    def check(self, outcome: RunOutcome) -> List[str]:
        problems = []
        for sender, order in sorted(
                outcome.final.get("sender_reply_orders", {}).items()):
            if any(b <= a for a, b in zip(order, order[1:])):
                problems.append(
                    f"sender {sender}: replies delivered out of "
                    f"submission order: {order}")
        return problems


class AllotmentOracle(Oracle):
    """Tenant time/energy conservation, via the harness monitors."""

    name = "allotment"

    def check(self, outcome: RunOutcome) -> List[str]:
        problems = [f"invariant monitor: {v}"
                    for v in outcome.final.get("violations", [])]
        for tenant, account in sorted(
                outcome.final.get("allotments", {}).items()):
            used = account.get("used", 0.0)
            allotted = account.get("allotted", 0.0)
            slack = account.get("slack", 0.0)
            if used > allotted + slack:
                problems.append(
                    f"tenant {tenant}: used {used:.3f} exceeds allotment "
                    f"{allotted:.3f} (+{slack:.3f} slack)")
        return problems


class VfcLegalityOracle(Oracle):
    """Every VFC reported a legal state under the explored schedule."""

    name = "vfc-legal"

    def check(self, outcome: RunOutcome) -> List[str]:
        return [f"VFC {name}: illegal state {state}"
                for name, state in sorted(
                    outcome.final.get("vfc_illegal", {}).items())]


class DigestMatchOracle(Oracle):
    """Schedule neutrality: digest must equal the FIFO baseline's."""

    name = "digest-match"

    def __init__(self, expected: str):
        self.expected = expected

    def check(self, outcome: RunOutcome) -> List[str]:
        if outcome.digest != self.expected:
            return [f"behavior digest {outcome.digest[:16]}... diverged "
                    f"from FIFO baseline {self.expected[:16]}... under a "
                    f"schedule the scenario claims neutrality for"]
        return []


#: Name -> constructor for the schedule-independent oracles (digest-match
#: needs a baseline and is built by the explorer).
ORACLES = {
    MonotoneClockOracle.name: MonotoneClockOracle,
    BalancedAsyncOracle.name: BalancedAsyncOracle,
    SenderOrderOracle.name: SenderOrderOracle,
    AllotmentOracle.name: AllotmentOracle,
    VfcLegalityOracle.name: VfcLegalityOracle,
}


def build_oracles(names) -> List[Oracle]:
    """Instantiate the named subset of the catalog, order-preserving."""
    built = []
    for name in names:
        if name not in ORACLES:
            raise ValueError(
                f"unknown oracle {name!r}: choose from {sorted(ORACLES)}")
        built.append(ORACLES[name]())
    return built


def run_oracles(oracles, outcome: RunOutcome) -> Dict[str, List[str]]:
    """Run every oracle; returns {oracle name: violations} for failures."""
    failures: Dict[str, List[str]] = {}
    for oracle in oracles:
        problems = oracle.check(outcome)
        if problems:
            failures[oracle.name] = problems
    return failures
