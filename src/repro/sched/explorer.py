"""The explorer: run a scenario under N schedules, check oracles,
shrink violations to minimal replayable artifacts.

Exploration is deterministic end to end: schedule ``i`` of strategy
``s`` under root seed ``r`` always denotes the same tie-breaker, every
scenario run builds a fresh seeded stack, and a violation is shipped as
a ``(seed, schedule-trace)`` artifact whose replay — via
:class:`~repro.sched.tiebreak.TraceTieBreaker` — reproduces the run
bit-for-bit.  ``repro.sched`` (the CLI) and the pytest regression
fixtures under ``tests/sched/fixtures/`` are both thin wrappers over
this module; docs/EXPLORATION.md walks through the workflow.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.sched.oracles import (
    DigestMatchOracle,
    RunOutcome,
    build_oracles,
    run_oracles,
)
from repro.sched.scenarios import ExplorationScenario, make_scenario
from repro.sched.tiebreak import (
    FifoTieBreaker,
    TraceTieBreaker,
    exhausted,
    make_tie_breaker,
)

#: artifact schema version, bumped on any incompatible change.
ARTIFACT_SCHEMA = 1


@dataclass
class ScheduleReport:
    """One explored schedule: what ran and what the oracles said."""

    schedule_id: str
    strategy: str
    index: int
    digest: str
    decisions: List[int]
    meta: List[dict] = field(default_factory=list)
    failures: Dict[str, List[str]] = field(default_factory=dict)
    shrunk: Optional[List[int]] = None

    @property
    def clean(self) -> bool:
        return not self.failures


@dataclass
class ExplorationResult:
    """Everything one :meth:`Explorer.explore` produced."""

    scenario: str
    seed: int
    baseline_digest: str
    reports: List[ScheduleReport] = field(default_factory=list)

    @property
    def violations(self) -> List[ScheduleReport]:
        return [r for r in self.reports if not r.clean]

    @property
    def distinct_digests(self) -> int:
        return len({r.digest for r in self.reports})

    def summary(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "schedules": len(self.reports),
            "violations": len(self.violations),
            "distinct_digests": self.distinct_digests,
            "baseline_digest": self.baseline_digest,
        }


class ReplayMismatchError(AssertionError):
    """A replayed schedule failed to reproduce its recorded digest."""


class Explorer:
    """Drives one scenario through many same-tick schedules."""

    def __init__(self, scenario: ExplorationScenario, seed: int = 42,
                 oracles=None):
        self.scenario = scenario
        self.seed = int(seed)
        self.oracles = (build_oracles(scenario.oracles)
                        if oracles is None else list(oracles))
        self._baseline: Optional[RunOutcome] = None

    # -- running one schedule ------------------------------------------------
    def baseline(self) -> RunOutcome:
        """The FIFO run: the reference digest for neutrality claims."""
        if self._baseline is None:
            self._baseline = self.scenario.run(
                FifoTieBreaker(), schedule_id=f"{self.scenario.name}:fifo")
        return self._baseline

    def _oracles_for(self, outcome: RunOutcome):
        oracles = list(self.oracles)
        if self.scenario.neutral:
            oracles.append(DigestMatchOracle(self.baseline().digest))
        return oracles

    def run_schedule(self, tie_breaker, schedule_id: str) -> ScheduleReport:
        outcome = self.scenario.run(tie_breaker, schedule_id=schedule_id)
        failures = run_oracles(self._oracles_for(outcome), outcome)
        return ScheduleReport(
            schedule_id=schedule_id, strategy=tie_breaker.name,
            index=0, digest=outcome.digest,
            decisions=outcome.decisions, meta=outcome.meta,
            failures=failures)

    # -- exploration ---------------------------------------------------------
    def explore(self, schedules: int = 25, strategy: str = "random",
                shrink_violations: bool = True) -> ExplorationResult:
        """Run ``schedules`` explored schedules of ``strategy``.

        ``strategy="enumerate"`` walks the schedule tree depth-first
        (systematic bounded enumeration — exhaustive for small same-tick
        sets) instead of sampling; any other registered strategy samples
        seeded tie-breakers ``0..N-1``.
        """
        result = ExplorationResult(
            scenario=self.scenario.name, seed=self.seed,
            baseline_digest=self.baseline().digest)
        if strategy == "enumerate":
            traces = self._enumerate_traces(schedules)
            for index, trace in enumerate(traces):
                report = self.run_schedule(
                    TraceTieBreaker(trace),
                    f"{self.scenario.name}:enumerate:{index}")
                report.index = index
                report.strategy = "enumerate"
                self._finish_report(report, shrink_violations)
                result.reports.append(report)
            return result
        for index in range(schedules):
            tie_breaker = make_tie_breaker(strategy, self.seed, index)
            report = self.run_schedule(
                tie_breaker, f"{self.scenario.name}:{strategy}:{index}")
            report.index = index
            self._finish_report(report, shrink_violations)
            result.reports.append(report)
        return result

    def _finish_report(self, report: ScheduleReport,
                       shrink_violations: bool) -> None:
        if report.failures and shrink_violations:
            report.shrunk = self.shrink(report.decisions)

    def _enumerate_traces(self, limit: int) -> List[List[int]]:
        """Depth-first schedule-tree walk, ``limit`` schedules at most.

        Each run follows a decision prefix and FIFO beyond it while
        recording every decision point's set size; the next prefix is
        the odometer increment of the last branchable decision.  For
        runs whose same-tick sets are small this enumerates *every*
        interleaving before the limit bites.
        """
        traces: List[List[int]] = []
        prefix: List[int] = []
        while len(traces) < limit:
            probe = TraceTieBreaker(prefix)
            outcome = self.scenario.run(
                probe, schedule_id=f"{self.scenario.name}:probe")
            traces.append(list(outcome.decisions))
            sizes = [m["size"] for m in outcome.meta]
            taken = list(outcome.decisions)
            # Odometer: advance the deepest decision with untried siblings.
            depth = len(taken) - 1
            while depth >= 0 and taken[depth] + 1 >= sizes[depth]:
                depth -= 1
            if depth < 0:
                break  # schedule tree exhausted
            prefix = taken[:depth] + [taken[depth] + 1]
        return traces

    # -- replay + shrink -----------------------------------------------------
    def replay(self, decisions, schedule_id: str = "replay") -> RunOutcome:
        """Re-execute one recorded schedule exactly."""
        return self.scenario.run(
            TraceTieBreaker(decisions),
            schedule_id=f"{self.scenario.name}:{schedule_id}")

    def verify_replay(self, report: ScheduleReport) -> RunOutcome:
        """Replay a report's schedule; digests must agree bit-for-bit."""
        outcome = self.replay(report.decisions,
                              schedule_id=report.schedule_id)
        if outcome.digest != report.digest:
            raise ReplayMismatchError(
                f"{report.schedule_id}: replay digest "
                f"{outcome.digest[:16]}... != recorded "
                f"{report.digest[:16]}...")
        return outcome

    def _still_fails(self, decisions) -> bool:
        outcome = self.replay(decisions, schedule_id="shrink")
        return bool(run_oracles(self._oracles_for(outcome), outcome))

    def shrink(self, decisions) -> List[int]:
        """Greedy 1-minimal reduction of a failing schedule.

        First truncate the FIFO-equivalent tail, then repeatedly try to
        zero (FIFO) each remaining decision, keeping any reduction that
        still violates an oracle.  The result re-violates by
        construction, so the emitted artifact is self-checking.
        """
        trace = list(decisions)
        while trace and trace[-1] == 0:
            trace.pop()
        # Binary-search the shortest failing prefix.
        low, high = 0, len(trace)
        while low < high:
            mid = (low + high) // 2
            if self._still_fails(trace[:mid]):
                high = mid
            else:
                low = mid + 1
        trace = trace[:high]
        changed = True
        while changed:
            changed = False
            for position in range(len(trace)):
                if trace[position] == 0:
                    continue
                candidate = list(trace)
                candidate[position] = 0
                if self._still_fails(candidate):
                    trace = candidate
                    changed = True
            while trace and trace[-1] == 0:
                trace.pop()
        return trace

    # -- artifacts -----------------------------------------------------------
    def artifact(self, report: ScheduleReport) -> dict:
        """The replayable record of one violating (or notable) schedule."""
        decisions = (report.shrunk if report.shrunk is not None
                     else report.decisions)
        replayed = self.replay(decisions, schedule_id=report.schedule_id)
        failures = run_oracles(self._oracles_for(replayed), replayed)
        return {
            "schema": ARTIFACT_SCHEMA,
            "scenario": self.scenario.name,
            "seed": self.seed,
            "strategy": report.strategy,
            "schedule_id": report.schedule_id,
            "schedule": list(decisions),
            "digest": replayed.digest,
            "failures": failures,
            "failures_when_found": report.failures,
            "decisions_recorded": len(report.decisions),
        }


def save_artifact(artifact: dict, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    return path


def load_artifact(path) -> dict:
    artifact = json.loads(Path(path).read_text())
    schema = artifact.get("schema")
    if schema != ARTIFACT_SCHEMA:
        raise ValueError(
            f"{path}: artifact schema {schema!r} != {ARTIFACT_SCHEMA}")
    return artifact


def replay_artifact(artifact: dict, scenario: Optional[ExplorationScenario]
                    = None) -> RunOutcome:
    """Re-execute a saved artifact; raises on digest mismatch.

    Returns the replayed outcome so callers can re-run oracles against
    it (regression fixtures assert the recorded failures stay fixed).
    """
    if scenario is None:
        scenario = make_scenario(artifact["scenario"])
    trace = TraceTieBreaker(artifact["schedule"])
    outcome = scenario.run(
        trace, schedule_id=artifact.get("schedule_id", "artifact"))
    if outcome.digest != artifact["digest"]:
        raise ReplayMismatchError(
            f"artifact replay digest {outcome.digest[:16]}... != recorded "
            f"{artifact['digest'][:16]}... "
            f"({exhausted(trace) or 'trace followed verbatim'})")
    return outcome
