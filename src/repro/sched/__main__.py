"""Entry point: ``python -m repro.sched`` (see repro.sched.cli)."""

import sys

from repro.sched.cli import main

sys.exit(main())
