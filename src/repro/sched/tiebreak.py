"""Tie-breakers: pluggable same-tick ordering policies for the simulator.

A :class:`TieBreaker` is consulted by the simulator's explored drain loop
(:meth:`repro.sim.Simulator.run` with a tie-breaker installed) every time
more than one live event shares the current timestamp.  It sees the
*same-tick set* in ascending scheduling (``seq``) order and returns the
index of the event to run next; the simulator never lets it reorder
events across different timestamps, so every policy explores only
legitimate interleavings of concurrent work.

Every pick from a non-trivial set is a *decision*, recorded as the chosen
index into the seq-sorted set.  The decision list is the whole schedule:
feeding it back through a :class:`TraceTieBreaker` replays the run
bit-for-bit, which is what the :mod:`repro.sched.explorer` shrinker and
the checked-in regression fixtures rely on.

Policies:

* :class:`FifoTieBreaker` — lowest ``seq`` first; provably identical to
  the default (no tie-breaker) heap order.
* :class:`RandomTieBreaker` — seeded uniform pick; the workhorse explorer.
* :class:`PctTieBreaker` — naive PCT: random priorities per event *key*
  with seeded priority-change points, biasing runs toward the rare
  orderings a uniform pick almost never lands on.
* :class:`TraceTieBreaker` — follows a recorded decision list (FIFO once
  exhausted): exact replay and shrinking.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence

from repro.sim.rng import RngRegistry


def derive_seed(root: int, *parts: object) -> int:
    """A stable child seed from a root seed and any hashable labels."""
    text = ":".join([str(int(root))] + [str(p) for p in parts])
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class TieBreaker:
    """Base policy: record every decision, delegate the choice.

    Subclasses implement :meth:`choose`; :meth:`pick` wraps it with
    decision recording.  ``decisions`` holds the chosen index per
    decision point; ``meta`` mirrors it with the context a human (or an
    artifact) needs: timestamp, set size, and the chosen event's key.
    """

    #: strategy name stamped into artifacts.
    name = "base"

    def __init__(self) -> None:
        self.decisions: List[int] = []
        self.meta: List[dict] = []

    def reset(self) -> None:
        """Clear recorded decisions (reuse across runs is discouraged —
        explorers build one tie-breaker per schedule)."""
        self.decisions.clear()
        self.meta.clear()

    def pick(self, time: int, events: Sequence) -> int:
        index = self.choose(time, events)
        if not 0 <= index < len(events):
            raise ValueError(
                f"{self.name}: chose {index} from a set of {len(events)}")
        self.decisions.append(index)
        self.meta.append({"t": time, "size": len(events), "pick": index,
                          "key": events[index].key})
        return index

    def choose(self, time: int, events: Sequence) -> int:
        raise NotImplementedError


class FifoTieBreaker(TieBreaker):
    """Scheduling order (lowest seq) — the default semantics, explored.

    Running under this policy must be byte-identical to running with no
    tie-breaker at all; tests/sim/test_tiebreak_equivalence.py holds the
    pair together on golden digests and raw event sequences.
    """

    name = "fifo"

    def choose(self, time: int, events: Sequence) -> int:
        return 0


class RandomTieBreaker(TieBreaker):
    """Seeded uniform same-tick permutation."""

    name = "random"

    def __init__(self, seed: int):
        super().__init__()
        self.seed = int(seed)
        self._rng = RngRegistry(self.seed).stream("sched.tiebreak")

    def choose(self, time: int, events: Sequence) -> int:
        return self._rng.randrange(len(events))


class PctTieBreaker(TieBreaker):
    """Naive probabilistic concurrency testing (PCT) on event keys.

    Each logical key gets a random priority on first sight; the
    highest-priority member of the set runs first, so one key's events
    are systematically delayed behind another's for a whole run — the
    kind of sustained bias that flushes out ordering assumptions a
    uniform pick rarely hits.  At seeded change points the chosen key's
    priority is re-rolled, moving the bias around.  Anonymous events
    (empty key) are prioritized individually by their seq.
    """

    name = "pct"

    #: one priority change point every ~CHANGE_PERIOD decisions.
    CHANGE_PERIOD = 16

    def __init__(self, seed: int):
        super().__init__()
        self.seed = int(seed)
        self._rng = RngRegistry(self.seed).stream("sched.pct")
        self._priorities: Dict[str, float] = {}

    def _priority(self, event) -> float:
        label = event.key or f"anon#{event.seq}"
        priority = self._priorities.get(label)
        if priority is None:
            priority = self._rng.random()
            self._priorities[label] = priority
        return priority

    def choose(self, time: int, events: Sequence) -> int:
        best = max(range(len(events)),
                   key=lambda i: (self._priority(events[i]), -events[i].seq))
        if self._rng.random() < 1.0 / self.CHANGE_PERIOD:
            label = events[best].key or f"anon#{events[best].seq}"
            self._priorities[label] = self._rng.random()
        return best


class TraceTieBreaker(TieBreaker):
    """Replay a recorded decision list exactly.

    Past the end of the trace (or for a decision whose recorded index no
    longer fits the set — possible while *shrinking* a schedule) the
    policy falls back to FIFO, clamping out-of-range picks.  ``followed``
    counts decisions taken verbatim, so replays can assert fidelity.
    """

    name = "trace"

    def __init__(self, choices: Sequence[int]):
        super().__init__()
        self.choices = [int(c) for c in choices]
        self.followed = 0

    def choose(self, time: int, events: Sequence) -> int:
        position = len(self.decisions)
        if position >= len(self.choices):
            return 0
        wanted = self.choices[position]
        if 0 <= wanted < len(events):
            self.followed += 1
            return wanted
        return min(max(wanted, 0), len(events) - 1)


#: Strategy registry for the CLI / explorer.
STRATEGIES = {
    "fifo": FifoTieBreaker,
    "random": RandomTieBreaker,
    "pct": PctTieBreaker,
}


def make_tie_breaker(strategy: str, seed: int,
                     schedule_index: int = 0) -> TieBreaker:
    """Build the ``schedule_index``-th tie-breaker of a seeded family."""
    if strategy == "fifo":
        return FifoTieBreaker()
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}: choose from "
            f"{sorted(STRATEGIES)}")
    return STRATEGIES[strategy](derive_seed(seed, strategy, schedule_index))


def schedule_permutation(seed: int, length: int,
                         salt: object = "") -> List[int]:
    """A seeded permutation of ``range(length)`` for metamorphic tests
    that permute order-free structures (slot update order, candidate
    lists) the way a tie-breaker would permute a same-tick set."""
    order = list(range(length))
    RngRegistry(derive_seed(seed, "perm", salt)).stream(
        "sched.permutation").shuffle(order)
    return order


def exhausted(trace: TraceTieBreaker) -> Optional[str]:
    """Human-readable fidelity check after a replay (None when clean)."""
    if trace.followed < len(trace.choices):
        return (f"replayed {trace.followed}/{len(trace.choices)} recorded "
                f"decisions verbatim (run diverged or trace over-long)")
    return None
