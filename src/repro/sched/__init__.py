"""Schedule exploration: seeded same-tick interleaving for race hunting.

The simulator's same-tick event order is a pluggable dimension
(:meth:`repro.sim.Simulator.set_tie_breaker`); this package supplies the
policies (:mod:`~repro.sched.tiebreak`), the invariant oracles checked
after every explored run (:mod:`~repro.sched.oracles`), the canned
scenarios (:mod:`~repro.sched.scenarios`), and the :class:`Explorer`
runner that samples/enumerates schedules, shrinks violations, and emits
replayable ``(seed, schedule-trace)`` artifacts.  CLI:
``python -m repro.sched`` (``make explore``).  See docs/EXPLORATION.md.
"""

from repro.sched.explorer import (
    ARTIFACT_SCHEMA,
    ExplorationResult,
    Explorer,
    ReplayMismatchError,
    ScheduleReport,
    load_artifact,
    replay_artifact,
    save_artifact,
)
from repro.sched.oracles import (
    ORACLES,
    Oracle,
    RunOutcome,
    build_oracles,
    run_oracles,
)
from repro.sched.scenarios import SCENARIOS, ExplorationScenario, make_scenario
from repro.sched.tiebreak import (
    STRATEGIES,
    FifoTieBreaker,
    PctTieBreaker,
    RandomTieBreaker,
    TieBreaker,
    TraceTieBreaker,
    derive_seed,
    make_tie_breaker,
    schedule_permutation,
)

__all__ = [
    "ARTIFACT_SCHEMA", "ExplorationResult", "ExplorationScenario",
    "Explorer", "FifoTieBreaker", "ORACLES", "Oracle", "PctTieBreaker",
    "RandomTieBreaker", "ReplayMismatchError", "RunOutcome", "SCENARIOS",
    "STRATEGIES", "ScheduleReport", "TieBreaker", "TraceTieBreaker",
    "build_oracles", "derive_seed", "load_artifact", "make_scenario",
    "make_tie_breaker", "replay_artifact", "run_oracles", "save_artifact",
    "schedule_permutation",
]
