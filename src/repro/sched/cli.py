"""``python -m repro.sched`` — explore, replay, and list schedules.

Subcommands:

``explore``
    Run N schedules of a strategy against one or more scenarios, check
    the oracles, shrink any violation, and write one artifact JSON per
    violating schedule to ``--out``.  Exit 1 iff any oracle failed.

``replay``
    Re-execute a saved artifact bit-for-bit and re-run its scenario's
    oracles.  Exit 1 on digest mismatch or if the recorded failures
    still fire (so a fixed bug's artifact doubles as a regression gate).

``list``
    Show registered scenarios, strategies, and oracles.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.sched.explorer import (
    Explorer,
    ReplayMismatchError,
    load_artifact,
    replay_artifact,
    save_artifact,
)
from repro.sched.oracles import ORACLES, build_oracles, run_oracles
from repro.sched.scenarios import SCENARIOS, make_scenario
from repro.sched.tiebreak import STRATEGIES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sched",
        description="seeded same-tick schedule exploration "
                    "(docs/EXPLORATION.md)")
    sub = parser.add_subparsers(dest="command", required=True)

    explore = sub.add_parser(
        "explore", help="run N schedules per scenario and check oracles")
    explore.add_argument(
        "--scenario", action="append", dest="scenarios",
        choices=sorted(SCENARIOS), metavar="NAME",
        help=f"scenario to explore (repeatable; one of {sorted(SCENARIOS)};"
             " default: storm-smoke and city-smoke)")
    explore.add_argument("--schedules", type=int, default=25,
                         help="schedules per scenario (default 25)")
    explore.add_argument("--seed", type=int, default=42,
                         help="root exploration seed (default 42)")
    explore.add_argument(
        "--strategy", default="random",
        choices=sorted(STRATEGIES) + ["enumerate"],
        help="tie-break strategy (default random)")
    explore.add_argument("--out", type=Path, default=None,
                         help="directory for violation artifacts "
                              "(default: no artifacts written)")
    explore.add_argument("--no-shrink", action="store_true",
                         help="keep full-length violating schedules")

    replay = sub.add_parser(
        "replay", help="re-execute a saved schedule artifact")
    replay.add_argument("artifact", type=Path, nargs="+",
                        help="artifact JSON file(s) to replay")

    sub.add_parser("list", help="show scenarios, strategies, and oracles")
    return parser


def _cmd_explore(args) -> int:
    names = args.scenarios or ["storm-smoke", "city-smoke"]
    exit_code = 0
    for name in names:
        scenario = make_scenario(name)
        explorer = Explorer(scenario, seed=args.seed)
        result = explorer.explore(
            schedules=args.schedules, strategy=args.strategy,
            shrink_violations=not args.no_shrink)
        print(json.dumps(result.summary(), sort_keys=True))
        for report in result.violations:
            exit_code = 1
            schedule = (report.shrunk if report.shrunk is not None
                        else report.decisions)
            print(f"  VIOLATION {report.schedule_id}: "
                  f"{sorted(report.failures)} "
                  f"schedule={schedule}", file=sys.stderr)
            if args.out is not None:
                artifact = explorer.artifact(report)
                path = args.out / f"{report.schedule_id.replace(':', '-')}.json"
                save_artifact(artifact, path)
                print(f"  artifact written: {path}", file=sys.stderr)
    return exit_code


def _cmd_replay(args) -> int:
    exit_code = 0
    for path in args.artifact:
        artifact = load_artifact(path)
        scenario = make_scenario(artifact["scenario"])
        try:
            outcome = replay_artifact(artifact, scenario)
        except ReplayMismatchError as exc:
            print(f"{path}: REPLAY MISMATCH: {exc}", file=sys.stderr)
            exit_code = 1
            continue
        failures = run_oracles(build_oracles(scenario.oracles), outcome)
        status = "CLEAN" if not failures else f"FAILING {sorted(failures)}"
        print(f"{path}: digest {outcome.digest[:16]}... reproduced; "
              f"oracles {status}")
        if failures:
            exit_code = 1
    return exit_code


def _cmd_list() -> int:
    listing = {
        "scenarios": {
            name: {"title": cls.title, "neutral": cls.neutral,
                   "oracles": list(cls.oracles)}
            for name, cls in sorted(SCENARIOS.items())
        },
        "strategies": sorted(STRATEGIES) + ["enumerate"],
        "oracles": sorted(ORACLES),
    }
    print(json.dumps(listing, indent=2, sort_keys=True))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "explore":
        return _cmd_explore(args)
    if args.command == "replay":
        return _cmd_replay(args)
    return _cmd_list()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
