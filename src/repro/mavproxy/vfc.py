"""The Virtual Flight Controller.

Each virtual drone connects to its own VFC, which (Section 4.3):

* before the waypoint, "presents a view of their drone as idle on the
  ground at the waypoint ... and declines any commands";
* "as the real drone approaches a waypoint, the virtual drone presented
  automatically takes off to meet the physical drone's position";
* while active, forwards commands subject to the restriction template and
  the geofence;
* if the tenant has continuous devices, shows the *actual* position
  between waypoints (no discrepancy with device readings) but still
  declines commands;
* after the tenant finishes, "presents the drone as landing, where it
  stays for the remainder of the flight";
* on geofence breach runs: inform the virtual drone, disable commands,
  guide the drone back inside, loiter, then return control.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

import repro.obs as obs
from repro.flight.geo import GeoPoint
from repro.flight.geofence import Geofence, GeofenceBreach
from repro.mavlink.enums import (
    CUSTOM_MODE_ENABLED,
    SAFETY_ARMED,
    CopterMode,
    MavCommand,
    MavResult,
    MavState,
)
from repro.mavlink.messages import (
    CommandAck,
    CommandLong,
    GlobalPositionInt,
    Heartbeat,
    ManualControl,
    MavlinkMessage,
    SetPositionTarget,
    Statustext,
)
from repro.mavproxy.whitelist import RestrictionTemplate


class VfcState(enum.Enum):
    INACTIVE = "inactive"       # waypoint not yet reached: idle-on-ground view
    APPROACHING = "approaching" # synthetic takeoff to meet the real drone
    ACTIVE = "active"           # commands accepted (whitelisted, geofenced)
    RECOVERING = "recovering"   # breach recovery in progress
    HOLDING = "holding"         # link lost mid-waypoint: loiter until restored
    SAFETY = "safety"           # simplex fallback: hold/RTL-only control law
    FINISHED = "finished"       # landing/landed view for the rest of the flight


#: States in which the tenant sees (and the proxy manages) the real vehicle.
_LIVE_STATES = (VfcState.ACTIVE, VfcState.RECOVERING, VfcState.HOLDING,
                VfcState.SAFETY)

#: The simplex fallback's whitelist: while a tenant is demoted to SAFETY
#: its connection may only bring the vehicle home or down — return/land
#: commands and mode changes to RTL/LAND; everything else is declined
#: (see repro.security.simplex).
_SAFETY_COMMANDS = frozenset({MavCommand.NAV_RETURN_TO_LAUNCH,
                              MavCommand.NAV_LAND})
_SAFETY_MODES = frozenset({int(CopterMode.RTL), int(CopterMode.LAND)})


class VirtualFlightController:
    """One tenant's restricted, virtualized flight-controller connection."""

    def __init__(
        self,
        proxy,
        container: str,
        template: RestrictionTemplate,
        waypoint: Optional[GeoPoint] = None,
        continuous_view: bool = False,
    ):
        self.proxy = proxy
        self.container = container
        self.template = template
        self.waypoint = waypoint
        #: tenant holds continuous devices: real position shown when inactive.
        self.continuous_view = continuous_view
        self.state = VfcState.INACTIVE
        self.geofence: Optional[Geofence] = None
        self.commands_accepted = 0
        self.commands_denied = 0
        #: times the VFC entered HOLDING because the tenant link dropped.
        self.link_holds = 0
        #: messages queued for the tenant (statustexts, acks of virtual view).
        self.outbox: List[MavlinkMessage] = []
        self._virtual_alt_m = 0.0
        #: state to restore when the simplex safety fallback disengages.
        self._pre_safety_state: Optional[VfcState] = None

    # -- telemetry ---------------------------------------------------------------
    def _set_state(self, state: "VfcState", **attrs) -> None:
        previous = self.state
        self.state = state
        if previous is not state:
            obs.event("vfc.state", vfc=self.container, state=state.value,
                      previous=previous.value, **attrs)

    def _accept(self, kind: str) -> None:
        self.commands_accepted += 1
        obs.counter("mavproxy.commands", source=self.container,
                    kind=kind).inc()

    def _deny(self, kind: str, reason: str) -> None:
        self.commands_denied += 1
        obs.counter("mavproxy.denials", source=self.container, kind=kind,
                    reason=reason).inc()

    # -- lifecycle driven by the proxy / flight planner -----------------------------
    def activate(self, geofence: Geofence) -> None:
        """Waypoint reached: give the tenant control within the fence."""
        if self.state is VfcState.FINISHED:
            # Control was already revoked for the rest of the flight;
            # a late waypoint arrival must not resurrect the connection.
            return
        self.geofence = geofence
        if self.state is VfcState.SAFETY:
            # Demoted tenant reaching its waypoint: arm the fence and
            # record that exit_safety should hand back ACTIVE, but stay
            # quarantined — only the simplex controller lifts SAFETY.
            self._pre_safety_state = VfcState.ACTIVE
            self.proxy.fc_set_geofence(geofence,
                                       on_breach=self._handle_breach)
            return
        self._set_state(VfcState.ACTIVE, template=self.template.name)
        self.proxy.fc_set_geofence(geofence, on_breach=self._handle_breach)
        self.outbox.append(Statustext(severity=6, text="waypoint active: control granted"))

    def begin_approach(self) -> None:
        if self.state is VfcState.INACTIVE:
            self._set_state(VfcState.APPROACHING)

    def deactivate(self, next_waypoint: Optional[GeoPoint] = None) -> None:
        """Intermediate waypoint done: back to the inactive view, anchored
        at the tenant's next waypoint."""
        if self.state is VfcState.FINISHED:
            return
        if next_waypoint is not None:
            self.waypoint = next_waypoint
        self._virtual_alt_m = 0.0
        if self.state is VfcState.SAFETY:
            # Waypoint ended while demoted: drop the fence and restore
            # to the idle view once the fallback lifts, but stay
            # quarantined — only the simplex controller lifts SAFETY.
            self.proxy.fc_clear_geofence()
            self.geofence = None
            self._pre_safety_state = VfcState.INACTIVE
            return
        if self.state in _LIVE_STATES:
            self.proxy.fc_clear_geofence()
        self.geofence = None
        self._set_state(VfcState.INACTIVE)
        self.outbox.append(Statustext(severity=6, text="waypoint complete: moving on"))

    def finish(self) -> None:
        """Tenant done (or forced done): back to the landing view."""
        if self.state in _LIVE_STATES:
            self.proxy.fc_clear_geofence()
        self._set_state(VfcState.FINISHED,
                        accepted=self.commands_accepted,
                        denied=self.commands_denied)
        self.geofence = None
        self.outbox.append(Statustext(severity=6, text="waypoint complete: control revoked"))

    # -- link-loss degradation (repro.faults) ------------------------------------------
    def link_down(self) -> None:
        """Radio link to the tenant lost.  If the tenant is mid-waypoint
        the vehicle must not keep executing half-delivered intents: hold
        position (loiter) and decline commands until the link returns."""
        obs.counter("fault.link_losses", vfc=self.container).inc()
        if self.state is VfcState.ACTIVE:
            self.link_holds += 1
            self._set_state(VfcState.HOLDING, reason="link-loss")
            self.proxy.fc_set_mode(CopterMode.LOITER)
            self.outbox.append(Statustext(
                severity=4, text="link lost: holding position"))
        # In every other state the idle/landing view already declines
        # commands; nothing to degrade.

    def link_up(self) -> None:
        """Link restored: hand control back and resume the mission leg."""
        if self.state is VfcState.HOLDING:
            self.proxy.fc_set_mode(CopterMode.GUIDED)
            self._set_state(VfcState.ACTIVE, resumed=True)
            obs.event("fault.link_recovered", vfc=self.container)
            self.outbox.append(Statustext(
                severity=6, text="link restored: control returned"))

    # -- simplex safety fallback (repro.security) ---------------------------------------
    def enter_safety(self, reason: str) -> None:
        """Demote this connection to the minimal hold/RTL-only control
        law.  An actively-flying tenant's vehicle holds position
        (loiter); in every other state only the view changes."""
        if self.state in (VfcState.SAFETY, VfcState.FINISHED):
            return
        self._pre_safety_state = self.state
        was_active = self.state is VfcState.ACTIVE
        self._set_state(VfcState.SAFETY, reason=reason)
        if was_active:
            self.proxy.fc_set_mode(CopterMode.LOITER)
        self.outbox.append(Statustext(
            severity=4, text="security fallback: hold/RTL-only control"))

    def exit_safety(self) -> None:
        """Pressure cleared: hand back the pre-demotion control level."""
        if self.state is not VfcState.SAFETY:
            return
        prior = self._pre_safety_state or VfcState.INACTIVE
        self._pre_safety_state = None
        if prior is VfcState.ACTIVE:
            self.proxy.fc_set_mode(CopterMode.GUIDED)
        self._set_state(prior, restored=True)
        self.outbox.append(Statustext(
            severity=6, text="security fallback lifted: control restored"))

    # -- the tenant-facing MAVLink entry point ------------------------------------------
    def send(self, msg: MavlinkMessage) -> Optional[MavlinkMessage]:
        """Handle one message from the tenant; returns the reply (if any)."""
        guard = getattr(self.proxy, "rate_guard", None)
        if guard is not None and isinstance(
                msg, (CommandLong, SetPositionTarget, ManualControl)) \
                and not guard.try_admit(self.container):
            if isinstance(msg, CommandLong):
                self._deny("command", "rate-limit")
                return CommandAck(command=msg.command,
                                  result=int(MavResult.TEMPORARILY_REJECTED))
            self._deny("position_target"
                       if isinstance(msg, SetPositionTarget)
                       else "manual_control", "rate-limit")
            return None
        if isinstance(msg, CommandLong):
            result, reason = self._filter_command(msg)
            if result is None:
                ack_result = self.proxy.fc_command(msg)
                self._accept("command")
                return CommandAck(command=msg.command, result=int(ack_result))
            self._deny("command", reason)
            return CommandAck(command=msg.command, result=int(result))
        if isinstance(msg, SetPositionTarget):
            denied, reason = self._filter_position_target(msg)
            if denied is None:
                self._accept("position_target")
                self.proxy.fc_position_target(msg)
            else:
                self._deny("position_target", reason)
            return None
        if isinstance(msg, ManualControl):
            if self.state is VfcState.ACTIVE and self.template.allow_manual_control:
                self._accept("manual_control")
                self.proxy.fc_manual_control(msg, self)
            else:
                reason = ("whitelist" if self.state is VfcState.ACTIVE
                          else "inactive")
                self._deny("manual_control", reason)
            return None
        return None

    def _declines(self) -> bool:
        return self.state is not VfcState.ACTIVE

    def _decline_reason(self) -> str:
        return "link-lost" if self.state is VfcState.HOLDING else "inactive"

    def _filter_command(self, cmd: CommandLong) -> Tuple[Optional[MavResult], str]:
        """(None, "") = forward to the FC; a MavResult = decline with that
        code, tagged with the denial reason the telemetry counters use."""
        if self.state is VfcState.SAFETY:
            # The simplex fallback law: bring it home or bring it down,
            # nothing else.
            if cmd.command in _SAFETY_COMMANDS:
                return None, ""
            if (cmd.command == MavCommand.DO_SET_MODE
                    and int(cmd.param2) in _SAFETY_MODES):
                return None, ""
            return MavResult.TEMPORARILY_REJECTED, "simplex"
        if self._declines():
            return MavResult.TEMPORARILY_REJECTED, self._decline_reason()
        if cmd.command == MavCommand.DO_SET_MODE:
            if not self.template.permits_mode(int(cmd.param2)):
                return MavResult.DENIED, "mode"
            return None, ""
        if cmd.command == MavCommand.COMPONENT_ARM_DISARM:
            # Arming is implicit while active; tenants may not disarm the
            # real vehicle mid-flight.
            return MavResult.DENIED, "arming"
        # Guided-only tenants may not issue commands at all.
        if not self.template.permits_command(cmd.command):
            return MavResult.DENIED, "whitelist"
        if cmd.command == MavCommand.NAV_WAYPOINT and self.geofence is not None:
            target = GeoPoint(cmd.param5, cmd.param6, cmd.param7)
            if not self.geofence.contains(target):
                self.outbox.append(Statustext(
                    severity=4, text="waypoint outside geofence: denied"))
                return MavResult.DENIED, "geofence"
        return None, ""

    def _filter_position_target(self, msg: SetPositionTarget) -> Tuple[Optional[MavResult], str]:
        if self.state is VfcState.SAFETY:
            return MavResult.TEMPORARILY_REJECTED, "simplex"
        if self._declines():
            return MavResult.TEMPORARILY_REJECTED, self._decline_reason()
        uses_velocity = bool(msg.type_mask & 0x0007) and not (msg.type_mask & 0x0038)
        if uses_velocity and not self.template.allow_velocity_targets:
            return MavResult.DENIED, "whitelist"
        if not uses_velocity and not self.template.allow_position_targets:
            return MavResult.DENIED, "whitelist"
        if not uses_velocity and self.geofence is not None:
            target = GeoPoint(msg.lat_int / 1e7, msg.lon_int / 1e7, msg.alt)
            if not self.geofence.contains(target):
                self.outbox.append(Statustext(
                    severity=4, text="target outside geofence: denied"))
                return MavResult.DENIED, "geofence"
        return None, ""

    # -- the virtualized view ----------------------------------------------------------
    #: The synthetic views are stateless, so one shared instance serves
    #: every tenant (and the codec packs its payload exactly once).
    _APPROACHING_HEARTBEAT = Heartbeat(
        custom_mode=int(CopterMode.GUIDED),
        base_mode=CUSTOM_MODE_ENABLED | SAFETY_ARMED,
        system_status=int(MavState.ACTIVE))
    _IDLE_HEARTBEAT = Heartbeat(
        custom_mode=int(CopterMode.STABILIZE),
        base_mode=CUSTOM_MODE_ENABLED,
        system_status=int(MavState.STANDBY))

    def _live_view(self) -> bool:
        """Whether telemetry shows the real vehicle.  A SAFETY demotion
        keeps whichever view the tenant already had: demoted mid-flight
        it watches the vehicle hold, demoted while inactive it keeps the
        idle view (the real position between waypoints is another
        tenant's flight path — not a demoted tenant's to see)."""
        if self.state is VfcState.SAFETY:
            return self._pre_safety_state in (
                VfcState.ACTIVE, VfcState.RECOVERING, VfcState.HOLDING)
        return self.state in _LIVE_STATES

    def heartbeat(self) -> Heartbeat:
        if self._live_view():
            return self.proxy.fc_heartbeat()
        if self.state is VfcState.APPROACHING:
            return self._APPROACHING_HEARTBEAT
        # Idle on the ground (INACTIVE) or landed (FINISHED).
        return self._IDLE_HEARTBEAT

    def global_position(self) -> GlobalPositionInt:
        real = self.proxy.fc_global_position()
        if self._live_view():
            return real
        if self.continuous_view:
            # "To prevent a discrepancy between the view of the drone and
            # device readings, the actual drone's position is given."
            return real
        anchor = self.waypoint or self.proxy.home
        if self.state is VfcState.APPROACHING:
            # Synthetic takeoff: climb the virtual drone toward the real
            # altitude as the real vehicle closes in.
            real_alt = real.relative_alt / 1000.0
            self._virtual_alt_m = min(real_alt, self._virtual_alt_m + 1.5)
            alt = self._virtual_alt_m
        else:
            alt = 0.0
        return GlobalPositionInt(
            time_boot_ms=real.time_boot_ms,
            lat=int(round(anchor.latitude * 1e7)),
            lon=int(round(anchor.longitude * 1e7)),
            alt=int(round(alt * 1000)),
            relative_alt=int(round(alt * 1000)),
            vx=0, vy=0, vz=0, hdg=real.hdg,
        )

    def drain_outbox(self) -> List[MavlinkMessage]:
        messages, self.outbox = self.outbox, []
        return messages

    # -- breach recovery -------------------------------------------------------------------
    def _handle_breach(self, breach: GeofenceBreach) -> None:
        """AnDrone's modified geofence action (Section 4.3)."""
        if self.state not in (VfcState.ACTIVE, VfcState.HOLDING,
                              VfcState.RECOVERING):
            # A late fence callback (tenant finished, demoted to SAFETY,
            # or back between waypoints) must not re-grant a live
            # recovery state.
            return
        # 1. Inform the virtual drone of the breach.
        self.outbox.append(Statustext(severity=4, text=str(breach)))
        obs.counter("mavproxy.geofence_breaches", source=self.container).inc()
        # 2. Disable commands on the VFC connection.
        self._set_state(VfcState.RECOVERING, breach=str(breach))
        # 3. Guide the drone back inside the geofence.
        recovery = breach.fence.recovery_point(self.proxy.fc_position())
        self.proxy.fc_recover_to(recovery, on_recovered=self._recovery_done)

    def _recovery_done(self) -> None:
        # 4. Switch to loiter to hold position, then return control.
        self.proxy.fc_set_mode(CopterMode.LOITER)
        if self.state is VfcState.RECOVERING:
            self._set_state(VfcState.ACTIVE, recovered=True)
            self.outbox.append(Statustext(
                severity=6, text="geofence recovery complete: control returned"))
