"""MavProxy: the multiplexer between clients and the flight controller.

Holds the single real flight-controller connection (a
:class:`~repro.flight.sitl.SitlDrone` or the flight container's onboard
controller), a full-access **master** interface for the cloud flight
planner and service provider, and a :class:`VirtualFlightController` per
virtual drone.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import repro.obs as obs
from repro.flight.geo import GeoPoint
from repro.flight.geofence import Geofence
from repro.mavlink.enums import CopterMode, MavCommand, MavResult
from repro.mavlink.messages import (
    CommandLong,
    GlobalPositionInt,
    Heartbeat,
    ManualControl,
    SetPositionTarget,
)
from repro.mavproxy.vfc import VirtualFlightController
from repro.mavproxy.whitelist import RestrictionTemplate, TEMPLATES


class MavProxy:
    """The modified MAVProxy instance in the flight container."""

    def __init__(self, sim, drone):
        """``drone`` is anything with ``handle_mavlink`` and an
        ``autopilot`` (SitlDrone, or the onboard flight controller)."""
        self.sim = sim
        self.drone = drone
        self.vfcs: Dict[str, VirtualFlightController] = {}
        self.master_commands = 0
        #: abuse hardening: an optional per-tenant
        #: :class:`~repro.security.guards.RateGuard` every VFC consults
        #: (keyed by its container) before processing a tenant message.
        #: None in production — one is-None check when disabled.
        self.rate_guard = None
        # Telemetry-round snapshot (see TelemetryFanout): while a round is
        # open at the current sim timestamp, every VFC shares one real
        # heartbeat/position instead of re-reading the autopilot per
        # tenant.  Closed (None) outside fan-out rounds, so individually
        # scheduled servers behave exactly as before.
        self._round_at_us: Optional[int] = None
        self._round_heartbeat: Optional[Heartbeat] = None
        self._round_position: Optional[GlobalPositionInt] = None

    @property
    def home(self) -> GeoPoint:
        return self.drone.autopilot.home

    # -- client management -----------------------------------------------------------
    def create_vfc(
        self,
        container: str,
        template: RestrictionTemplate = None,
        waypoint: Optional[GeoPoint] = None,
        continuous_view: bool = False,
    ) -> VirtualFlightController:
        if container in self.vfcs:
            raise ValueError(f"container {container!r} already has a VFC")
        vfc = VirtualFlightController(
            self, container,
            template or TEMPLATES["guided-only"],
            waypoint=waypoint,
            continuous_view=continuous_view,
        )
        self.vfcs[container] = vfc
        obs.event("mavproxy.vfc_created", vfc=container,
                  template=vfc.template.name,
                  continuous_view=continuous_view)
        return vfc

    def vfc_for(self, container: str) -> VirtualFlightController:
        return self.vfcs[container]

    # -- master (flight planner) interface: unrestricted -------------------------------
    def master_command(self, cmd: CommandLong) -> MavResult:
        self.master_commands += 1
        obs.counter("mavproxy.commands", source="master", kind="command").inc()
        ack = self.drone.handle_mavlink(cmd)
        return MavResult(ack.result) if ack is not None else MavResult.FAILED

    def master_position_target(self, msg: SetPositionTarget) -> None:
        self.master_commands += 1
        obs.counter("mavproxy.commands", source="master",
                    kind="position_target").inc()
        self.drone.handle_mavlink(msg)

    def master_set_mode(self, mode: CopterMode) -> MavResult:
        return self.drone.autopilot.set_mode(mode)

    # -- flight-controller access used by VFCs -------------------------------------------
    def fc_command(self, cmd: CommandLong) -> MavResult:
        ack = self.drone.handle_mavlink(cmd)
        return MavResult(ack.result) if ack is not None else MavResult.FAILED

    def fc_position_target(self, msg: SetPositionTarget) -> None:
        self.drone.handle_mavlink(msg)

    def fc_manual_control(self, msg: ManualControl, vfc) -> None:
        """Map gamepad sticks to guided velocity, the closest analog our
        autopilot supports (full-rate manual modes need RC hardware)."""
        autopilot = self.drone.autopilot
        if autopilot.mode is not CopterMode.GUIDED:
            autopilot.set_mode(CopterMode.GUIDED)
        # MAVLink manual_control: x/y/z/r in [-1000, 1000], z throttle
        # [0, 1000] with 500 = hover.
        max_speed = 5.0
        vn = msg.x / 1000.0 * max_speed
        ve = msg.y / 1000.0 * max_speed
        vu = (msg.z - 500) / 500.0 * 2.0
        autopilot.velocity_target = (ve, vn, vu)
        if msg.r:
            autopilot.target_yaw = (autopilot.attitude_est.yaw
                                    + msg.r / 1000.0 * 0.5)

    def fc_heartbeat(self) -> Heartbeat:
        if self._round_at_us == self.sim.now:
            if self._round_heartbeat is None:
                self._round_heartbeat = self.drone.autopilot.make_heartbeat()
            return self._round_heartbeat
        return self.drone.autopilot.make_heartbeat()

    def fc_global_position(self) -> GlobalPositionInt:
        if self._round_at_us == self.sim.now:
            if self._round_position is None:
                self._round_position = \
                    self.drone.autopilot.make_global_position()
            return self._round_position
        return self.drone.autopilot.make_global_position()

    # -- telemetry rounds (driven by TelemetryFanout) ----------------------------------
    def begin_telemetry_round(self) -> None:
        """Open a shared-snapshot window at the current sim timestamp.

        No autopilot state changes inside a fan-out round (the round is a
        single simulator event), so one heartbeat/position read serves
        every tenant.
        """
        self._round_at_us = self.sim.now
        self._round_heartbeat = None
        self._round_position = None

    def end_telemetry_round(self) -> None:
        self._round_at_us = None
        self._round_heartbeat = None
        self._round_position = None

    def fc_position(self) -> GeoPoint:
        return self.drone.autopilot.position()

    def fc_set_mode(self, mode: CopterMode) -> None:
        self.drone.autopilot.set_mode(mode)

    def fc_set_geofence(self, fence: Geofence, on_breach: Callable) -> None:
        self.drone.autopilot.set_geofence(fence, enabled=True)
        self.drone.autopilot.on_breach = on_breach

    def fc_clear_geofence(self) -> None:
        self.drone.autopilot.set_geofence(None, enabled=False)
        self.drone.autopilot.on_breach = None

    def fc_recover_to(self, point: GeoPoint, on_recovered: Callable,
                      accept_m: float = 4.0) -> None:
        """Guide the vehicle to ``point`` (geofence recovery), then call
        back.  Temporarily takes the vehicle into GUIDED under proxy
        control; tenant commands are declined meanwhile."""
        autopilot = self.drone.autopilot
        autopilot.set_mode(CopterMode.GUIDED)
        autopilot.handle_command(CommandLong(
            command=int(MavCommand.NAV_WAYPOINT),
            param5=point.latitude, param6=point.longitude,
            param7=point.altitude_m,
        ))

        def poll():
            if autopilot.position().horizontal_distance_to(point) <= accept_m:
                on_recovered()
            else:
                self.sim.after(250_000, poll)

        self.sim.after(250_000, poll)


class TelemetryFanout:
    """Batched MAVLink telemetry fan-out for many tenants on one drone.

    Self-scheduled :class:`~repro.mavproxy.server.VfcServer` timers cost
    two simulator events per tenant per period and re-read the autopilot
    once per tenant.  The fanout replaces them with *two* shared timers
    for the whole drone: each round opens a proxy telemetry snapshot (one
    real heartbeat/position read, shared — and, via the codec's payload
    memo, packed once), emits every registered server's frame, and closes
    the snapshot.  Adding T tenants adds zero timers.

    Servers added here must not also self-schedule; ``add_server`` marks
    them fanout-driven so their ``start()`` skips the private timers.
    """

    def __init__(self, sim, proxy: MavProxy, heartbeat_hz: float = 1.0,
                 position_hz: float = 4.0):
        self.sim = sim
        self.proxy = proxy
        self.heartbeat_period_us = int(1e6 / heartbeat_hz)
        self.position_period_us = int(1e6 / position_hz)
        self._servers: list = []
        self._running = False
        self.heartbeat_rounds = 0
        self.position_rounds = 0

    def add_server(self, server) -> None:
        server.attach_fanout(self)
        self._servers.append(server)

    @property
    def servers(self) -> list:
        return list(self._servers)

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._heartbeat_round()
        self._position_round()

    def stop(self) -> None:
        self._running = False

    def _heartbeat_round(self) -> None:
        if not self._running:
            return
        self.heartbeat_rounds += 1
        self.proxy.begin_telemetry_round()
        try:
            for server in self._servers:
                server.emit_heartbeat()
        finally:
            self.proxy.end_telemetry_round()
        self.sim.after(self.heartbeat_period_us, self._heartbeat_round)

    def _position_round(self) -> None:
        if not self._running:
            return
        self.position_rounds += 1
        self.proxy.begin_telemetry_round()
        try:
            for server in self._servers:
                server.emit_position()
        finally:
            self.proxy.end_telemetry_round()
        self.sim.after(self.position_period_us, self._position_round)
