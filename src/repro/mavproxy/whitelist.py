"""MAVLink command whitelists.

"The extent of the restricted commands is configurable via a whitelist of
MAVLink commands available as a number of preconfigured whitelist
templates which are customizable by the service provider" (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet

from repro.mavlink.enums import CopterMode, MavCommand


@dataclass(frozen=True)
class RestrictionTemplate:
    """What a VFC connection may do."""

    name: str
    allowed_commands: FrozenSet[MavCommand]
    allowed_modes: FrozenSet[CopterMode]
    allow_position_targets: bool = True
    allow_velocity_targets: bool = False
    allow_manual_control: bool = False

    def permits_command(self, command: int) -> bool:
        try:
            return MavCommand(command) in self.allowed_commands
        except ValueError:
            return False

    def permits_mode(self, mode: int) -> bool:
        try:
            return CopterMode(mode) in self.allowed_modes
        except ValueError:
            return False

    def customized(self, **changes) -> "RestrictionTemplate":
        """Service-provider customization: a modified copy."""
        return replace(self, **changes)


#: Every :class:`~repro.mavlink.enums.MavCommand` member must be
#: *explicitly* classified below — in a template's allowed set or one of
#: these named sets — so a command's policy is always a decision, never
#: an omission.  The ``mav-whitelist`` checker (``python -m repro.lint``)
#: enforces this statically and
#: ``tests/mavproxy/test_whitelist_completeness.py`` mirrors it at
#: runtime.

#: Commands the VFC intercepts before any whitelist consultation:
#: DO_SET_MODE routes through :meth:`RestrictionTemplate.permits_mode`,
#: and COMPONENT_ARM_DISARM is always denied while a tenant is active
#: (``vfc.py::_filter_command`` — tenants may not disarm the real
#: vehicle mid-flight).
VFC_INTERCEPTED = frozenset({
    MavCommand.DO_SET_MODE,
    MavCommand.COMPONENT_ARM_DISARM,
})

#: Geofence-critical commands no template may ever grant: moving the
#: fence or home position would defeat "so long as it remains within
#: the geofence" (Section 4.3).
FENCE_CRITICAL = frozenset({
    MavCommand.DO_FENCE_ENABLE,
    MavCommand.DO_SET_HOME,
})

#: Flight-phase commands reserved to the FULL tier: returning to launch
#: or landing ends the *shared* flight for every other tenant, so the
#: standard tiers deny them and the flight planner's mission logic
#: brings the real vehicle home.
FULL_ONLY = frozenset({
    MavCommand.NAV_RETURN_TO_LAUNCH,
    MavCommand.NAV_LAND,
})

#: "The most restrictive template available will only allow the drone to
#: operate in guided mode wherein only a desired GPS position may be
#: given."
GUIDED_ONLY = RestrictionTemplate(
    name="guided-only",
    allowed_commands=frozenset(),
    allowed_modes=frozenset(),
    allow_position_targets=True,
    allow_velocity_targets=False,
    allow_manual_control=False,
)

#: Standard autonomy: guided navigation plus camera/gimbal and speed
#: control, but no mode free-for-all and no manual stick input.
STANDARD = RestrictionTemplate(
    name="standard",
    allowed_commands=frozenset({
        MavCommand.NAV_WAYPOINT,
        MavCommand.NAV_TAKEOFF,
        MavCommand.NAV_LOITER_UNLIM,
        MavCommand.CONDITION_YAW,
        MavCommand.DO_CHANGE_SPEED,
        MavCommand.DO_DIGICAM_CONTROL,
        MavCommand.DO_MOUNT_CONTROL,
        MavCommand.REQUEST_MESSAGE,
        MavCommand.SET_MESSAGE_INTERVAL,
    }),
    allowed_modes=frozenset({CopterMode.GUIDED, CopterMode.LOITER,
                             CopterMode.BRAKE}),
    allow_position_targets=True,
    allow_velocity_targets=True,
    allow_manual_control=False,
)

#: "The least restrictive template allows for full control of the drone so
#: long as it remains within the geofence."
FULL = RestrictionTemplate(
    name="full",
    allowed_commands=frozenset(
        cmd for cmd in MavCommand if cmd not in FENCE_CRITICAL
    ),
    allowed_modes=frozenset({
        CopterMode.STABILIZE, CopterMode.ALT_HOLD, CopterMode.GUIDED,
        CopterMode.LOITER, CopterMode.POSHOLD, CopterMode.BRAKE,
    }),
    allow_position_targets=True,
    allow_velocity_targets=True,
    allow_manual_control=True,
)

TEMPLATES = {t.name: t for t in (GUIDED_ONLY, STANDARD, FULL)}
