"""MAVLink command whitelists.

"The extent of the restricted commands is configurable via a whitelist of
MAVLink commands available as a number of preconfigured whitelist
templates which are customizable by the service provider" (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet

from repro.mavlink.enums import CopterMode, MavCommand


@dataclass(frozen=True)
class RestrictionTemplate:
    """What a VFC connection may do."""

    name: str
    allowed_commands: FrozenSet[MavCommand]
    allowed_modes: FrozenSet[CopterMode]
    allow_position_targets: bool = True
    allow_velocity_targets: bool = False
    allow_manual_control: bool = False

    def permits_command(self, command: int) -> bool:
        try:
            return MavCommand(command) in self.allowed_commands
        except ValueError:
            return False

    def permits_mode(self, mode: int) -> bool:
        try:
            return CopterMode(mode) in self.allowed_modes
        except ValueError:
            return False

    def customized(self, **changes) -> "RestrictionTemplate":
        """Service-provider customization: a modified copy."""
        return replace(self, **changes)


#: "The most restrictive template available will only allow the drone to
#: operate in guided mode wherein only a desired GPS position may be
#: given."
GUIDED_ONLY = RestrictionTemplate(
    name="guided-only",
    allowed_commands=frozenset(),
    allowed_modes=frozenset(),
    allow_position_targets=True,
    allow_velocity_targets=False,
    allow_manual_control=False,
)

#: Standard autonomy: guided navigation plus camera/gimbal and speed
#: control, but no mode free-for-all and no manual stick input.
STANDARD = RestrictionTemplate(
    name="standard",
    allowed_commands=frozenset({
        MavCommand.NAV_WAYPOINT,
        MavCommand.NAV_TAKEOFF,
        MavCommand.NAV_LOITER_UNLIM,
        MavCommand.CONDITION_YAW,
        MavCommand.DO_CHANGE_SPEED,
        MavCommand.DO_DIGICAM_CONTROL,
        MavCommand.DO_MOUNT_CONTROL,
        MavCommand.REQUEST_MESSAGE,
        MavCommand.SET_MESSAGE_INTERVAL,
    }),
    allowed_modes=frozenset({CopterMode.GUIDED, CopterMode.LOITER,
                             CopterMode.BRAKE}),
    allow_position_targets=True,
    allow_velocity_targets=True,
    allow_manual_control=False,
)

#: "The least restrictive template allows for full control of the drone so
#: long as it remains within the geofence."
FULL = RestrictionTemplate(
    name="full",
    allowed_commands=frozenset(
        cmd for cmd in MavCommand
        if cmd not in (MavCommand.DO_FENCE_ENABLE, MavCommand.DO_SET_HOME)
    ),
    allowed_modes=frozenset({
        CopterMode.STABILIZE, CopterMode.ALT_HOLD, CopterMode.GUIDED,
        CopterMode.LOITER, CopterMode.POSHOLD, CopterMode.BRAKE,
    }),
    allow_position_targets=True,
    allow_velocity_targets=True,
    allow_manual_control=True,
)

TEMPLATES = {t.name: t for t in (GUIDED_ONLY, STANDARD, FULL)}
