"""The modified MAVProxy: flight-controller virtualization.

AnDrone "leverages and modifies MAVProxy ... to allow multiple clients to
connect to the flight controller.  MAVProxy acts as an intermediary
between clients and the flight controller, which provides an indirection
mechanism to virtualize the flight controller" (Section 4.3).

* the **master connection** gives the cloud flight planner unrestricted
  native access;
* each virtual drone gets a **virtual flight controller (VFC)**: command
  whitelisting per a restriction template, a virtualized view of the
  vehicle (idle on the ground at the waypoint until the real drone
  arrives, a synthetic takeoff to meet it, landing after), geofenced
  control while active, and the non-failsafe breach recovery sequence.
"""

from repro.mavproxy.whitelist import RestrictionTemplate, TEMPLATES
from repro.mavproxy.vfc import VfcState, VirtualFlightController
from repro.mavproxy.proxy import MavProxy
from repro.mavproxy.server import GroundStation, VfcServer

__all__ = [
    "RestrictionTemplate",
    "TEMPLATES",
    "VfcState",
    "VirtualFlightController",
    "MavProxy",
    "GroundStation",
    "VfcServer",
]
