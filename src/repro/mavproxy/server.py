"""Network-facing VFC connections and the ground-station client.

The portal gives users "access information for the virtual drone, notably
its IP address and port information" (Section 2); the user then connects
a ground station (APM Planner in the paper's Section 6.5 trial) to the
VFC over the per-container VPN.  :class:`VfcServer` is the drone-side
endpoint: it decodes MAVLink frames from the tenant, feeds them through
the VFC's filtering, streams back the *virtualized* telemetry (heartbeat
at 1 Hz, position at 4 Hz, queued statustexts), and returns command acks.
:class:`GroundStation` is the matching client.
"""

from __future__ import annotations

from typing import List, Optional

from repro.mavlink.connection import MavlinkConnection
from repro.mavlink.messages import (
    CommandAck,
    CommandLong,
    GlobalPositionInt,
    Heartbeat,
    ManualControl,
    MavlinkMessage,
    SetPositionTarget,
    Statustext,
)
from repro.mavproxy.vfc import VirtualFlightController
from repro.net.network import Network


class VfcServer:
    """Serves one tenant's VFC over the simulated network."""

    def __init__(self, sim, vfc: VirtualFlightController, network: Network,
                 local_address: str, remote_address: str, link=None,
                 heartbeat_hz: float = 1.0, position_hz: float = 4.0,
                 session=None):
        self.sim = sim
        self.vfc = vfc
        self.connection = MavlinkConnection(
            network, local_address, remote_address, link, sysid=1,
            session=session)
        self.connection.on_message(self._on_message)
        self.heartbeat_period_us = int(1e6 / heartbeat_hz)
        self.position_period_us = int(1e6 / position_hz)
        self._running = False
        self._fanout = None
        self.commands_handled = 0

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        if self._fanout is None:
            # Classic mode: two private timers (unchanged behaviour).  A
            # fanout-driven server is ticked by the shared rounds instead.
            self._heartbeat_tick()
            self._position_tick()

    def stop(self) -> None:
        self._running = False

    def attach_fanout(self, fanout) -> None:
        """Hand telemetry scheduling to a shared TelemetryFanout."""
        self._fanout = fanout

    # -- inbound ----------------------------------------------------------------
    def _on_message(self, msg: MavlinkMessage, sysid: int, compid: int) -> None:
        if isinstance(msg, (CommandLong, SetPositionTarget, ManualControl)):
            self.commands_handled += 1
            reply = self.vfc.send(msg)
            if reply is not None:
                self.connection.send(reply)
            self._flush_outbox()

    # -- outbound telemetry ------------------------------------------------------
    def emit_heartbeat(self) -> None:
        if not self._running:
            return
        self.connection.send(self.vfc.heartbeat())
        self._flush_outbox()

    def emit_position(self) -> None:
        if not self._running:
            return
        self.connection.send(self.vfc.global_position())

    def _heartbeat_tick(self) -> None:
        if not self._running:
            return
        self.emit_heartbeat()
        self.sim.after(self.heartbeat_period_us, self._heartbeat_tick)

    def _position_tick(self) -> None:
        if not self._running:
            return
        self.emit_position()
        self.sim.after(self.position_period_us, self._position_tick)

    def _flush_outbox(self) -> None:
        for message in self.vfc.drain_outbox():
            self.connection.send(message)


class GroundStation:
    """A tenant-side MAVLink client (the APM Planner role)."""

    def __init__(self, sim, network: Network, local_address: str,
                 remote_address: str, link=None, session=None):
        self.sim = sim
        self.connection = MavlinkConnection(
            network, local_address, remote_address, link, sysid=255,
            session=session)
        self.connection.on_message(self._on_message)
        self.heartbeats: List[Heartbeat] = []
        self.positions: List[GlobalPositionInt] = []
        self.statustexts: List[str] = []
        self.acks: List[CommandAck] = []

    def _on_message(self, msg: MavlinkMessage, sysid: int, compid: int) -> None:
        if isinstance(msg, Heartbeat):
            self.heartbeats.append(msg)
        elif isinstance(msg, GlobalPositionInt):
            self.positions.append(msg)
        elif isinstance(msg, Statustext):
            self.statustexts.append(msg.text)
        elif isinstance(msg, CommandAck):
            self.acks.append(msg)

    def send_command(self, command: CommandLong) -> None:
        self.connection.send(command)

    def send(self, msg: MavlinkMessage) -> None:
        self.connection.send(msg)

    def last_position(self) -> Optional[GlobalPositionInt]:
        return self.positions[-1] if self.positions else None

    def last_heartbeat(self) -> Optional[Heartbeat]:
        return self.heartbeats[-1] if self.heartbeats else None

    def wait_for_ack(self, command: int, timeout_us: int = 2_000_000) -> Optional[CommandAck]:
        """Run the simulation until an ack for ``command`` arrives."""
        deadline = self.sim.now + timeout_us
        while self.sim.now < deadline:
            for ack in self.acks:
                if ack.command == command:
                    return ack
            self.sim.run(until=min(deadline, self.sim.now + 100_000))
        for ack in self.acks:
            if ack.command == command:
                return ack
        return None
