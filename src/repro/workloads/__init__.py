"""Workload analogs of the paper's benchmark tools.

* :mod:`repro.workloads.passmark` — the Android PassMark PerformanceTest
  CPU/disk/memory suite (Section 6.1);
* :mod:`repro.workloads.cyclictest` — the rt-tests wakeup-latency
  benchmark (Section 6.2, Figure 11);
* :mod:`repro.workloads.stress` — Amos Waterland's ``stress`` load
  generator (CPU/I/O/VM/disk workers);
* :mod:`repro.workloads.iperf` — network throughput traffic generating
  interrupt load.

All of them run as thread programs on the simulated kernel, so they
contend with each other — and with the flight stack — through the same
scheduler the real tools would.
"""

from repro.workloads.passmark import PassMarkInstance, PassMarkScores
from repro.workloads.cyclictest import CyclictestResult, run_cyclictest, start_cyclictest
from repro.workloads.stress import StressWorkload
from repro.workloads.iperf import IperfSession

__all__ = [
    "PassMarkInstance",
    "PassMarkScores",
    "CyclictestResult",
    "run_cyclictest",
    "start_cyclictest",
    "StressWorkload",
    "IperfSession",
]
