"""The iperf analog: network throughput traffic.

In the paper, iperf over Gigabit Ethernet "stress[es] the system and
generate[s] interrupts" — the interrupt load is precisely what stretches
PREEMPT's latency tail.  A session is a sender thread doing per-batch
syscall work plus a NIC interrupt source at the packet rate.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.kernel import Kernel, ops
from repro.kernel.interrupts import IrqSource


class IperfSession:
    """One iperf client saturating a link."""

    #: 940 Mbit/s of 1500-byte frames is ~78k packets/s; with interrupt
    #: coalescing (~16 frames/irq) that is ~5k interrupts/s.
    def __init__(self, kernel: Kernel, throughput_mbps: float = 940.0,
                 coalesce_frames: int = 16,
                 spawner: Optional[Callable] = None):
        self.kernel = kernel
        self.throughput_mbps = throughput_mbps
        packets_per_sec = throughput_mbps * 1e6 / 8.0 / 1500.0
        self.irq_rate_hz = packets_per_sec / coalesce_frames
        self._irq = IrqSource(kernel, "eth0", self.irq_rate_hz)
        self._spawn = spawner or (
            lambda program, name, **kw: kernel.spawn(program, name=name, **kw))
        self._thread = None
        self.bytes_sent = 0
        self.running = False

    def _sender(self):
        # Each 10 ms batch: socket syscalls + copy cost (~15% of one CPU
        # at full gigabit rate, matching real iperf on a Pi-class SoC).
        batch_bytes = int(self.throughput_mbps * 1e6 / 8.0 / 100.0)
        while True:
            yield ops.Syscall(600.0, name="sendmsg")
            yield ops.Cpu(900.0)
            self.bytes_sent += batch_bytes
            yield ops.Sleep(8_500.0)

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._irq.start()
        self._thread = self._spawn(self._sender(), "iperf")

    def stop(self) -> None:
        self.running = False
        self._irq.stop()
        if self._thread is not None:
            self.kernel.kill(self._thread)
            self._thread = None

    def measured_throughput_mbps(self, elapsed_s: float) -> float:
        if elapsed_s <= 0:
            return 0.0
        return self.bytes_sent * 8.0 / 1e6 / elapsed_s
