"""The PassMark PerformanceTest analog (paper Section 6.1).

Mirrors the structure of the real suite on Android:

* **CPU test** — multithreaded (one worker per CPU), pure compute;
* **disk test** — single-threaded, alternating filesystem work between
  CPU time (checksumming, request setup) and blocking I/O on mmc0;
* **memory test** — single-threaded, DRAM-bandwidth-bound accesses.

2D/3D graphics tests are omitted exactly as in the paper ("Android
Things does not have hardware accelerated GPU support").

Scores are work units per second, so "normalized performance" relative
to a stock single-instance run reproduces Figure 10's presentation
(score_stock / score; lower is better... the paper plots slowdown, which
is what :func:`normalized_slowdown` computes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.kernel import Kernel, ops

#: Work per test, microseconds of reference CPU time.
CPU_TEST_WORK_US = 4_000_000
DISK_TEST_WORK_US = 2_000_000
MEM_TEST_WORK_US = 2_000_000


@dataclass
class PassMarkScores:
    """Scores from one instance (work-units/second; higher is better)."""

    cpu: float = 0.0
    disk: float = 0.0
    memory: float = 0.0
    done: bool = False


def normalized_slowdown(stock: PassMarkScores, measured: PassMarkScores) -> Dict[str, float]:
    """Figure 10's metric: stock score / measured score (1.0 = parity,
    2.0 = half speed; lower is better)."""
    return {
        "cpu": stock.cpu / measured.cpu,
        "disk": stock.disk / measured.disk,
        "memory": stock.memory / measured.memory,
    }


class PassMarkInstance:
    """One PassMark run inside one container (or the host)."""

    def __init__(self, kernel: Kernel, spawner: Optional[Callable] = None,
                 label: str = "passmark", loop_forever: bool = False):
        """``spawner`` starts threads (defaults to host spawn); pass
        ``container.spawn`` to run inside a virtual drone."""
        self.kernel = kernel
        self.sim = kernel.sim
        self.label = label
        self.loop_forever = loop_forever
        self._spawn = spawner or (
            lambda program, name, **kw: kernel.spawn(program, name=name, **kw))
        self.scores = PassMarkScores()
        self.runs_completed = 0

    def start(self) -> None:
        self._spawn(self._controller(), f"{self.label}-main")

    # -- test programs ------------------------------------------------------------
    @staticmethod
    def _cpu_worker(work_us: float):
        remaining = work_us
        while remaining > 0:
            burst = min(2_000.0, remaining)
            yield ops.Cpu(burst)
            remaining -= burst

    @staticmethod
    def _disk_worker(work_us: float):
        # ~30% CPU (buffer prep, checksums), ~70% blocking I/O: this duty
        # cycle is why disk degrades ~2x (not 3x) with three instances.
        remaining = work_us
        while remaining > 0:
            yield ops.Cpu(300.0)
            yield ops.Io(700.0, device="mmc0", nbytes=64 * 1024)
            remaining -= 1_000.0

    @staticmethod
    def _mem_worker(work_us: float):
        remaining = work_us
        while remaining > 0:
            burst = min(1_000.0, remaining)
            yield ops.MemAccess(burst)
            remaining -= burst

    def _controller(self):
        while True:
            # CPU test: one worker per CPU, run to completion.
            started = self.sim.now
            workers = []
            for i in range(self.kernel.config.num_cpus):
                child = yield ops.Fork(
                    self._cpu_worker(CPU_TEST_WORK_US),
                    name=f"{self.label}-cpu{i}")
                workers.append(child)
            for child in workers:
                yield ops.Join(child)
            elapsed_s = max(1e-9, (self.sim.now - started) / 1e6)
            total_work = CPU_TEST_WORK_US * self.kernel.config.num_cpus
            self.scores.cpu = total_work / elapsed_s

            # Disk test: single-threaded.
            started = self.sim.now
            for step in self._disk_worker(DISK_TEST_WORK_US):
                yield step
            elapsed_s = max(1e-9, (self.sim.now - started) / 1e6)
            self.scores.disk = DISK_TEST_WORK_US / elapsed_s

            # Memory test: single-threaded.
            started = self.sim.now
            for step in self._mem_worker(MEM_TEST_WORK_US):
                yield step
            elapsed_s = max(1e-9, (self.sim.now - started) / 1e6)
            self.scores.memory = MEM_TEST_WORK_US / elapsed_s

            self.scores.done = True
            self.runs_completed += 1
            if not self.loop_forever:
                return self.scores
