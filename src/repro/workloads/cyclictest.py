"""The cyclictest analog (paper Section 6.2, Figure 11).

"We ran the commonly used latency benchmark, cyclictest, and configured
it to run in the flight container in the same way as AnDrone runs
ArduPilot by locking all memory allocations and assigning its thread the
highest real-time priority."

The thread sleeps on an absolute timer each interval and records the
wakeup latency the kernel reports — timer IRQ overhead plus the
preemption model's non-preemptible residual plus scheduling, exactly the
quantity the real tool measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.kernel import Kernel, SchedPolicy, ops


@dataclass
class CyclictestResult:
    """Latency samples plus the summary statistics the tool prints."""

    latencies_us: List[float] = field(default_factory=list)
    interval_us: int = 1_000
    done: bool = False

    @property
    def count(self) -> int:
        return len(self.latencies_us)

    @property
    def min_us(self) -> float:
        return min(self.latencies_us) if self.latencies_us else 0.0

    @property
    def avg_us(self) -> float:
        if not self.latencies_us:
            return 0.0
        return sum(self.latencies_us) / len(self.latencies_us)

    @property
    def max_us(self) -> float:
        return max(self.latencies_us) if self.latencies_us else 0.0

    def percentile(self, p: float) -> float:
        if not self.latencies_us:
            return 0.0
        ordered = sorted(self.latencies_us)
        k = min(len(ordered) - 1, int(round(p / 100.0 * (len(ordered) - 1))))
        return ordered[k]

    def histogram(self, bins_per_decade: int = 10, max_us: float = 100_000.0):
        """Log-binned (latency, count) pairs, like Figure 11's axes."""
        counts = {}
        for latency in self.latencies_us:
            latency = max(latency, 1.0)
            bin_index = int(math.log10(latency) * bins_per_decade)
            counts[bin_index] = counts.get(bin_index, 0) + 1
        return sorted(
            (10 ** (index / bins_per_decade), count)
            for index, count in counts.items()
        )

    def misses(self, deadline_us: float) -> int:
        """Samples exceeding a deadline (e.g. ArduPilot's 2500 us)."""
        return sum(1 for lat in self.latencies_us if lat > deadline_us)


def cyclictest_program(result: CyclictestResult, loops: int, interval_us: int):
    """The measurement thread: clock_nanosleep(TIMER_ABSTIME) in a loop."""
    for _ in range(loops):
        latency = yield ops.Sleep(interval_us)
        result.latencies_us.append(latency)
    result.done = True


def start_cyclictest(kernel: Kernel, loops: int = 10_000,
                     interval_us: int = 1_000, priority: int = 99,
                     spawner: Optional[Callable] = None) -> CyclictestResult:
    """Launch cyclictest at SCHED_FIFO ``priority``; returns the (live)
    result object — run the simulator to fill it."""
    result = CyclictestResult(interval_us=interval_us)
    spawn = spawner or (lambda program, name, **kw: kernel.spawn(program, name=name, **kw))
    spawn(cyclictest_program(result, loops, interval_us), "cyclictest",
          policy=SchedPolicy.FIFO, priority=priority)
    return result


def run_cyclictest(kernel: Kernel, loops: int = 10_000,
                   interval_us: int = 1_000, priority: int = 99,
                   spawner: Optional[Callable] = None) -> CyclictestResult:
    """Convenience: launch and run the simulator until done."""
    result = start_cyclictest(kernel, loops, interval_us, priority, spawner)
    # Generous horizon: loops * interval plus slack for tail latencies.
    kernel.sim.run(until=kernel.sim.now + int(loops * interval_us * 1.5) + 1_000_000)
    return result
