"""The ``stress`` load generator analog.

Section 6.2's worst-case scenario "strain[s] CPU, memory, I/O, and disk
subsystems": the paper ran 4 CPU workers, 2 I/O workers, 2 memory
workers, and 2 disk workers.  Each worker is a kernel thread looping
forever until stopped.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.kernel import Kernel, ops


class StressWorkload:
    """stress --cpu N --io N --vm N --hdd N."""

    def __init__(self, kernel: Kernel, cpu_workers: int = 4, io_workers: int = 2,
                 vm_workers: int = 2, hdd_workers: int = 2,
                 spawner: Optional[Callable] = None):
        self.kernel = kernel
        self.cpu_workers = cpu_workers
        self.io_workers = io_workers
        self.vm_workers = vm_workers
        self.hdd_workers = hdd_workers
        self._spawn = spawner or (
            lambda program, name, **kw: kernel.spawn(program, name=name, **kw))
        self._threads: List = []
        self.running = False

    # -- worker programs ----------------------------------------------------------
    @staticmethod
    def _cpu_loop():
        while True:
            yield ops.Cpu(2_000.0)   # sqrt() spinning

    @staticmethod
    def _io_loop():
        # sync() storms: short syscall bursts + small I/O.
        while True:
            yield ops.Syscall(150.0, name="sync")
            yield ops.Io(300.0, device="mmc0", nbytes=4096)

    @staticmethod
    def _vm_loop():
        # malloc/memset churn: memory-bandwidth-bound.
        while True:
            yield ops.MemAccess(1_500.0)
            yield ops.Cpu(100.0)

    @staticmethod
    def _hdd_loop():
        # large sequential writes.
        while True:
            yield ops.Cpu(200.0)
            yield ops.Io(1_200.0, device="mmc0", nbytes=1024 * 1024)

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        specs = (
            [("cpu", self._cpu_loop)] * self.cpu_workers
            + [("io", self._io_loop)] * self.io_workers
            + [("vm", self._vm_loop)] * self.vm_workers
            + [("hdd", self._hdd_loop)] * self.hdd_workers
        )
        for index, (kind, factory) in enumerate(specs):
            self._threads.append(
                self._spawn(factory(), f"stress-{kind}-{index}"))

    def stop(self) -> None:
        for thread in self._threads:
            self.kernel.kill(thread)
        self._threads.clear()
        self.running = False
