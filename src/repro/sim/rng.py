"""Named, seeded random streams.

Every stochastic model in the reproduction (preemption windows, sensor
noise, link latency, workload jitter) draws from its own named stream so
that adding randomness to one component never perturbs another, and any run
is reproducible from the single root seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Hands out :class:`random.Random` instances keyed by stream name."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Derive an independent child registry (e.g. one per drone)."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
