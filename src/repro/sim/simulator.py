"""The discrete-event simulator: a clock and an ordered event queue.

An :class:`Event` is a callback scheduled at an absolute virtual time.
Events at the same timestamp fire in the order they were scheduled, which
keeps runs deterministic.  Components either schedule callbacks directly or
run generator-based :class:`~repro.sim.process.Process` objects on top of
the simulator.

Same-tick ordering is also a *pluggable* dimension: installing a
:class:`TieBreaker` (``sim.set_tie_breaker(...)``) routes the drain loop
through an explored variant in which every set of runnable events sharing
the current timestamp is handed to the tie-breaker to pick from.  The
default (no tie-breaker) keeps the original FIFO heap order on the
original hot loop, byte for byte; explorers in :mod:`repro.sched` use the
hook to permute, enumerate, and replay same-tick schedules for race
hunting.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulator (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events support cancellation: a cancelled event stays in the heap but is
    skipped when popped.  This makes cancel O(1) and keeps the heap simple.

    ``key`` is the event's *stable logical identity*: a short label naming
    the scheduling site (``"binder.flush"``, ``"proc.planner"``), not the
    scheduling order.  Keys let schedule explorers and their artifacts
    refer to an event independently of ``seq`` (which depends on execution
    history) and give priority-based tie-breakers a unit to prioritize.
    An empty key means "anonymous": still explorable, just unnamed.
    """

    __slots__ = ("time", "seq", "fn", "cancelled", "key")

    def __init__(self, time: int, seq: int, fn: Callable[[], Any],
                 key: str = ""):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self.key = key

    def cancel(self) -> None:
        """Prevent the event's callback from running."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        label = f" key={self.key!r}" if self.key else ""
        return f"<Event t={self.time}us seq={self.seq}{label}{state}>"


class Simulator:
    """Single-threaded discrete-event simulator with a microsecond clock."""

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._queue: List[Event] = []
        self._running = False
        #: Optional same-tick ordering policy (see repro.sched.tiebreak).
        #: None means the original FIFO heap order on the original loop.
        self.tie_breaker = None
        #: While a tie-breaker is installed: the live events popped off
        #: the heap that share the current timestamp and have not run
        #: yet, ascending seq.  Survives across step() calls so drivers
        #: that single-step (the fleet harness) explore identically to
        #: ones that drain via run().
        self._tick: List[Event] = []

    @property
    def now(self) -> int:
        """Current virtual time in integer microseconds."""
        return self._now

    def set_tie_breaker(self, tie_breaker) -> None:
        """Install (or with ``None`` remove) a same-tick ordering policy.

        The tie-breaker is consulted by :meth:`run`/:meth:`step` whenever
        more than one live event shares the current timestamp; it never
        reorders events across *different* timestamps, so causality along
        the virtual clock is preserved under any policy.
        """
        self.tie_breaker = tie_breaker
        if tie_breaker is None and self._tick:
            # Hand any in-flight same-tick set back to the heap so the
            # default loop sees every unexecuted event.
            for event in self._tick:
                heapq.heappush(self._queue, event)
            self._tick = []

    def at(self, time: int, fn: Callable[[], Any], key: str = "") -> Event:
        """Schedule ``fn`` to run at absolute virtual time ``time``.

        ``key`` optionally names the event's logical scheduling site for
        schedule exploration (see :class:`Event`).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time}us, clock is at {self._now}us"
            )
        event = Event(int(time), self._seq, fn, key)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def after(self, delay: int, fn: Callable[[], Any], key: str = "") -> Event:
        """Schedule ``fn`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}us")
        return self.at(self._now + int(delay), fn, key)

    def call_soon(self, fn: Callable[[], Any], key: str = "") -> Event:
        """Schedule ``fn`` at the current time, after already-queued events."""
        return self.after(0, fn, key)

    def peek(self) -> Optional[int]:
        """Return the time of the next pending event, or ``None`` if idle."""
        if self._tick and any(not e.cancelled for e in self._tick):
            return self._now
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0].time

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        if self.tie_breaker is not None:
            return self._step_explored()
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.fn()
            return True
        return False

    def _step_explored(self) -> bool:
        """One tie-breaker-ordered event (the explored twin of step()).

        Maintains the instance-level same-tick set: events a callback
        scheduled at the current timestamp are absorbed into the set
        before the next pick, so freshly spawned work competes with the
        backlog exactly like a preemptable runqueue.  With the FIFO
        tie-breaker (lowest seq first) the execution order is provably
        identical to the default heap order.
        """
        queue = self._queue
        tick = self._tick
        while True:
            if tick:
                # Absorb same-timestamp arrivals; their seqs are above
                # everything already here, so appending keeps the set
                # seq-sorted.  Then drop members cancelled mid-tick.
                while queue and queue[0].time == self._now:
                    event = heapq.heappop(queue)
                    if not event.cancelled:
                        tick.append(event)
                if any(e.cancelled for e in tick):
                    tick[:] = [e for e in tick if not e.cancelled]
                if not tick:
                    continue
            else:
                while queue and queue[0].cancelled:
                    heapq.heappop(queue)
                if not queue:
                    return False
                tick_time = queue[0].time
                while queue and queue[0].time == tick_time:
                    event = heapq.heappop(queue)
                    if not event.cancelled:
                        tick.append(event)
                if not tick:
                    continue
                self._now = tick_time
            index = 0 if len(tick) == 1 else self.tie_breaker.pick(
                self._now, tick)
            event = tick.pop(index)
            event.fn()
            return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Args:
            until: stop once the clock would pass this absolute time.  The
                clock is advanced to ``until`` even if the queue empties
                earlier, mirroring real time passing with nothing to do.
            max_events: safety valve against runaway simulations.

        Returns:
            The number of events executed.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        if self.tie_breaker is not None:
            return self._run_explored(until, max_events)
        self._running = True
        executed = 0
        # The drain loop is the hottest code in the tree (every sim event
        # in every run passes through it), so the peek()/step() pair is
        # inlined into a single heap access per event: cancelled events
        # are popped without counting, everything else pays exactly one
        # heappop, one clock store, and one call.
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue:
                event = queue[0]
                if event.cancelled:
                    pop(queue)
                    continue
                if until is not None and event.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                pop(queue)
                self._now = event.time
                event.fn()
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = int(until)
        return executed

    def _run_explored(self, until: Optional[int],
                      max_events: Optional[int]) -> int:
        """The tie-breaker drain loop: ``run()`` over explored steps.

        ``peek()`` is consulted before each step so the clock never
        advances past ``until`` while forming a same-tick set; unexecuted
        members of the in-flight set live in ``self._tick`` and survive
        early exits (max_events, an exception mid-tick) into the next
        run()/step() call.
        """
        self._running = True
        executed = 0
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self._step_explored()
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = int(until)
        return executed

    def run_for(self, duration: int, max_events: Optional[int] = None) -> int:
        """Run the simulation for ``duration`` microseconds from now."""
        return self.run(until=self._now + int(duration), max_events=max_events)

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return (sum(1 for e in self._queue if not e.cancelled)
                + sum(1 for e in self._tick if not e.cancelled))
