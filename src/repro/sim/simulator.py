"""The discrete-event simulator: a clock and an ordered event queue.

An :class:`Event` is a callback scheduled at an absolute virtual time.
Events at the same timestamp fire in the order they were scheduled, which
keeps runs deterministic.  Components either schedule callbacks directly or
run generator-based :class:`~repro.sim.process.Process` objects on top of
the simulator.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulator (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events support cancellation: a cancelled event stays in the heap but is
    skipped when popped.  This makes cancel O(1) and keeps the heap simple.
    """

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[[], Any]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event's callback from running."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time}us seq={self.seq}{state}>"


class Simulator:
    """Single-threaded discrete-event simulator with a microsecond clock."""

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._queue: List[Event] = []
        self._running = False

    @property
    def now(self) -> int:
        """Current virtual time in integer microseconds."""
        return self._now

    def at(self, time: int, fn: Callable[[], Any]) -> Event:
        """Schedule ``fn`` to run at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time}us, clock is at {self._now}us"
            )
        event = Event(int(time), self._seq, fn)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def after(self, delay: int, fn: Callable[[], Any]) -> Event:
        """Schedule ``fn`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}us")
        return self.at(self._now + int(delay), fn)

    def call_soon(self, fn: Callable[[], Any]) -> Event:
        """Schedule ``fn`` at the current time, after already-queued events."""
        return self.after(0, fn)

    def peek(self) -> Optional[int]:
        """Return the time of the next pending event, or ``None`` if idle."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0].time

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.fn()
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Args:
            until: stop once the clock would pass this absolute time.  The
                clock is advanced to ``until`` even if the queue empties
                earlier, mirroring real time passing with nothing to do.
            max_events: safety valve against runaway simulations.

        Returns:
            The number of events executed.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        # The drain loop is the hottest code in the tree (every sim event
        # in every run passes through it), so the peek()/step() pair is
        # inlined into a single heap access per event: cancelled events
        # are popped without counting, everything else pays exactly one
        # heappop, one clock store, and one call.
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue:
                event = queue[0]
                if event.cancelled:
                    pop(queue)
                    continue
                if until is not None and event.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                pop(queue)
                self._now = event.time
                event.fn()
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = int(until)
        return executed

    def run_for(self, duration: int, max_events: Optional[int] = None) -> int:
        """Run the simulation for ``duration`` microseconds from now."""
        return self.run(until=self._now + int(duration), max_events=max_events)

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)
