"""Generator-based processes on top of the simulator.

A :class:`Process` wraps a generator that yields *wait descriptions*:

* :class:`Timeout` — resume after a number of microseconds;
* :class:`WaitSignal` — resume when a :class:`Signal` fires, receiving the
  value passed to :meth:`Signal.fire`.

Processes are used for everything that is naturally sequential but not
scheduled by the simulated kernel: network message delivery, the cloud
flight planner's supervision loop, scripted mission steps, and so on.
(Threads *inside* the simulated kernel use a different mechanism; see
:mod:`repro.kernel.thread`.)
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.sim.simulator import Simulator


class Timeout:
    """Yielded by a process to sleep for ``delay`` microseconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: int):
        if delay < 0:
            raise ValueError(f"negative timeout {delay}")
        self.delay = int(delay)


class Signal:
    """A broadcast condition processes can wait on.

    Firing wakes every current waiter exactly once; waiters registered after
    the fire wait for the next one.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self._sim = sim
        self.name = name
        self._waiters: List[Callable[[Any], None]] = []

    def fire(self, value: Any = None) -> None:
        """Wake all current waiters, delivering ``value`` to each."""
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            self._sim.call_soon(lambda w=waiter: w(value))

    def _subscribe(self, callback: Callable[[Any], None]) -> None:
        self._waiters.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Signal {self.name!r} waiters={len(self._waiters)}>"


class WaitSignal:
    """Yielded by a process to block until ``signal`` fires."""

    __slots__ = ("signal",)

    def __init__(self, signal: Signal):
        self.signal = signal


class Process:
    """Drives a generator over the simulator's virtual clock."""

    def __init__(self, sim: Simulator, gen: Generator, name: str = ""):
        self._sim = sim
        self._gen = gen
        self.name = name
        self.done = False
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self.finished = Signal(sim, f"{name}.finished")
        sim.call_soon(lambda: self._advance(None))

    def _advance(self, value: Any) -> None:
        if self.done:
            return
        try:
            waited = self._gen.send(value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self.finished.fire(self.result)
            return
        except BaseException as exc:  # re-raised below; the driver records any failure, GeneratorExit included  # repro-lint: disable=error-taxonomy
            self.done = True
            self.exception = exc
            self.finished.fire(None)
            raise
        if isinstance(waited, Timeout):
            self._sim.after(waited.delay, lambda: self._advance(None))
        elif isinstance(waited, WaitSignal):
            waited.signal._subscribe(self._advance)
        elif isinstance(waited, Signal):
            waited._subscribe(self._advance)
        else:
            raise TypeError(f"process {self.name!r} yielded {waited!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "running"
        return f"<Process {self.name!r} {state}>"
