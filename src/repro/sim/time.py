"""Time units for the simulator.

The simulated clock ticks in integer microseconds.  These helpers make call
sites read naturally (``seconds(2)`` instead of ``2_000_000``) and perform
the rounding in one place.
"""

MICROS_PER_MS = 1_000
MICROS_PER_SEC = 1_000_000


def micros(us: float) -> int:
    """Round a microsecond quantity to an integer tick count."""
    return int(round(us))


def millis(ms: float) -> int:
    """Convert milliseconds to integer microseconds."""
    return int(round(ms * MICROS_PER_MS))


def seconds(s: float) -> int:
    """Convert seconds to integer microseconds."""
    return int(round(s * MICROS_PER_SEC))


def to_seconds(us: int) -> float:
    """Convert integer microseconds back to float seconds."""
    return us / MICROS_PER_SEC


def to_millis(us: int) -> float:
    """Convert integer microseconds back to float milliseconds."""
    return us / MICROS_PER_MS
