"""Discrete-event simulation core.

Everything in the reproduction runs on top of this package: the simulated
Linux kernel, network links, the flight controller loop, and the cloud
service all advance a single shared virtual clock managed by a
:class:`~repro.sim.simulator.Simulator`.

Time is kept as an integer number of **microseconds** to avoid floating
point drift over long runs; helpers for converting to and from seconds and
milliseconds live in :mod:`repro.sim.time`.

Determinism: all randomness must come from named streams obtained from a
:class:`~repro.sim.rng.RngRegistry` so that a run is reproducible
bit-for-bit from its root seed.
"""

from repro.sim.simulator import Event, Simulator
from repro.sim.process import Process, Timeout, WaitSignal, Signal
from repro.sim.rng import RngRegistry
from repro.sim.time import MICROS_PER_MS, MICROS_PER_SEC, micros, millis, seconds

__all__ = [
    "Event",
    "Simulator",
    "Process",
    "Timeout",
    "WaitSignal",
    "Signal",
    "RngRegistry",
    "MICROS_PER_MS",
    "MICROS_PER_SEC",
    "micros",
    "millis",
    "seconds",
]
