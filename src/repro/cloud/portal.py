"""The AnDrone web portal (paper Section 2, Figure 1).

The ordering workflow: select waypoints and a time range, pick a drone
type, choose apps from the store (the portal prompts for each app's
AnDrone-manifest arguments), set a maximum billing charge (which caps the
energy allotment), and optionally request advanced direct access with
explicit device lists.  The portal emits the virtual drone JSON
definition, tracks order state through the flight, and delivers
notifications (modelled as a message log) and access information.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import repro.obs as obs
from repro.android.manifest import ManifestError
from repro.cloud.admission import AdmissionController, BusyError
from repro.cloud.app_store import AppStore
from repro.cloud.billing import BillingService
from repro.vdc.definition import (
    KNOWN_DEVICES,
    DefinitionError,
    VirtualDroneDefinition,
    WaypointSpec,
)



class PortalError(ValueError):
    """Invalid order input."""


class UnknownOrderError(PortalError, KeyError):
    """An order id the portal has never issued (or no longer tracks)."""

    def __init__(self, order_id: int):
        PortalError.__init__(self, f"unknown order id {order_id!r}")
        self.order_id = order_id

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


class PortalBusyError(PortalError):
    """The portal is at capacity; retry after ``retry_after_s``."""

    def __init__(self, message: str, retry_after_s: float):
        PortalError.__init__(self, message)
        self.retry_after_s = retry_after_s


class OrderState(enum.Enum):
    CONFIGURING = "configuring"
    SUBMITTED = "submitted"
    SCHEDULED = "scheduled"      # operating window confirmed
    IN_FLIGHT = "in_flight"
    COMPLETED = "completed"
    INTERRUPTED = "interrupted"  # to be resumed on a later flight
    CANCELLED = "cancelled"      # withdrawn by the user before flight


@dataclass
class Notification:
    channel: str    # "email" or "sms"
    text: str


@dataclass
class Order:
    """One user's virtual drone order."""

    order_id: int
    user: str
    drone_type: str
    definition: VirtualDroneDefinition
    max_charge: float
    estimated_flight_time_s: float
    schedule_mode: str = "flexible"
    window_confirmed: bool = False
    state: OrderState = OrderState.SUBMITTED
    notifications: List[Notification] = field(default_factory=list)
    access_info: Optional[Dict[str, Any]] = None
    result_links: List[str] = field(default_factory=list)


#: Geofence radius defaults and cap (Section 2: "up to a maximum size
#: ... with a default size provided").
DEFAULT_GEOFENCE_RADIUS_M = 30.0
MAX_GEOFENCE_RADIUS_M = 100.0


class WebPortal:
    """The user-facing front end of the cloud service."""

    def __init__(self, app_store: AppStore, billing: BillingService,
                 drone_types: Optional[Dict[str, str]] = None,
                 admission: Optional[AdmissionController] = None):
        self.app_store = app_store
        self.billing = billing
        #: drone type name -> human description (video, sensor payloads, ...)
        self.drone_types = drone_types or {
            "standard": "quadcopter with camera and GPS",
            "video": "quadcopter specialized for stabilized video",
            "sensor": "quadcopter with environmental sensor payload",
            "dense": "high-capacity quadcopter for many concurrent tenants",
        }
        #: back-pressure on order submission; None = unguarded front door.
        self.admission = admission
        self.orders: Dict[int, Order] = {}
        # Per-portal, not module-global: two AnDroneSystems in the same
        # process must hand out the same tenant names for the same order
        # sequence, or seeded runs stop replaying bit-for-bit.
        self._order_ids = itertools.count(1)

    def seek_order_ids(self, next_id: int) -> None:
        """Continue numbering orders from ``next_id``.

        Sharded fleet execution partitions one logical fleet across
        portal instances; seeking each shard's counter to its partition
        offset keeps tenant names (``user-orderN``) globally unique and
        identical to the unsharded run.
        """
        if next_id < 1:
            raise PortalError(f"order ids start at 1, got {next_id}")
        self._order_ids = itertools.count(next_id)

    def _get_order(self, order_id: int) -> Order:
        order = self.orders.get(order_id)
        if order is None:
            raise UnknownOrderError(order_id)
        return order

    # -- ordering (basic service) ----------------------------------------------------
    def order_virtual_drone(
        self,
        user: str,
        waypoints: List[Dict[str, float]],
        drone_type: str = "standard",
        apps: Optional[List[str]] = None,
        app_args: Optional[Dict[str, Dict[str, Any]]] = None,
        max_charge: float = 25.0,
        max_duration_s: float = 600.0,
        geofence_radius_m: Optional[float] = None,
        extra_devices: Optional[Dict[str, str]] = None,
        schedule_mode: str = "flexible",
    ) -> Order:
        """Order a virtual drone; returns the submitted order.

        ``extra_devices`` (advanced usage) maps device name to access type
        ("waypoint" or "continuous") beyond what the apps' manifests
        request.

        ``schedule_mode`` is "immediate" (the user will take over as soon
        as the drone reaches the first waypoint, so the window estimate is
        sent right away) or "flexible" (the window is proposed a day in
        advance for confirmation) — Section 2's two advanced flows.
        """
        if schedule_mode not in ("immediate", "flexible"):
            raise PortalError(f"bad schedule mode {schedule_mode!r}")
        if self.admission is not None:
            try:
                self.admission.admit(user)
            except BusyError as busy:
                obs.counter("portal.rejected", user=user).inc()
                raise PortalBusyError(
                    str(busy), retry_after_s=busy.retry_after_s) from busy
            try:
                return self._submit_order(
                    user, waypoints, drone_type, apps, app_args, max_charge,
                    max_duration_s, geofence_radius_m, extra_devices,
                    schedule_mode)
            except PortalError:
                # Invalid orders never occupy a pending slot.
                self.admission.release()
                raise
        return self._submit_order(
            user, waypoints, drone_type, apps, app_args, max_charge,
            max_duration_s, geofence_radius_m, extra_devices, schedule_mode)

    def _submit_order(
        self,
        user: str,
        waypoints: List[Dict[str, float]],
        drone_type: str,
        apps: Optional[List[str]],
        app_args: Optional[Dict[str, Dict[str, Any]]],
        max_charge: float,
        max_duration_s: float,
        geofence_radius_m: Optional[float],
        extra_devices: Optional[Dict[str, str]],
        schedule_mode: str,
    ) -> Order:
        if drone_type not in self.drone_types:
            raise PortalError(f"unknown drone type {drone_type!r}: "
                              f"choose from {sorted(self.drone_types)}")
        if not waypoints:
            raise PortalError("select at least one waypoint")
        radius = geofence_radius_m if geofence_radius_m is not None \
            else DEFAULT_GEOFENCE_RADIUS_M
        if radius > MAX_GEOFENCE_RADIUS_M:
            raise PortalError(
                f"geofence radius {radius} m exceeds the maximum "
                f"{MAX_GEOFENCE_RADIUS_M} m")
        specs = [WaypointSpec.from_json({**w, "max-radius": w.get("max-radius", radius)})
                 for w in waypoints]
        # Collect device needs from app manifests + validate app args.
        waypoint_devices: List[str] = []
        continuous_devices: List[str] = []
        for package in apps or []:
            store_app = self.app_store.get(package)
            supplied = (app_args or {}).get(package, {})
            try:
                store_app.androne_manifest.validate_args(supplied)
            except ManifestError as bad:
                raise PortalError(f"app {package!r}: {bad}") from bad
            waypoint_devices += store_app.androne_manifest.waypoint_devices()
            continuous_devices += store_app.androne_manifest.continuous_devices()
        for device, access in (extra_devices or {}).items():
            if device not in KNOWN_DEVICES:
                raise PortalError(f"unknown device {device!r}")
            if access == "continuous":
                continuous_devices.append(device)
            elif access == "waypoint":
                waypoint_devices.append(device)
            else:
                raise PortalError(f"bad access type {access!r}")
        energy_j = self.billing.max_charge_to_energy_j(max_charge)
        try:
            definition = VirtualDroneDefinition(
                name=f"{user}-order{next(self._order_ids)}",
                waypoints=specs,
                max_duration_s=max_duration_s,
                energy_allotted_j=energy_j,
                continuous_devices=sorted(set(continuous_devices)),
                waypoint_devices=sorted(set(waypoint_devices)),
                apps=list(apps or []),
                app_args=dict(app_args or {}),
            )
        except DefinitionError as bad:
            raise PortalError(str(bad)) from bad
        order = Order(
            order_id=int(definition.name.rsplit("order", 1)[1]),
            user=user,
            drone_type=drone_type,
            definition=definition,
            max_charge=max_charge,
            estimated_flight_time_s=self.billing.estimate_flight_time_s(energy_j),
            schedule_mode=schedule_mode,
        )
        self.orders[order.order_id] = order
        obs.counter("portal.orders", user=user).inc()
        return order

    def user_confirms_window(self, order_id: int) -> None:
        """Flexible orders: the user accepts the proposed window."""
        order = self._get_order(order_id)
        order.window_confirmed = True

    def cancel_order(self, order_id: int) -> Order:
        """Withdraw an order that has not flown yet.

        Unknown ids raise :class:`UnknownOrderError`; cancelling twice
        (or cancelling an order already in flight or done) raises
        :class:`PortalError` naming the offending state.
        """
        order = self._get_order(order_id)
        if order.state is OrderState.CANCELLED:
            raise PortalError(f"order {order_id} is already cancelled")
        if order.state not in (OrderState.CONFIGURING, OrderState.SUBMITTED,
                               OrderState.SCHEDULED):
            raise PortalError(
                f"order {order_id} cannot be cancelled in state "
                f"{order.state.value!r}")
        order.state = OrderState.CANCELLED
        order.notifications.append(Notification("email", "order cancelled"))
        obs.counter("portal.cancellations", user=order.user).inc()
        if self.admission is not None:
            self.admission.release()
        return order

    # -- lifecycle notifications (driven by the planner / mission runner) ----------------
    def confirm_window(self, order_id: int, start_s: float, end_s: float) -> None:
        order = self._get_order(order_id)
        order.state = OrderState.SCHEDULED
        window = f"estimated operating window {start_s:.0f}s-{end_s:.0f}s after launch"
        if order.schedule_mode == "immediate":
            # Immediate usage: the estimate goes out right away so the
            # user can take over when the drone arrives (Section 2).
            order.window_confirmed = True
            order.notifications.append(Notification("sms", window))
        else:
            order.notifications.append(Notification(
                "email", window + " — please confirm"))

    def flight_started(self, order_id: int, ip: str, port: int,
                       how: str = "ssh via per-container VPN") -> None:
        """Take-off: send the access information (Section 2)."""
        order = self._get_order(order_id)
        order.state = OrderState.IN_FLIGHT
        order.access_info = {"ip": ip, "port": port, "connect": how}
        order.notifications.append(Notification(
            "sms", f"your virtual drone is airborne: {ip}:{port}"))

    def flight_interrupted(self, order_id: int) -> None:
        """The flight ended before the task did; the virtual drone was
        checked into the VDR to resume on a later flight.

        Unlike :meth:`flight_completed`, the admission slot is **not**
        released: the order is still occupying service capacity (its
        state lives in the VDR awaiting another flight), and releasing
        here would double-release when the resumed flight completes.
        """
        order = self._get_order(order_id)
        order.state = OrderState.INTERRUPTED
        order.notifications.append(Notification(
            "email", "flight over before task completion; your virtual "
                     "drone will resume on a later flight"))

    def flight_completed(self, order_id: int, result_links: List[str],
                         interrupted: bool = False) -> None:
        order = self._get_order(order_id)
        order.state = OrderState.INTERRUPTED if interrupted else OrderState.COMPLETED
        if self.admission is not None:
            self.admission.release()
        order.result_links = list(result_links)
        body = "flight complete"
        if interrupted:
            body += " (task interrupted; will resume on a later flight)"
        if result_links:
            body += "; your files: " + ", ".join(result_links)
        order.notifications.append(Notification("email", body))
