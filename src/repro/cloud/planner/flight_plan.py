"""Turning virtual drone definitions into flight plans.

The planner converts each tenant's waypoints into VRP stops whose service
energy is the tenant's allotment (split across its waypoints), solves the
routing problem, and emits an ordered :class:`FlightPlan` with estimated
arrival times and energy — the operating-window estimates the portal
shows users (Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cloud.planner.energy import DroneEnergyModel
from repro.cloud.planner.vrp import Route, Stop, solve_vrp
from repro.flight.geo import GeoPoint
from repro.vdc.definition import VirtualDroneDefinition


class UnknownFlightTenantError(KeyError):
    """Window lookup for a tenant with no stop on this flight.
    Subclasses ``KeyError`` so callers that caught the bare lookup error
    this used to surface as keep working."""

    def __init__(self, tenant: str):
        super().__init__(f"tenant {tenant!r} not on this flight")
        self.tenant = tenant

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


@dataclass
class PlannedStop:
    """One serviced waypoint in visit order."""

    tenant: str
    waypoint_index: int
    location: GeoPoint
    est_arrival_s: float
    est_departure_s: float
    est_energy_j: float


@dataclass
class FlightPlan:
    """One physical flight's plan."""

    flight_id: int
    stops: List[PlannedStop]
    total_duration_s: float
    total_energy_j: float
    depot: GeoPoint

    def tenants(self) -> List[str]:
        seen = []
        for stop in self.stops:
            if stop.tenant not in seen:
                seen.append(stop.tenant)
        return seen

    def operating_window(self, tenant: str) -> Tuple[float, float]:
        """(first arrival, last departure) estimate for a tenant — what
        the portal communicates a day in advance (Section 2)."""
        times = [(s.est_arrival_s, s.est_departure_s)
                 for s in self.stops if s.tenant == tenant]
        if not times:
            raise UnknownFlightTenantError(tenant)
        return min(t[0] for t in times), max(t[1] for t in times)


class PlannerBusyError(RuntimeError):
    """The planner is at capacity; retry after ``retry_after_s``."""

    def __init__(self, message: str, retry_after_s: float):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class FlightPlanner:
    """The cloud flight planner component."""

    def __init__(self, home: GeoPoint, model: Optional[DroneEnergyModel] = None,
                 fleet_size: int = 1, cruise_ms: float = 8.0, rng=None,
                 admission=None):
        self.home = home
        self.model = model or DroneEnergyModel()
        self.fleet_size = fleet_size
        self.cruise_ms = cruise_ms
        self.rng = rng
        #: optional :class:`~repro.cloud.admission.AdmissionController`;
        #: each plan() request must clear it (bounded planning queue).
        self.admission = admission

    def _stops_for(self, definitions: Sequence[VirtualDroneDefinition]) -> List[Stop]:
        stops = []
        for definition in definitions:
            per_wp_energy = definition.energy_allotted_j / len(definition.waypoints)
            per_wp_time = definition.max_duration_s / len(definition.waypoints)
            for index, spec in enumerate(definition.waypoints):
                stops.append(Stop(
                    stop_id=f"{definition.name}#{index}",
                    location=spec.geopoint(),
                    service_energy_j=per_wp_energy,
                    service_time_s=per_wp_time,
                ))
        return stops

    def plan(self, definitions: Sequence[VirtualDroneDefinition],
             battery_j: Optional[float] = None,
             constraints=None) -> List[FlightPlan]:
        """Allocate all tenants' waypoints to one or more flights.

        ``constraints`` (an :class:`~repro.cloud.planner.ordering.
        OrderingConstraints`) enables the ordering/grouping extension —
        the paper's stated future work; by default waypoints are treated
        independently, exactly as in the paper.

        With an admission controller attached, a full planning queue
        raises :class:`PlannerBusyError` with a retry hint instead of
        queueing without bound.
        """
        if self.admission is not None:
            from repro.cloud.admission import BusyError

            try:
                self.admission.admit("planner")
            except BusyError as busy:
                raise PlannerBusyError(
                    str(busy), retry_after_s=busy.retry_after_s) from busy
            try:
                return self._plan(definitions, battery_j, constraints)
            finally:
                # Planning is synchronous: the queue slot frees when the
                # solve returns.
                self.admission.release()
        return self._plan(definitions, battery_j, constraints)

    def _plan(self, definitions: Sequence[VirtualDroneDefinition],
              battery_j: Optional[float] = None,
              constraints=None) -> List[FlightPlan]:
        stops = self._stops_for(definitions)
        budget = battery_j if battery_j is not None else self.model.battery_capacity_j
        if constraints is not None and not constraints.empty:
            from repro.cloud.planner.ordering import solve_vrp_constrained

            routes = solve_vrp_constrained(
                self.home, stops, self.model, budget, constraints,
                fleet_size=self.fleet_size, cruise_ms=self.cruise_ms,
                rng=self.rng)
        else:
            routes = solve_vrp(
                self.home, stops, self.model, budget,
                fleet_size=self.fleet_size, cruise_ms=self.cruise_ms,
                rng=self.rng)
        return [self._plan_from_route(i, route) for i, route in enumerate(routes)]

    def _plan_from_route(self, flight_id: int, route: Route) -> FlightPlan:
        stops: List[PlannedStop] = []
        clock = 0.0
        energy = 0.0
        here = self.home
        for stop in route.stops:
            tenant, _, index = stop.stop_id.rpartition("#")
            leg = here.distance_to(stop.location)
            clock += leg / self.cruise_ms
            energy += self.model.leg_energy_j(leg, self.cruise_ms)
            arrival = clock
            clock += stop.service_time_s
            energy += stop.service_energy_j
            stops.append(PlannedStop(
                tenant=tenant,
                waypoint_index=int(index),
                location=stop.location,
                est_arrival_s=arrival,
                est_departure_s=clock,
                est_energy_j=stop.service_energy_j,
            ))
            here = stop.location
        leg = here.distance_to(self.home)
        clock += leg / self.cruise_ms
        energy += self.model.leg_energy_j(leg, self.cruise_ms)
        return FlightPlan(flight_id, stops, clock, energy, self.home)
