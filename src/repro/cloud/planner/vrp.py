"""The drone-delivery vehicle routing problem, solved Dorling-style.

Stops (virtual drone waypoints) must each be visited exactly once by some
flight.  Every flight starts and ends at the depot and is constrained by
battery energy — cruise energy between stops plus the energy *allotted to
the tenant at the stop* (AnDrone's adaptation).  The objective, following
Dorling et al., is minimum total completion time subject to a fleet-size
constraint; we solve with simulated annealing over a giant-tour
permutation with a greedy battery-feasible split, which is the paper's
algorithmic family.

As in the paper, stops are treated independently: there is no support for
user-prescribed visit order, and one tenant's stops may be interleaved
with another's (providing ordering/grouping is explicitly future work).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.cloud.planner.energy import DroneEnergyModel
from repro.flight.geo import GeoPoint


@dataclass
class Stop:
    """One waypoint to service."""

    stop_id: str
    location: GeoPoint
    service_energy_j: float = 0.0   # tenant's allotment at this stop
    service_time_s: float = 0.0


@dataclass
class Route:
    """One physical flight: depot -> stops -> depot."""

    stops: List[Stop]
    distance_m: float = 0.0
    duration_s: float = 0.0
    energy_j: float = 0.0

    def stop_ids(self) -> List[str]:
        return [s.stop_id for s in self.stops]


class InfeasibleStopError(ValueError):
    """A single stop exceeds the battery budget even on its own flight."""


def _route_metrics(depot: GeoPoint, stops: Sequence[Stop],
                   model: DroneEnergyModel, cruise_ms: float) -> Tuple[float, float, float]:
    """(distance, duration, energy) for depot -> stops -> depot."""
    distance = 0.0
    duration = 0.0
    energy = 0.0
    here = depot
    for stop in stops:
        leg = here.distance_to(stop.location)
        distance += leg
        duration += leg / cruise_ms + stop.service_time_s
        energy += model.leg_energy_j(leg, cruise_ms) + stop.service_energy_j
        here = stop.location
    leg = here.distance_to(depot)
    distance += leg
    duration += leg / cruise_ms
    energy += model.leg_energy_j(leg, cruise_ms)
    return distance, duration, energy


def split_into_routes(depot: GeoPoint, order: Sequence[Stop],
                      model: DroneEnergyModel, battery_j: float,
                      cruise_ms: float) -> List[Route]:
    """Greedy split of a giant tour into battery-feasible flights."""
    routes: List[Route] = []
    current: List[Stop] = []
    for stop in order:
        candidate = current + [stop]
        _, _, energy = _route_metrics(depot, candidate, model, cruise_ms)
        if energy <= battery_j:
            current = candidate
            continue
        if not current:
            raise InfeasibleStopError(
                f"stop {stop.stop_id!r} needs {energy:.0f} J alone, battery "
                f"is {battery_j:.0f} J"
            )
        routes.append(_finish_route(depot, current, model, cruise_ms))
        current = [stop]
        _, _, solo = _route_metrics(depot, current, model, cruise_ms)
        if solo > battery_j:
            raise InfeasibleStopError(
                f"stop {stop.stop_id!r} needs {solo:.0f} J alone, battery "
                f"is {battery_j:.0f} J"
            )
    if current:
        routes.append(_finish_route(depot, current, model, cruise_ms))
    return routes


def _finish_route(depot, stops, model, cruise_ms) -> Route:
    distance, duration, energy = _route_metrics(depot, stops, model, cruise_ms)
    return Route(list(stops), distance, duration, energy)


def _cost(routes: List[Route], fleet_size: int) -> float:
    """Total completion time, with a heavy penalty for exceeding the
    fleet-size constraint (extra flights must be flown sequentially)."""
    total = sum(r.duration_s for r in routes)
    overflow = max(0, len(routes) - fleet_size)
    return total + overflow * 3_600.0


def nearest_neighbor_routes(depot: GeoPoint, stops: Sequence[Stop],
                            model: DroneEnergyModel, battery_j: float,
                            cruise_ms: float = 8.0) -> List[Route]:
    """The naive baseline (used by the planner ablation): greedy nearest
    neighbour giant tour, then the same battery split."""
    remaining = list(stops)
    order: List[Stop] = []
    here = depot
    while remaining:
        nearest = min(remaining, key=lambda s: here.distance_to(s.location))
        remaining.remove(nearest)
        order.append(nearest)
        here = nearest.location
    return split_into_routes(depot, order, model, battery_j, cruise_ms)


def solve_vrp(
    depot: GeoPoint,
    stops: Sequence[Stop],
    model: DroneEnergyModel,
    battery_j: float,
    fleet_size: int = 1,
    cruise_ms: float = 8.0,
    rng=None,
    iterations: int = 4_000,
) -> List[Route]:
    """Simulated annealing over the giant-tour permutation."""
    if not stops:
        return []
    import random as _random

    rng = rng or _random.Random(0)
    order = list(stops)
    # Start from the nearest-neighbour tour — SA then improves it.
    order = [s for route in nearest_neighbor_routes(
        depot, order, model, battery_j, cruise_ms) for s in route.stops]

    def evaluate(candidate: List[Stop]) -> Tuple[float, List[Route]]:
        routes = split_into_routes(depot, candidate, model, battery_j, cruise_ms)
        return _cost(routes, fleet_size), routes

    cost, routes = evaluate(order)
    best_order, best_cost, best_routes = list(order), cost, routes
    n = len(order)
    if n < 2:
        return routes
    temperature = max(60.0, cost * 0.1)
    cooling = (0.01 / temperature) ** (1.0 / max(1, iterations))
    for _ in range(iterations):
        i, j = rng.randrange(n), rng.randrange(n)
        if i == j:
            continue
        candidate = list(order)
        if rng.random() < 0.5:
            candidate[i], candidate[j] = candidate[j], candidate[i]
        else:
            stop = candidate.pop(i)
            candidate.insert(j, stop)
        try:
            cand_cost, cand_routes = evaluate(candidate)
        except InfeasibleStopError:
            continue
        delta = cand_cost - cost
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
            order, cost, routes = candidate, cand_cost, cand_routes
            if cost < best_cost:
                best_order, best_cost, best_routes = list(order), cost, routes
        temperature *= cooling
    return best_routes
