"""The Dorling et al. multirotor energy consumption model.

Dorling, Heinrichs, Messier & Magierowski, "Vehicle Routing Problems for
Drone Delivery" (IEEE T-SMC 2017) derive hover power from helicopter
momentum theory:

    P = (W^3 / (2 * rho * zeta * n))^(1/2)

with W the all-up weight (N), rho air density, zeta the rotor disk area,
and n the rotor count — i.e. power grows with mass^(3/2).  We add an
electrical/propulsive efficiency, a constant avionics draw, and a
parasite-drag term for forward flight.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

GRAVITY = 9.80665


class EnergyModelError(ValueError):
    """Physically meaningless input to the energy model (negative
    distance, non-positive speed).  Subclasses ``ValueError`` so callers
    that caught the bare error this used to surface as keep working."""


@dataclass
class DroneEnergyModel:
    """Energy model for one drone type (defaults: the F450 prototype)."""

    frame_mass_kg: float = 1.1          # airframe + electronics
    battery_mass_kg: float = 0.4
    rotor_count: int = 4
    rotor_radius_m: float = 0.120       # 9.5" props
    air_density: float = 1.225
    efficiency: float = 0.55            # motor+ESC+prop figure of merit
    avionics_w: float = 5.0             # Pi + Navio2 + radios
    parasite_drag_coeff: float = 0.04   # W per (m/s)^3
    battery_capacity_j: float = 55.5 * 3600 * 0.85

    @property
    def base_mass_kg(self) -> float:
        return self.frame_mass_kg + self.battery_mass_kg

    def disk_area_m2(self) -> float:
        return math.pi * self.rotor_radius_m ** 2

    def hover_power_w(self, payload_kg: float = 0.0) -> float:
        """Dorling's induced-power hover model."""
        weight_n = (self.base_mass_kg + payload_kg) * GRAVITY
        induced = math.sqrt(
            weight_n ** 3 / (2.0 * self.air_density * self.disk_area_m2()
                             * self.rotor_count)
        )
        return induced / self.efficiency + self.avionics_w

    def cruise_power_w(self, speed_ms: float, payload_kg: float = 0.0) -> float:
        """Forward flight: induced power falls slightly with speed, but
        parasite drag grows with its cube; the classic bathtub curve."""
        if speed_ms < 0:
            raise EnergyModelError("speed must be non-negative")
        hover = self.hover_power_w(payload_kg)
        induced_relief = 1.0 / math.sqrt(1.0 + (speed_ms / 8.0) ** 2)
        induced_part = (hover - self.avionics_w) * max(0.7, induced_relief)
        parasite = self.parasite_drag_coeff * speed_ms ** 3
        return induced_part + parasite + self.avionics_w

    def best_range_speed_ms(self) -> float:
        """Speed minimizing energy per meter (scan the bathtub curve)."""
        best_speed, best_cost = 1.0, float("inf")
        for dm in range(10, 200):
            speed = dm / 10.0
            cost = self.cruise_power_w(speed) / speed
            if cost < best_cost:
                best_speed, best_cost = speed, cost
        return best_speed

    def leg_energy_j(self, distance_m: float, speed_ms: float,
                     payload_kg: float = 0.0) -> float:
        """Energy to fly a straight leg at constant speed."""
        if distance_m < 0:
            raise EnergyModelError("distance must be non-negative")
        if speed_ms <= 0:
            raise EnergyModelError("speed must be positive")
        return self.cruise_power_w(speed_ms, payload_kg) * (distance_m / speed_ms)

    def hover_energy_j(self, duration_s: float, payload_kg: float = 0.0) -> float:
        return self.hover_power_w(payload_kg) * duration_s

    def endurance_s(self, payload_kg: float = 0.0,
                    battery_j: float = None) -> float:
        """Hover endurance on a full (usable) battery — the flight-time
        estimate the portal shows when ordering (Section 2)."""
        budget = battery_j if battery_j is not None else self.battery_capacity_j
        return budget / self.hover_power_w(payload_kg)
