"""Waypoint ordering and grouping constraints — the paper's future work.

"A limitation of the algorithm is that it treats all waypoints
independently, so users may not prescribe that waypoints be traversed in
a specified order and the algorithm may decide to visit waypoints of one
virtual drone in the middle of a set of waypoints of another virtual
drone.  Providing a planner algorithm that can support waypoint ordering
and grouping is an area of future work" (Section 4).

This module implements that future work as constraints layered on the
same SA solver:

* **ordering** — a tenant's waypoints must be visited in definition
  order (precedence within the giant tour);
* **grouping** — a tenant's waypoints must be visited back-to-back, with
  no other tenant's stop interleaved.

Both are enforced by *repairing* candidate tours after each SA move:
ordering by stable-sorting each tenant's stops into its occupied slots,
grouping by collapsing each tenant's stops around their earliest
occurrence.  Repair keeps the move semantics (positions still explore the
space) while guaranteeing feasibility, so the solver degrades gracefully:
unconstrained tenants still interleave freely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from repro.cloud.planner.energy import DroneEnergyModel
from repro.cloud.planner.vrp import (
    InfeasibleStopError,
    Route,
    Stop,
    _cost,
    nearest_neighbor_routes,
    split_into_routes,
)
from repro.flight.geo import GeoPoint


@dataclass(frozen=True)
class OrderingConstraints:
    """Which tenants require ordering and/or grouping."""

    ordered_tenants: frozenset = frozenset()
    grouped_tenants: frozenset = frozenset()

    @classmethod
    def of(cls, ordered: Sequence[str] = (), grouped: Sequence[str] = ()):
        return cls(frozenset(ordered), frozenset(grouped))

    @property
    def empty(self) -> bool:
        return not self.ordered_tenants and not self.grouped_tenants


def _tenant_of(stop: Stop) -> str:
    tenant, _, _ = stop.stop_id.rpartition("#")
    return tenant


def _index_of(stop: Stop) -> int:
    _, _, index = stop.stop_id.rpartition("#")
    return int(index)


def repair_tour(order: List[Stop], constraints: OrderingConstraints) -> List[Stop]:
    """Return the nearest feasible tour to ``order``.

    Grouping first (collapse each grouped tenant around its first stop's
    position), then ordering (stable reassignment of each ordered
    tenant's stops into that tenant's slots, sorted by definition index).
    """
    tour = list(order)
    # --- grouping ---
    for tenant in constraints.grouped_tenants:
        positions = [i for i, stop in enumerate(tour) if _tenant_of(stop) == tenant]
        if len(positions) <= 1:
            continue
        block = [tour[i] for i in positions]
        anchor = positions[0]
        remaining = [stop for stop in tour if _tenant_of(stop) != tenant]
        anchor = min(anchor, len(remaining))
        tour = remaining[:anchor] + block + remaining[anchor:]
    # --- ordering ---
    for tenant in constraints.ordered_tenants:
        positions = [i for i, stop in enumerate(tour) if _tenant_of(stop) == tenant]
        stops = sorted((tour[i] for i in positions), key=_index_of)
        for position, stop in zip(positions, stops):
            tour[position] = stop
    return tour


def validate_tour(order: Sequence[Stop], constraints: OrderingConstraints) -> bool:
    """Check a tour against the constraints (used by tests)."""
    last_index: Dict[str, int] = {}
    last_seen_at: Dict[str, int] = {}
    open_groups: Set[str] = set()
    closed_groups: Set[str] = set()
    for position, stop in enumerate(order):
        tenant = _tenant_of(stop)
        if tenant in constraints.ordered_tenants:
            index = _index_of(stop)
            if tenant in last_index and index < last_index[tenant]:
                return False
            last_index[tenant] = index
        if tenant in constraints.grouped_tenants:
            if tenant in closed_groups:
                return False
            if tenant in last_seen_at and last_seen_at[tenant] != position - 1:
                return False
            last_seen_at[tenant] = position
            open_groups.add(tenant)
        for other in list(open_groups):
            if other != tenant:
                open_groups.discard(other)
                closed_groups.add(other)
    return True


def solve_vrp_constrained(
    depot: GeoPoint,
    stops: Sequence[Stop],
    model: DroneEnergyModel,
    battery_j: float,
    constraints: OrderingConstraints,
    fleet_size: int = 1,
    cruise_ms: float = 8.0,
    rng=None,
    iterations: int = 4_000,
) -> List[Route]:
    """The SA solver with ordering/grouping repair after each move."""
    if not stops:
        return []
    import random as _random

    rng = rng or _random.Random(0)
    order = [s for route in nearest_neighbor_routes(
        depot, list(stops), model, battery_j, cruise_ms) for s in route.stops]
    order = repair_tour(order, constraints)

    def evaluate(candidate: List[Stop]):
        routes = split_into_routes(depot, candidate, model, battery_j, cruise_ms)
        return _cost(routes, fleet_size), routes

    cost, routes = evaluate(order)
    best_cost, best_routes = cost, routes
    n = len(order)
    if n < 2:
        return routes
    temperature = max(60.0, cost * 0.1)
    cooling = (0.01 / temperature) ** (1.0 / max(1, iterations))
    for _ in range(iterations):
        i, j = rng.randrange(n), rng.randrange(n)
        if i == j:
            continue
        candidate = list(order)
        if rng.random() < 0.5:
            candidate[i], candidate[j] = candidate[j], candidate[i]
        else:
            stop = candidate.pop(i)
            candidate.insert(j, stop)
        candidate = repair_tour(candidate, constraints)
        try:
            cand_cost, cand_routes = evaluate(candidate)
        except InfeasibleStopError:
            continue
        delta = cand_cost - cost
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
            order, cost, routes = candidate, cand_cost, cand_routes
            if cost < best_cost:
                best_cost, best_routes = cost, routes
        temperature *= cooling
    return best_routes
