"""The flight planner.

"AnDrone's flight planner is based on the multirotor drone energy
consumption model and the drone delivery routing algorithm developed by
Dorling, et al. for assigning deliveries to a fleet of drones ... AnDrone
assigns virtual drones to physical drones using this model and algorithm
by specifying the drone fleet size, using waypoints as delivery
locations, and adjusting the energy cost to account for the energy
allocated for virtual drones at their waypoints" (Section 4).
"""

from repro.cloud.planner.energy import DroneEnergyModel
from repro.cloud.planner.vrp import Stop, Route, solve_vrp, nearest_neighbor_routes
from repro.cloud.planner.ordering import OrderingConstraints, solve_vrp_constrained
from repro.cloud.planner.flight_plan import (
    FlightPlan,
    FlightPlanner,
    PlannedStop,
    PlannerBusyError,
)

__all__ = [
    "DroneEnergyModel",
    "Stop",
    "Route",
    "solve_vrp",
    "nearest_neighbor_routes",
    "OrderingConstraints",
    "solve_vrp_constrained",
    "FlightPlan",
    "FlightPlanner",
    "PlannedStop",
    "PlannerBusyError",
]
