"""Admission control for the cloud tier: bounded queues + rate limits.

The portal and the flight planner are the cloud service's front doors.
Under fleet-scale load — many shards of a partitioned fleet hammering
the same service concurrently — an unguarded front door turns into an
unbounded queue, so both components take an optional
:class:`AdmissionController` that enforces

* a **bounded pending-request queue** (``max_pending``): once the
  service has that much un-finished work, new requests are refused;
* a **per-key token bucket** (``rate_per_s`` with ``burst`` capacity,
  enforced only when a positive rate is configured): each tenant/user
  gets ``burst`` immediate requests, then is throttled to the steady
  rate.

Refusals are *typed* (:class:`BusyError`, surfaced by the portal as
``PortalBusyError``) and carry ``retry_after_s`` — the earliest time at
which retrying can succeed — so callers back off deterministically
instead of spinning.

Time comes from an injected ``clock`` callable returning **seconds**
(normally ``lambda: sim.now / 1e6``); with no clock the controller is
purely burst/queue based, which is what the deterministic harness uses
at construction time (the sim clock has not started ticking yet).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional


class AdmissionConfigError(ValueError):
    """Invalid controller configuration (queue bound or burst < 1).
    Subclasses ``ValueError`` so callers that caught the bare error this
    used to surface as keep working."""


class BusyError(RuntimeError):
    """The service is at capacity; retry after ``retry_after_s``."""

    def __init__(self, message: str, retry_after_s: float):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class AdmissionController:
    """Token-bucket rate limiting plus a bounded pending-work queue."""

    def __init__(self, max_pending: Optional[int] = None,
                 rate_per_s: float = 0.0, burst: int = 8,
                 clock: Optional[Callable[[], float]] = None):
        if max_pending is not None and max_pending < 1:
            raise AdmissionConfigError(
                f"max_pending must be >= 1, got {max_pending}")
        if burst < 1:
            raise AdmissionConfigError(f"burst must be >= 1, got {burst}")
        self.max_pending = max_pending
        self.rate_per_s = rate_per_s
        self.burst = burst
        self.clock = clock
        #: abuse hardening: an optional per-tenant
        #: :class:`~repro.security.guards.RateGuard` consulted *before*
        #: the pending-queue check, so a flood of bogus orders is refused
        #: with a typed :class:`~repro.security.errors.RateLimitError`
        #: before it can occupy (and exhaust) pending slots honest users
        #: need.  None in production — one is-None check when disabled.
        self.abuse_guard = None
        self.pending = 0
        self.admitted = 0
        self.rejected = 0
        self._tokens: Dict[str, float] = {}
        self._last_refill: Dict[str, float] = {}

    # -- the gate -------------------------------------------------------------
    def _now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    def admit(self, key: str = "") -> None:
        """Admit one request for ``key`` or raise :class:`BusyError`.

        Admitted requests occupy a pending slot until :meth:`release`.
        """
        if self.abuse_guard is not None:
            self.abuse_guard.admit(key)
        if self.max_pending is not None and self.pending >= self.max_pending:
            self.rejected += 1
            # The queue drains as in-flight work completes; with no
            # completion-time model, one steady-rate interval (or 1 s)
            # is the deterministic retry hint.
            hint = 1.0 / self.rate_per_s if self.rate_per_s > 0 else 1.0
            raise BusyError(
                f"request queue full ({self.pending}/{self.max_pending} "
                f"pending)", retry_after_s=hint)
        if self.rate_per_s > 0:
            now = self._now()
            tokens = self._tokens.get(key, float(self.burst))
            elapsed = now - self._last_refill.get(key, now)
            tokens = min(float(self.burst),
                         tokens + elapsed * self.rate_per_s)
            self._last_refill[key] = now
            if tokens < 1.0:
                self.rejected += 1
                hint = (1.0 - tokens) / self.rate_per_s
                raise BusyError(
                    f"rate limit for {key!r}: {self.rate_per_s:.1f}/s "
                    f"(burst {self.burst}) exceeded",
                    retry_after_s=hint)
            self._tokens[key] = tokens - 1.0
        self.pending += 1
        self.admitted += 1

    def release(self) -> None:
        """Mark one admitted request as finished (frees a queue slot)."""
        if self.pending > 0:
            self.pending -= 1

    def snapshot(self) -> Dict[str, float]:
        return {"pending": self.pending, "admitted": self.admitted,
                "rejected": self.rejected}
