"""Energy-based billing (paper Section 2).

"AnDrone bills traditional cloud services such as storage or network
bandwidth based on regular usage, but bills drone usage based on energy
consumption, like a traditional energy utility service."  Users specify a
maximum billing charge, which caps the energy their virtual drone may
consume at its waypoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cloud.planner.energy import DroneEnergyModel


class BillingInputError(ValueError):
    """Invalid billing input: non-positive charge caps or negative
    usage quantities.  Subclasses ``ValueError`` so callers that caught
    the bare error this used to surface as keep working."""


@dataclass
class BillingRates:
    """Service-provider pricing."""

    # Drone energy is precious: priced far above utility grid rates.
    currency_per_joule: float = 0.0005          # $1.80 per Wh of flight
    currency_per_storage_gb_month: float = 0.02
    currency_per_bandwidth_gb: float = 0.08


@dataclass
class LineItem:
    description: str
    amount: float


@dataclass
class Invoice:
    tenant: str
    items: List[LineItem]

    @property
    def total(self) -> float:
        return round(sum(item.amount for item in self.items), 6)


class BillingService:
    """Charges per tenant: energy at waypoints + storage + bandwidth."""

    def __init__(self, rates: Optional[BillingRates] = None,
                 model: Optional[DroneEnergyModel] = None):
        self.rates = rates or BillingRates()
        self.model = model or DroneEnergyModel()

    # -- ordering-time estimates -----------------------------------------------------
    def max_charge_to_energy_j(self, max_charge: float) -> float:
        """The user's maximum billing charge caps the energy allotment."""
        if max_charge <= 0:
            raise BillingInputError("max charge must be positive")
        return max_charge / self.rates.currency_per_joule

    def estimate_flight_time_s(self, energy_j: float, payload_kg: float = 0.0) -> float:
        """Flight-time estimate from energy, shown when ordering."""
        return energy_j / self.model.hover_power_w(payload_kg)

    def estimate_charge(self, energy_j: float) -> float:
        return energy_j * self.rates.currency_per_joule

    # -- invoicing ------------------------------------------------------------------------
    def invoice(self, tenant: str, energy_used_j: float,
                storage_bytes: int = 0, bandwidth_bytes: int = 0,
                storage_months: float = 1.0) -> Invoice:
        if energy_used_j < 0 or storage_bytes < 0 or bandwidth_bytes < 0:
            raise BillingInputError("usage quantities must be non-negative")
        gb = 1024 ** 3
        items = [
            LineItem(f"drone energy ({energy_used_j:.0f} J)",
                     energy_used_j * self.rates.currency_per_joule),
        ]
        if storage_bytes:
            items.append(LineItem(
                f"cloud storage ({storage_bytes / gb:.3f} GB-month)",
                storage_bytes / gb * storage_months
                * self.rates.currency_per_storage_gb_month,
            ))
        if bandwidth_bytes:
            items.append(LineItem(
                f"bandwidth ({bandwidth_bytes / gb:.3f} GB)",
                bandwidth_bytes / gb * self.rates.currency_per_bandwidth_gb,
            ))
        return Invoice(tenant, items)
