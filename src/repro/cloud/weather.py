"""Weather: the 'unpredictable events' that interrupt flights.

"It is possible that the task a user wishes to perform is unable to be
completed on a drone for various reasons, including ... unpredictable
events such as inclement weather.  In these cases, virtual drones are
instructed to save their current state so that they can be resumed on a
later flight" (Section 2).

The service models wind as a bounded random walk on the simulation clock,
optionally couples it into the flight physics (so deteriorating weather
really does push the vehicle around), and provides the abort predicate
the mission runner polls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass
class WeatherSample:
    """Conditions at one instant."""

    time_us: int
    wind_speed_ms: float
    wind_direction_rad: float   # direction the wind blows TOWARD
    gust_ms: float

    def wind_enu(self) -> Tuple[float, float, float]:
        return (
            self.wind_speed_ms * math.sin(self.wind_direction_rad),
            self.wind_speed_ms * math.cos(self.wind_direction_rad),
            0.0,
        )


class WeatherService:
    """Evolving wind conditions shared by planner and mission runner."""

    def __init__(self, sim, rng, base_wind_ms: float = 2.0,
                 volatility_ms: float = 0.5, max_wind_ms: float = 18.0,
                 update_period_us: int = 5_000_000):
        self.sim = sim
        self._rng = rng
        self.base_wind_ms = base_wind_ms
        self.volatility_ms = volatility_ms
        self.max_wind_ms = max_wind_ms
        self.update_period_us = update_period_us
        self._speed = base_wind_ms
        self._direction = rng.uniform(0.0, 2.0 * math.pi)
        self._last_update_us = sim.now
        self._physics = None
        self._running = False

    # -- state evolution ------------------------------------------------------------
    def _evolve(self) -> None:
        now = self.sim.now
        steps = max(1, (now - self._last_update_us) // self.update_period_us)
        for _ in range(min(steps, 200)):
            # Mean-reverting random walk (wind regresses to the forecast
            # base but can build into a front).
            pull = 0.08 * (self.base_wind_ms - self._speed)
            self._speed += pull + self._rng.gauss(0.0, self.volatility_ms)
            self._speed = min(self.max_wind_ms, max(0.0, self._speed))
            self._direction += self._rng.gauss(0.0, 0.15)
        self._last_update_us = now

    def current(self) -> WeatherSample:
        self._evolve()
        gust = self._speed + abs(self._rng.gauss(0.0, self._speed * 0.3))
        return WeatherSample(self.sim.now, self._speed,
                             self._direction % (2 * math.pi), gust)

    def set_storm(self, wind_ms: float) -> None:
        """Force conditions (tests and scripted scenarios)."""
        self._speed = min(self.max_wind_ms, wind_ms)
        self._last_update_us = self.sim.now

    # -- flight integration -----------------------------------------------------------
    def couple_to_physics(self, physics) -> None:
        """Continuously apply the wind to a vehicle's dynamics."""
        self._physics = physics
        if not self._running:
            self._running = True
            self._apply()

    def _apply(self) -> None:
        if not self._running:
            return
        if self._physics is not None:
            self._physics.wind_enu = self.current().wind_enu()
        self.sim.after(self.update_period_us, self._apply)

    def stop(self) -> None:
        self._running = False

    # -- decision helpers --------------------------------------------------------------
    def safe_to_launch(self, limit_ms: float = 10.0) -> bool:
        return self.current().wind_speed_ms <= limit_ms

    def abort_reason(self, limit_ms: float = 10.0) -> Optional[str]:
        """The mission runner's poll: a reason string to abort, or None."""
        sample = self.current()
        if sample.wind_speed_ms > limit_ms:
            return (f"inclement weather: wind {sample.wind_speed_ms:.1f} m/s "
                    f"exceeds {limit_ms:.1f} m/s limit")
        return None
