"""The AnDrone cloud service (paper Section 4, Figure 3).

Five components: the **web portal** users order virtual drones through,
the **app store**, general **cloud storage** for flight data, the
**virtual drone repository (VDR)** holding offline virtual drones, and
the **flight planner** built on the Dorling et al. multirotor energy
model and drone-delivery vehicle routing algorithm.  Billing is
energy-based (Section 2).
"""

from repro.cloud.storage import CloudStorage
from repro.cloud.vdr import VirtualDroneRepository, VdrEntry
from repro.cloud.app_store import AppStore, StoreApp
from repro.cloud.billing import BillingService, BillingRates
from repro.cloud.portal import WebPortal, Order, OrderState, PortalError
from repro.cloud.weather import WeatherService, WeatherSample
from repro.cloud.planner import DroneEnergyModel, FlightPlanner, FlightPlan, solve_vrp

__all__ = [
    "CloudStorage",
    "VirtualDroneRepository",
    "VdrEntry",
    "AppStore",
    "StoreApp",
    "BillingService",
    "BillingRates",
    "WebPortal",
    "Order",
    "OrderState",
    "PortalError",
    "WeatherService",
    "WeatherSample",
    "DroneEnergyModel",
    "FlightPlanner",
    "FlightPlan",
    "solve_vrp",
]
