"""The Virtual Drone Repository (VDR).

"Stores preconfigured virtual drone definitions for later use or reuse"
and receives virtual drones whose tasks were interrupted so they "can be
resumed on a later flight" (Sections 2 and 4.4).  An entry is a
definition plus the container's diff layer against a named base image —
the minimal-storage representation of Section 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.containers.image import Layer
from repro.vdc.definition import VirtualDroneDefinition


class UnknownVdrEntryError(KeyError):
    """Fetch of a VDR entry id that was never stored.  Subclasses
    ``KeyError`` so callers that caught the bare lookup error this used
    to surface as keep working."""

    def __init__(self, entry_id: str):
        super().__init__(f"no VDR entry {entry_id!r}")
        self.entry_id = entry_id

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]

@dataclass
class VdrEntry:
    entry_id: str
    name: str
    definition: VirtualDroneDefinition
    base_image_tag: str
    diff: Layer
    resumable: bool
    flights: int = 1
    #: waypoint indices already serviced on previous flights, so a
    #: resumed virtual drone continues where it left off.
    completed_waypoints: frozenset = frozenset()

    @property
    def stored_bytes(self) -> int:
        return self.diff.size_bytes() + len(self.definition.to_json())


class VirtualDroneRepository:
    """The cloud-side store of offline virtual drones."""

    def __init__(self) -> None:
        self._entries: Dict[str, VdrEntry] = {}
        #: latest entry per tenant name, for resume lookups.
        self._latest: Dict[str, str] = {}
        #: entries stored per tenant, for id minting.
        self._stored_count: Dict[str, int] = {}

    def store(self, name: str, definition: VirtualDroneDefinition,
              base_image_tag: str, diff: Layer, resumable: bool,
              completed_waypoints=frozenset()) -> str:
        # Ids are per-tenant sequences (vdr-<tenant>-1, -2, ...), not one
        # global counter: a tenant's entry ids then depend only on its
        # own flight history, so a fleet partitioned into per-drone
        # shards mints exactly the ids the unsharded run would.
        sequence = self._stored_count.get(name, 0) + 1
        self._stored_count[name] = sequence
        entry_id = f"vdr-{name}-{sequence}"
        previous = self._latest.get(name)
        flights = self._entries[previous].flights + 1 if previous else 1
        self._entries[entry_id] = VdrEntry(
            entry_id, name, definition, base_image_tag, diff, resumable,
            flights, frozenset(completed_waypoints)
        )
        self._latest[name] = entry_id
        return entry_id

    def fetch(self, entry_id: str) -> VdrEntry:
        if entry_id not in self._entries:
            raise UnknownVdrEntryError(entry_id)
        return self._entries[entry_id]

    def latest_for(self, name: str) -> Optional[VdrEntry]:
        entry_id = self._latest.get(name)
        return self._entries[entry_id] if entry_id else None

    def resumable_entries(self) -> List[VdrEntry]:
        return [e for e in self._entries.values() if e.resumable]

    def list_entries(self) -> List[VdrEntry]:
        return list(self._entries.values())

    def delete(self, entry_id: str) -> None:
        entry = self._entries.pop(entry_id, None)
        if entry and self._latest.get(entry.name) == entry_id:
            del self._latest[entry.name]

    def total_stored_bytes(self) -> int:
        return sum(e.stored_bytes for e in self._entries.values())
