"""Consistent-hash routing of tenants onto control-plane shards.

The city control plane partitions portal/VDR/planner state across N
shard workers.  Users are mapped to shards by position on a hash ring
(SHA-256, so the mapping is identical on every host and every run —
``hash()`` randomization never enters the picture).  Each shard owns
``vnodes`` points on the ring, which evens out the partition sizes; the
consistent-hashing property is what makes elastic resharding cheap:
removing a shard moves *only* the keys that shard owned, and adding it
back restores the exact previous mapping.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

from repro.cloud.controlplane.errors import (
    ControlPlaneConfigError,
    UnknownShardError,
)

#: Ring points per shard.  64 keeps the largest/smallest partition ratio
#: under ~1.3 for small shard counts while the ring stays tiny.
DEFAULT_VNODES = 64


def _point(data: str) -> int:
    """A stable 64-bit ring coordinate for ``data``."""
    digest = hashlib.sha256(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRouter:
    """Maps string keys (users, tenants) to shard ids on a hash ring."""

    def __init__(self, shard_ids: Iterable[str], vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ControlPlaneConfigError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._points: List[Tuple[int, str]] = []
        self._shards: Dict[str, List[int]] = {}
        for shard_id in shard_ids:
            self.add_shard(shard_id)
        if not self._shards:
            raise ControlPlaneConfigError("router needs at least one shard")

    # -- membership -----------------------------------------------------------
    def shard_ids(self) -> List[str]:
        return sorted(self._shards)

    def add_shard(self, shard_id: str) -> None:
        if shard_id in self._shards:
            raise ControlPlaneConfigError(
                f"shard {shard_id!r} already on the ring")
        points = [_point(f"{shard_id}#{v}") for v in range(self.vnodes)]
        self._shards[shard_id] = points
        for point in points:
            bisect.insort(self._points, (point, shard_id))

    def remove_shard(self, shard_id: str) -> None:
        if shard_id not in self._shards:
            raise UnknownShardError(shard_id)
        if len(self._shards) == 1:
            raise ControlPlaneConfigError(
                "cannot remove the last shard from the ring")
        points = set(self._shards.pop(shard_id))
        self._points = [(p, s) for p, s in self._points
                        if not (s == shard_id and p in points)]

    # -- routing --------------------------------------------------------------
    def route(self, key: str) -> str:
        """The shard owning ``key``: the first ring point at or after
        the key's coordinate, wrapping at the top of the ring."""
        coordinate = _point(key)
        index = bisect.bisect_left(self._points, (coordinate, ""))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def table(self, keys: Iterable[str]) -> Dict[str, str]:
        """key -> shard for every key (tests and rebalance audits)."""
        return {key: self.route(key) for key in keys}

    def load(self, keys: Iterable[str]) -> Dict[str, int]:
        """Keys owned per shard — every shard reported, even if empty."""
        counts = {shard_id: 0 for shard_id in self._shards}
        for key in keys:
            counts[self.route(key)] += 1
        return counts
