"""The physical fleet as the control plane sees it.

One :class:`DroneSpec` describes a physical drone's pad location on the
city grid, its per-flight tenant capacity, its per-flight energy/time
budgets (one battery pack's worth of virtual-drone allotments), and the
MAVLink whitelist template class its service provider configured.  The
:class:`FleetDirectory` tracks the live :class:`DroneState` for each —
what is queued for the next flight, what is airborne now, and how much
of the next flight's budget is already committed.

Capacity semantics mirror the multi-flight missions the onboard stack
already implements: budgets are *per flight* (battery swaps between
flights), so feasibility is judged against the tenants queued for the
**next** flight, never against tenants currently airborne.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cloud.controlplane.errors import (
    ControlPlaneConfigError,
    DroneStateError,
    UnknownDroneError,
)
from repro.mavproxy.whitelist import TEMPLATES

#: Whitelist template classes ordered least- to most-capable.  A drone
#: configured with a class can host any tenant requiring the same class
#: or a *less* capable one (its VFC simply restricts further).
WHITELIST_CLASSES = ("guided-only", "standard", "full")


def whitelist_rank(name: str) -> int:
    """Capability rank of a whitelist class (0 = most restricted)."""
    if name not in WHITELIST_CLASSES or name not in TEMPLATES:
        raise ControlPlaneConfigError(
            f"unknown whitelist class {name!r}: choose from "
            f"{list(WHITELIST_CLASSES)}")
    return WHITELIST_CLASSES.index(name)


@dataclass(frozen=True)
class DroneSpec:
    """One physical drone, as registered with the control plane."""

    drone_id: str
    east_m: float
    north_m: float
    capacity: int
    energy_budget_j: float
    time_budget_s: float
    whitelist_class: str = "standard"

    def validate(self) -> "DroneSpec":
        if not self.drone_id:
            raise ControlPlaneConfigError("drone_id must be non-empty")
        if self.capacity < 1:
            raise ControlPlaneConfigError(
                f"{self.drone_id}: capacity must be >= 1, got {self.capacity}")
        if self.energy_budget_j <= 0 or self.time_budget_s <= 0:
            raise ControlPlaneConfigError(
                f"{self.drone_id}: energy/time budgets must be positive")
        whitelist_rank(self.whitelist_class)
        return self


@dataclass
class PlacedTenant:
    """One virtual drone committed to a physical drone's next flight."""

    tenant: str
    energy_j: float
    duration_s: float
    east_m: float
    north_m: float
    whitelist_class: str


@dataclass
class DroneState:
    """Live control-plane view of one physical drone."""

    spec: DroneSpec
    #: tenants queued for the next flight, in placement order.
    pending: Dict[str, PlacedTenant] = field(default_factory=dict)
    #: tenants on the flight currently in the air.
    flying: Dict[str, PlacedTenant] = field(default_factory=dict)
    available: bool = True
    in_flight: bool = False
    flights_flown: int = 0
    tenants_served: int = 0

    # -- next-flight headroom ---------------------------------------------------
    @property
    def committed_energy_j(self) -> float:
        return sum(p.energy_j for p in self.pending.values())

    @property
    def committed_time_s(self) -> float:
        return sum(p.duration_s for p in self.pending.values())

    @property
    def energy_headroom_j(self) -> float:
        return self.spec.energy_budget_j - self.committed_energy_j

    @property
    def time_headroom_s(self) -> float:
        return self.spec.time_budget_s - self.committed_time_s

    @property
    def slots_free(self) -> int:
        return self.spec.capacity - len(self.pending)

    def hosts(self, tenant: str) -> bool:
        return tenant in self.pending or tenant in self.flying

    # -- transitions ------------------------------------------------------------
    def enqueue(self, placed: PlacedTenant) -> None:
        if not self.available:
            raise DroneStateError(
                f"{self.spec.drone_id} is down; cannot accept "
                f"{placed.tenant!r}")
        if self.hosts(placed.tenant):
            raise DroneStateError(
                f"{placed.tenant!r} already on {self.spec.drone_id}")
        if self.slots_free < 1:
            raise DroneStateError(
                f"{self.spec.drone_id} has no free slot for "
                f"{placed.tenant!r}")
        self.pending[placed.tenant] = placed

    def withdraw(self, tenant: str) -> PlacedTenant:
        """Remove a queued (not yet airborne) tenant."""
        if tenant not in self.pending:
            raise DroneStateError(
                f"{tenant!r} is not queued on {self.spec.drone_id}")
        return self.pending.pop(tenant)

    def begin_flight(self) -> List[PlacedTenant]:
        if self.in_flight:
            raise DroneStateError(f"{self.spec.drone_id} is already flying")
        if not self.available:
            raise DroneStateError(f"{self.spec.drone_id} is down")
        if not self.pending:
            raise DroneStateError(
                f"{self.spec.drone_id} has no tenants to fly")
        self.flying = self.pending
        self.pending = {}
        self.in_flight = True
        return list(self.flying.values())

    def complete_flight(self) -> List[PlacedTenant]:
        if not self.in_flight:
            raise DroneStateError(f"{self.spec.drone_id} is not flying")
        served = list(self.flying.values())
        self.flying = {}
        self.in_flight = False
        self.flights_flown += 1
        self.tenants_served += len(served)
        return served


class FleetDirectory:
    """All registered physical drones, keyed by id."""

    def __init__(self, specs: List[DroneSpec]):
        if not specs:
            raise ControlPlaneConfigError("a fleet needs at least one drone")
        self._drones: Dict[str, DroneState] = {}
        for spec in specs:
            spec.validate()
            if spec.drone_id in self._drones:
                raise ControlPlaneConfigError(
                    f"duplicate drone id {spec.drone_id!r}")
            self._drones[spec.drone_id] = DroneState(spec=spec)

    def get(self, drone_id: str) -> DroneState:
        state = self._drones.get(drone_id)
        if state is None:
            raise UnknownDroneError(drone_id)
        return state

    def states(self, exclude: Optional[str] = None) -> List[DroneState]:
        """All drones in stable (registration) order, optionally minus
        one (a migration never returns to its source drone)."""
        return [state for drone_id, state in self._drones.items()
                if drone_id != exclude]

    def drone_ids(self) -> List[str]:
        return list(self._drones)

    def find_tenant(self, tenant: str) -> Optional[str]:
        """The drone currently hosting ``tenant``, or None."""
        for drone_id, state in self._drones.items():
            if state.hosts(tenant):
                return drone_id
        return None
