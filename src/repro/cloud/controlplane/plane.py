"""The city-scale control plane: shards, placement, flights, migration.

:class:`CityControlPlane` is the orchestrator that ties the package
together.  Orders arrive from the synthetic city stream, are routed by
consistent hash to a shard worker (portal + admission + VDR partition),
placed onto a physical drone by the pluggable placer, flown in batches
per drone, and — when a tenant's task spans more than one flight —
migrated between drones through the VDR export/import path.

Everything runs on the discrete-event sim clock and every externally
visible action is appended to a journal; the journal's SHA-256 digest is
how the harness proves two runs at the same seed are bit-identical.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

import repro.obs as obs
from repro.cloud.controlplane.errors import (
    ControlPlaneConfigError,
    DroneStateError,
    MigrationError,
    NoFeasiblePlacementError,
)
from repro.cloud.controlplane.fleet import DroneSpec, FleetDirectory
from repro.cloud.controlplane.migration import (
    MigrationCoordinator,
    MigrationTicket,
)
from repro.cloud.controlplane.placement import (
    PlacementDecision,
    PlacementPolicy,
    PlacementRequest,
    feasible,
    make_placer,
)
from repro.cloud.controlplane.ring import ConsistentHashRouter
from repro.cloud.controlplane.shard import ControlPlaneShard
from repro.cloud.portal import Order


@dataclass
class TenantRecord:
    """Control-plane view of one virtual-drone order's lifecycle."""

    tenant: str
    user: str
    order_id: int
    shard_id: str
    request: PlacementRequest
    drone_id: Optional[str] = None
    #: flights this tenant still needs; > 1 means migration(s) ahead.
    legs_remaining: int = 1
    #: queued | flying | migrating | completed | failed | rejected
    state: str = "queued"
    submitted_t_us: int = 0
    completed_t_us: Optional[int] = None
    migrations: int = 0
    ticket: Optional[MigrationTicket] = None


class CityControlPlane:
    """Shard router + fleet directory + placer + migration coordinator."""

    def __init__(self, sim, specs: List[DroneSpec], shard_count: int = 4,
                 placer: Union[str, PlacementPolicy] = "binpack",
                 max_pending: int = 32, rate_per_s: float = 0.0,
                 burst: int = 8, vnodes: int = 64,
                 dispatch_delay_s: float = 5.0,
                 flight_overhead_s: float = 30.0,
                 service_fraction: float = 0.25,
                 migration_export_s: float = 2.0,
                 migration_import_s: float = 1.0,
                 migration_retry_limit: int = 2,
                 migration_retry_backoff_s: float = 5.0):
        if shard_count < 1:
            raise ControlPlaneConfigError(
                f"shard_count must be >= 1, got {shard_count}")
        if dispatch_delay_s < 0 or flight_overhead_s < 0:
            raise ControlPlaneConfigError(
                "dispatch delay and flight overhead must be >= 0")
        if service_fraction <= 0:
            raise ControlPlaneConfigError(
                f"service_fraction must be positive, got {service_fraction}")
        self.sim = sim
        self.shards = [
            ControlPlaneShard(f"shard-{i}", i, sim, max_pending=max_pending,
                              rate_per_s=rate_per_s, burst=burst)
            for i in range(shard_count)
        ]
        self._shards_by_id = {shard.shard_id: shard for shard in self.shards}
        self.router = ConsistentHashRouter(
            [shard.shard_id for shard in self.shards], vnodes=vnodes)
        self.fleet = FleetDirectory(specs)
        self.placer = placer if isinstance(placer, PlacementPolicy) \
            else make_placer(placer)
        self.dispatch_delay_us = int(dispatch_delay_s * 1e6)
        self.flight_overhead_s = flight_overhead_s
        self.service_fraction = service_fraction
        self.migrations = MigrationCoordinator(
            sim, self.placer, self.fleet,
            export_s=migration_export_s, import_s=migration_import_s,
            retry_limit=migration_retry_limit,
            retry_backoff_s=migration_retry_backoff_s,
            journal=self.journal)
        self.records: Dict[str, TenantRecord] = {}
        self._journal: List[Dict[str, Any]] = []
        self._launch_scheduled: set = set()
        self._locality_sum_m = 0.0
        self._locality_count = 0

    # -- journal & determinism --------------------------------------------------
    def journal(self, **fields: Any) -> None:
        entry = dict(fields)
        entry["t_us"] = self.sim.now
        self._journal.append(entry)

    def journal_entries(self) -> List[Dict[str, Any]]:
        return list(self._journal)

    def digest(self) -> str:
        """SHA-256 over the journal — equal digests mean two runs made
        the same decisions at the same sim times in the same order."""
        payload = json.dumps(self._journal, sort_keys=True).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    # -- order intake -----------------------------------------------------------
    def shard_for(self, user: str) -> ControlPlaneShard:
        return self._shards_by_id[self.router.route(user)]

    def submit_order(self, user: str, waypoints: List[Dict[str, float]],
                     east_m: float, north_m: float, *,
                     whitelist_class: str = "standard", legs: int = 1,
                     max_charge: float = 25.0, max_duration_s: float = 600.0,
                     drone_type: str = "standard") -> TenantRecord:
        """Route, admit, order, and place one virtual drone.

        Raises :class:`~repro.cloud.portal.PortalBusyError` when the
        owning shard's admission gate refuses (back-pressure; retry
        after ``retry_after_s``) and
        :class:`NoFeasiblePlacementError` when no physical drone can
        host the tenant (the order is cancelled through the portal, so
        the admission slot is released — a *typed reject through the
        admission layer*, not a leak).
        """
        if legs < 1:
            raise ControlPlaneConfigError(f"legs must be >= 1, got {legs}")
        shard = self.shard_for(user)
        order = shard.submit(user, waypoints, max_charge=max_charge,
                             max_duration_s=max_duration_s,
                             drone_type=drone_type)
        tenant = order.definition.name
        request = PlacementRequest(
            tenant=tenant, east_m=east_m, north_m=north_m,
            energy_j=order.definition.energy_allotted_j,
            duration_s=min(max_duration_s, order.estimated_flight_time_s),
            whitelist_class=whitelist_class)
        record = TenantRecord(
            tenant=tenant, user=user, order_id=order.order_id,
            shard_id=shard.shard_id, request=request, legs_remaining=legs,
            submitted_t_us=self.sim.now)
        try:
            decision = self.placer.place(request, self.fleet.states())
        except NoFeasiblePlacementError:
            shard.portal.cancel_order(order.order_id)
            obs.counter("cp.rejected", shard=shard.shard_id,
                        reason="capacity").inc()
            record.state = "rejected"
            self.records[tenant] = record
            self.journal(kind="order_rejected", tenant=tenant,
                         shard=shard.shard_id, reason="capacity")
            raise
        self._commit_placement(record, order, decision)
        return record

    def _commit_placement(self, record: TenantRecord, order: Order,
                          decision: PlacementDecision) -> None:
        drone = self.fleet.get(decision.drone_id)
        drone.enqueue(record.request.as_placed())
        record.drone_id = decision.drone_id
        record.state = "queued"
        self.records[record.tenant] = record
        self._locality_sum_m += decision.distance_m
        self._locality_count += 1
        obs.counter("cp.placements", drone=decision.drone_id,
                    policy=self.placer.name).inc()
        window_start_s = (self.sim.now + self.dispatch_delay_us) / 1e6
        self._shards_by_id[record.shard_id].portal.confirm_window(
            order.order_id, window_start_s,
            window_start_s + record.request.duration_s)
        self.journal(kind="order_placed", tenant=record.tenant,
                     shard=record.shard_id, drone=decision.drone_id,
                     score=round(decision.score, 6))
        self._maybe_schedule_flight(decision.drone_id)

    # -- flight lifecycle -------------------------------------------------------
    def _maybe_schedule_flight(self, drone_id: str) -> None:
        drone = self.fleet.get(drone_id)
        if (drone.in_flight or not drone.available or not drone.pending
                or drone_id in self._launch_scheduled):
            return
        self._launch_scheduled.add(drone_id)
        self.sim.after(self.dispatch_delay_us,
                       lambda: self._launch(drone_id))

    def _launch(self, drone_id: str) -> None:
        self._launch_scheduled.discard(drone_id)
        drone = self.fleet.get(drone_id)
        if drone.in_flight or not drone.available or not drone.pending:
            return
        manifest = drone.begin_flight()
        obs.counter("cp.flights", drone=drone_id).inc()
        self.journal(kind="flight_started", drone=drone_id,
                     tenants=sorted(p.tenant for p in manifest))
        for placed in manifest:
            record = self.records[placed.tenant]
            record.state = "flying"
            shard = self._shards_by_id[record.shard_id]
            local_id = record.order_id % 1_000_000
            shard.portal.flight_started(
                record.order_id,
                ip=f"10.{shard.index}.{(local_id >> 8) & 0xFF}"
                   f".{local_id & 0xFF}",
                port=2200)
        flight_s = self.flight_overhead_s + sum(
            self.service_fraction * p.duration_s for p in manifest)
        self.sim.after(int(flight_s * 1e6),
                       lambda: self._complete_flight(drone_id))

    def _complete_flight(self, drone_id: str) -> None:
        drone = self.fleet.get(drone_id)
        served = drone.complete_flight()
        self.journal(kind="flight_completed", drone=drone_id,
                     tenants=sorted(p.tenant for p in served))
        for placed in served:
            record = self.records[placed.tenant]
            record.legs_remaining -= 1
            shard = self._shards_by_id[record.shard_id]
            if record.legs_remaining <= 0:
                shard.portal.flight_completed(
                    record.order_id,
                    [f"files/{record.tenant}/summary.json"])
                record.state = "completed"
                record.completed_t_us = self.sim.now
                obs.counter("cp.completed", shard=record.shard_id).inc()
                self.journal(kind="tenant_completed", tenant=record.tenant,
                             shard=record.shard_id)
            else:
                shard.portal.flight_interrupted(record.order_id)
                record.state = "migrating"
                record.migrations += 1
                self._begin_migration(record, drone_id)
        self._maybe_schedule_flight(drone_id)

    # -- migration --------------------------------------------------------------
    def _begin_migration(self, record: TenantRecord,
                         source_drone: str) -> None:
        shard = self._shards_by_id[record.shard_id]
        order = shard.portal.orders[record.order_id]
        waypoint_count = len(order.definition.waypoints)
        completed = frozenset(range(max(1, waypoint_count // 2)))
        ticket = MigrationTicket(
            tenant=record.tenant, source_drone=source_drone,
            request=record.request, definition=order.definition,
            completed_waypoints=completed)
        record.ticket = ticket
        self.migrations.begin(ticket, shard.vdr,
                              on_placed=self._migration_placed,
                              on_failed=self._migration_failed)

    def _migration_placed(self, ticket: MigrationTicket,
                          decision: PlacementDecision) -> None:
        record = self.records[ticket.tenant]
        drone = self.fleet.get(decision.drone_id)
        if not feasible(drone, ticket.request):
            # Headroom taken by fresh orders between PLACING and now;
            # the coordinator treats this as a retryable abort.
            raise DroneStateError(
                f"{decision.drone_id} no longer feasible for "
                f"{ticket.tenant!r}")
        drone.enqueue(ticket.request.as_placed())
        record.drone_id = decision.drone_id
        record.state = "queued"
        self._locality_sum_m += decision.distance_m
        self._locality_count += 1
        obs.counter("cp.placements", drone=decision.drone_id,
                    policy=self.placer.name).inc()
        self._maybe_schedule_flight(decision.drone_id)

    def _migration_failed(self, ticket: MigrationTicket,
                          error: MigrationError) -> None:
        record = self.records[ticket.tenant]
        record.state = "failed"
        record.completed_t_us = self.sim.now
        shard = self._shards_by_id[record.shard_id]
        # Terminal: the order stays interrupted (the tenant's state is
        # preserved in the VDR history) and the admission slot frees up.
        shard.portal.flight_completed(record.order_id, [], interrupted=True)

    # -- failure injection ------------------------------------------------------
    def restart_drone(self, drone_id: str, downtime_s: float) -> None:
        """Take a physical drone's VDC host down for ``downtime_s``.

        Illegal mid-flight (a crash of an airborne drone is a different
        failure class than a host restart between flights).  Queued
        tenants stay queued; migrations that chose this drone as a
        target abort at import and re-place elsewhere.
        """
        drone = self.fleet.get(drone_id)
        if drone.in_flight:
            raise DroneStateError(
                f"{drone_id} is mid-flight; cannot restart its host now")
        if not drone.available:
            raise DroneStateError(f"{drone_id} is already down")
        if downtime_s <= 0:
            raise ControlPlaneConfigError(
                f"downtime_s must be positive, got {downtime_s}")
        drone.available = False
        obs.counter("cp.drone_restarts", drone=drone_id).inc()
        self.journal(kind="drone_restart", drone=drone_id,
                     downtime_s=downtime_s)
        self.sim.after(int(downtime_s * 1e6),
                       lambda: self._drone_back(drone_id))

    def _drone_back(self, drone_id: str) -> None:
        drone = self.fleet.get(drone_id)
        drone.available = True
        self.journal(kind="drone_back", drone=drone_id)
        self._maybe_schedule_flight(drone_id)

    # -- roll-ups ---------------------------------------------------------------
    def rollup(self) -> None:
        """Refresh fleet-level gauges from shard and fleet state."""
        active = sum(1 for r in self.records.values()
                     if r.state in ("queued", "flying", "migrating"))
        obs.gauge("cp.tenants_active").set(active)
        for shard in self.shards:
            obs.gauge("cp.shard_pending",
                      shard=shard.shard_id).set(shard.admission.pending)
            obs.gauge("cp.vdr_stored_bytes",
                      shard=shard.shard_id).set(
                          shard.vdr.total_stored_bytes())

    def mean_placement_distance_m(self) -> float:
        """Mean pad-to-waypoint distance over all committed placements —
        the placement-quality headline the benchmark compares placers on."""
        if not self._locality_count:
            return 0.0
        return self._locality_sum_m / self._locality_count

    def stats(self) -> Dict[str, Any]:
        by_state: Dict[str, int] = {}
        for record in self.records.values():
            by_state[record.state] = by_state.get(record.state, 0) + 1
        return {
            "tenants": len(self.records),
            "by_state": by_state,
            "flights": sum(d.flights_flown for d in self.fleet.states()),
            "migrations": self.migrations.stats(),
            "shards": [shard.snapshot() for shard in self.shards],
        }
