"""Typed error taxonomy for the city-scale control plane.

Every failure mode of the control plane surfaces as one of these classes
so callers can dispatch on type — retry a :class:`NoFeasiblePlacementError`
later, treat a :class:`MigrationAbortedError` as retryable, treat a
:class:`MigrationStateError` as a programming bug.  All classes subclass
a builtin (``ValueError`` / ``RuntimeError`` / ``KeyError``) so callers
that only know the builtin vocabulary keep working; the ``error-taxonomy``
lint rule holds the package to raising these, never bare builtins.
"""

from __future__ import annotations


class ControlPlaneError(ValueError):
    """Base class for every control-plane failure."""


class ControlPlaneConfigError(ControlPlaneError):
    """Invalid control-plane construction input (shard count, drone
    spec, placer weights)."""


class UnknownShardError(ControlPlaneError, KeyError):
    """A shard id the router/plane never registered."""

    def __init__(self, shard_id: str):
        ControlPlaneError.__init__(self, f"unknown shard {shard_id!r}")
        self.shard_id = shard_id

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


class UnknownDroneError(ControlPlaneError, KeyError):
    """A physical drone id the fleet directory has never seen."""

    def __init__(self, drone_id: str):
        ControlPlaneError.__init__(self, f"unknown drone {drone_id!r}")
        self.drone_id = drone_id

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


class DroneStateError(ControlPlaneError):
    """An operation that is illegal in the drone's current state
    (e.g. restarting a drone mid-flight)."""


class PlacementError(ControlPlaneError):
    """Base class for placement failures."""


class NoFeasiblePlacementError(PlacementError):
    """No physical drone can host the request right now.

    Carries the request's tenant name and how many drones were
    considered, so the admission layer can surface a typed reject and
    the caller can decide whether to retry after capacity frees up.
    """

    def __init__(self, tenant: str, considered: int, detail: str = ""):
        suffix = f": {detail}" if detail else ""
        super().__init__(
            f"no feasible placement for {tenant!r} across "
            f"{considered} drone(s){suffix}")
        self.tenant = tenant
        self.considered = considered


class MigrationError(ControlPlaneError):
    """Base class for the migration taxonomy."""


class MigrationStateError(MigrationError):
    """An illegal migration state-machine transition (a bug, not a
    retryable condition)."""

    def __init__(self, tenant: str, current: str, requested: str):
        super().__init__(
            f"migration of {tenant!r} cannot go {current} -> {requested}")
        self.tenant = tenant
        self.current = current
        self.requested = requested


class MigrationTargetError(MigrationError):
    """No feasible target drone for a paused virtual drone (placement
    failed during migration)."""


class MigrationAbortedError(MigrationError):
    """A migration step found its precondition gone — the VDR entry
    vanished or the target drone restarted mid-import.  Retryable: the
    tenant's state is safe in the VDR."""

    def __init__(self, tenant: str, reason: str):
        super().__init__(f"migration of {tenant!r} aborted: {reason}")
        self.tenant = tenant
        self.reason = reason
