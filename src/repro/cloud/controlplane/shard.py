"""One control-plane shard: a portal + admission gate + VDR partition.

The city control plane partitions WebPortal / VDR / planner state across
N shard workers; a consistent-hash router (see
:mod:`repro.cloud.controlplane.ring`) decides which shard owns which
user.  Each shard is a *real* stack — the PR-1 :class:`WebPortal`
fronted by the PR-4 :class:`AdmissionController` and backed by its own
:class:`VirtualDroneRepository` partition — so admission semantics,
order state machines, and VDR entry ids behave exactly as they do in
the single-node system.

Order ids are partitioned by a fixed stride so tenant names
(``user-orderN``) stay globally unique across shards without any
cross-shard coordination.
"""

from __future__ import annotations

from typing import Any, Dict, List

import repro.obs as obs
from repro.cloud.admission import AdmissionController
from repro.cloud.app_store import AppStore
from repro.cloud.billing import BillingService
from repro.cloud.controlplane.errors import ControlPlaneConfigError
from repro.cloud.portal import Order, PortalBusyError, WebPortal
from repro.cloud.vdr import VirtualDroneRepository

#: Order-id partition width per shard.  Shard *k* mints ids in
#: ``[k * ORDER_STRIDE + 1, (k + 1) * ORDER_STRIDE]``.
ORDER_STRIDE = 1_000_000


class ControlPlaneShard:
    """A single shard worker of the sharded control plane."""

    def __init__(self, shard_id: str, index: int, sim,
                 max_pending: int = 32, rate_per_s: float = 0.0,
                 burst: int = 8):
        if index < 0:
            raise ControlPlaneConfigError(
                f"shard index must be >= 0, got {index}")
        self.shard_id = shard_id
        self.index = index
        self.admission = AdmissionController(
            max_pending=max_pending, rate_per_s=rate_per_s, burst=burst,
            clock=lambda: sim.now / 1e6)
        self.portal = WebPortal(AppStore(), BillingService(),
                                admission=self.admission)
        self.portal.seek_order_ids(index * ORDER_STRIDE + 1)
        self.vdr = VirtualDroneRepository()
        self.orders_accepted = 0
        self.orders_rejected_busy = 0

    def submit(self, user: str, waypoints: List[Dict[str, float]],
               **order_kwargs: Any) -> Order:
        """Submit an order through this shard's admission gate.

        Re-raises :class:`PortalBusyError` after counting the rejection,
        so fleet metrics separate back-pressure from capacity rejects.
        """
        try:
            order = self.portal.order_virtual_drone(
                user, waypoints, **order_kwargs)
        except PortalBusyError:
            self.orders_rejected_busy += 1
            obs.counter("cp.rejected", shard=self.shard_id,
                        reason="busy").inc()
            raise
        self.orders_accepted += 1
        obs.counter("cp.orders", shard=self.shard_id).inc()
        return order

    def snapshot(self) -> Dict[str, float]:
        """Shard-level health roll-up for fleet metrics."""
        gate = self.admission.snapshot()
        return {
            "shard": self.shard_id,
            "pending": gate["pending"],
            "admitted": gate["admitted"],
            "rejected": gate["rejected"],
            "orders_accepted": self.orders_accepted,
            "orders_rejected_busy": self.orders_rejected_busy,
            "vdr_entries": len(self.vdr.list_entries()),
            "vdr_bytes": self.vdr.total_stored_bytes(),
        }
