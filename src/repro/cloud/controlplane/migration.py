"""Migrating paused virtual drones between flights, via the VDR.

A virtual drone whose task was interrupted on one flight "can be resumed
on a later flight" (paper §2/§4.4) — and at city scale the later flight
is usually on a *different* physical drone.  The coordinator drives that
hand-off through the existing VDR export/import path on the sim clock:

    REQUESTED ──> EXPORTING ──> STORED ──> PLACING ──> IMPORTING ──> COMPLETED
                                              ▲            │
                                              └── retry ────┘
                 (any step) ──> FAILED

* **EXPORTING** models committing the container's diff layer; the entry
  lands in the tenant's home-shard VDR (the tenant's state is then safe
  regardless of what happens to either physical drone).
* **PLACING** re-runs the pluggable placer over the fleet minus the
  source drone; no feasible target is retried with deterministic
  backoff, then surfaces as :class:`MigrationTargetError`.
* **IMPORTING** re-validates the world before committing: the VDR entry
  must still exist, and the target must still be up with a free slot —
  a target that restarted mid-import raises
  :class:`MigrationAbortedError` and the ticket loops back to PLACING.

Every transition emits a ``cp.migration_state`` event and appends to the
plane's journal; the whole migration is bracketed by a ``cp.migration``
span so traces show hand-off latency end to end.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import repro.obs as obs
from repro.cloud.controlplane.errors import (
    MigrationAbortedError,
    MigrationError,
    MigrationStateError,
    MigrationTargetError,
    NoFeasiblePlacementError,
)
from repro.cloud.controlplane.fleet import DroneStateError, FleetDirectory
from repro.cloud.controlplane.placement import (
    PlacementDecision,
    PlacementPolicy,
    PlacementRequest,
)
from repro.cloud.vdr import UnknownVdrEntryError, VirtualDroneRepository
from repro.containers.image import Layer
from repro.vdc.definition import VirtualDroneDefinition

#: Base image tag recorded on migration VDR entries.
BASE_IMAGE_TAG = "android-things-base"


class MigrationState(enum.Enum):
    REQUESTED = "requested"
    EXPORTING = "exporting"
    STORED = "stored"
    PLACING = "placing"
    IMPORTING = "importing"
    COMPLETED = "completed"
    FAILED = "failed"


#: Legal transitions of the migration state machine.
TRANSITIONS = {
    MigrationState.REQUESTED: (MigrationState.EXPORTING,
                               MigrationState.FAILED),
    MigrationState.EXPORTING: (MigrationState.STORED, MigrationState.FAILED),
    MigrationState.STORED: (MigrationState.PLACING, MigrationState.FAILED),
    MigrationState.PLACING: (MigrationState.IMPORTING,
                             MigrationState.PLACING, MigrationState.FAILED),
    MigrationState.IMPORTING: (MigrationState.COMPLETED,
                               MigrationState.PLACING, MigrationState.FAILED),
    MigrationState.COMPLETED: (),
    MigrationState.FAILED: (),
}


@dataclass
class MigrationTicket:
    """One migration in flight, with its full transition history."""

    tenant: str
    source_drone: str
    request: PlacementRequest
    definition: VirtualDroneDefinition
    completed_waypoints: frozenset
    state: MigrationState = MigrationState.REQUESTED
    target_drone: Optional[str] = None
    entry_id: Optional[str] = None
    attempts: int = 0
    failure: Optional[str] = None
    #: (t_us, state) per transition, REQUESTED included.
    history: List[Tuple[int, str]] = field(default_factory=list)

    def transition(self, to: MigrationState, t_us: int) -> None:
        if to not in TRANSITIONS[self.state]:
            raise MigrationStateError(self.tenant, self.state.value, to.value)
        previous = self.state
        self.state = to
        self.history.append((t_us, to.value))
        obs.event("cp.migration_state", tenant=self.tenant, state=to.value,
                  previous=previous.value)


class MigrationCoordinator:
    """Runs migration tickets to completion on the sim clock."""

    def __init__(self, sim, placer: PlacementPolicy, fleet: FleetDirectory,
                 export_s: float = 2.0, import_s: float = 1.0,
                 retry_limit: int = 2, retry_backoff_s: float = 5.0,
                 journal: Optional[Callable[..., None]] = None):
        self.sim = sim
        self.placer = placer
        self.fleet = fleet
        self.export_us = int(export_s * 1e6)
        self.import_us = int(import_s * 1e6)
        self.retry_limit = retry_limit
        self.retry_backoff_us = int(retry_backoff_s * 1e6)
        self._journal = journal or (lambda **kw: None)
        self.tickets: List[MigrationTicket] = []

    # -- entry point ------------------------------------------------------------
    def begin(self, ticket: MigrationTicket, vdr: VirtualDroneRepository,
              on_placed: Callable[[MigrationTicket, PlacementDecision], None],
              on_failed: Callable[[MigrationTicket, MigrationError], None],
              ) -> MigrationTicket:
        """Start ``ticket``; ``on_placed`` commits the tenant to its new
        drone, ``on_failed`` finalizes the order as interrupted."""
        ticket.history.append((self.sim.now, ticket.state.value))
        self.tickets.append(ticket)
        span = obs.span("cp.migration", tenant=ticket.tenant,
                        source=ticket.source_drone)
        obs.counter("cp.migrations", outcome="started").inc()
        self._journal(kind="migration_requested", tenant=ticket.tenant,
                      source=ticket.source_drone)
        ticket.transition(MigrationState.EXPORTING, self.sim.now)
        self.sim.after(self.export_us, lambda: self._export_done(
            ticket, vdr, span, on_placed, on_failed))
        return ticket

    # -- steps ------------------------------------------------------------------
    def _export_done(self, ticket, vdr, span, on_placed, on_failed) -> None:
        resume_state = json.dumps({
            "tenant": ticket.tenant,
            "source": ticket.source_drone,
            "completed-waypoints": sorted(ticket.completed_waypoints),
        }, sort_keys=True)
        diff = Layer({"/data/resume.json": resume_state},
                     comment=f"migration of {ticket.tenant}")
        ticket.entry_id = vdr.store(
            ticket.tenant, ticket.definition, BASE_IMAGE_TAG, diff,
            resumable=True, completed_waypoints=ticket.completed_waypoints)
        ticket.transition(MigrationState.STORED, self.sim.now)
        self._journal(kind="migration_stored", tenant=ticket.tenant,
                      entry=ticket.entry_id)
        ticket.transition(MigrationState.PLACING, self.sim.now)
        self._try_place(ticket, vdr, span, on_placed, on_failed)

    def _try_place(self, ticket, vdr, span, on_placed, on_failed) -> None:
        ticket.attempts += 1
        try:
            decision = self.placer.place(
                ticket.request, self.fleet.states(exclude=ticket.source_drone))
        except NoFeasiblePlacementError as full:
            self._retry_or_fail(
                ticket, vdr, span, on_placed, on_failed,
                MigrationTargetError(str(full)))
            return
        ticket.target_drone = decision.drone_id
        ticket.transition(MigrationState.IMPORTING, self.sim.now)
        self.sim.after(self.import_us, lambda: self._import_done(
            ticket, vdr, span, decision, on_placed, on_failed))

    def _import_done(self, ticket, vdr, span, decision,
                     on_placed, on_failed) -> None:
        try:
            vdr.fetch(ticket.entry_id)
        except UnknownVdrEntryError as gone:
            self._abort(ticket, vdr, span, on_placed, on_failed,
                        MigrationAbortedError(
                            ticket.tenant, f"VDR entry vanished: {gone}"))
            return
        target = self.fleet.get(decision.drone_id)
        if not target.available:
            self._abort(ticket, vdr, span, on_placed, on_failed,
                        MigrationAbortedError(
                            ticket.tenant,
                            f"target {decision.drone_id} restarted "
                            f"mid-import"))
            return
        try:
            on_placed(ticket, decision)
        except DroneStateError as raced:
            # The slot went to a fresh order between PLACING and now.
            self._abort(ticket, vdr, span, on_placed, on_failed,
                        MigrationAbortedError(ticket.tenant, str(raced)))
            return
        vdr.delete(ticket.entry_id)  # checked out of the repository
        ticket.transition(MigrationState.COMPLETED, self.sim.now)
        obs.counter("cp.migrations", outcome="completed").inc()
        self._journal(kind="migration_completed", tenant=ticket.tenant,
                      source=ticket.source_drone, target=ticket.target_drone)
        span.end(outcome="completed", target=ticket.target_drone,
                 attempts=ticket.attempts)

    # -- failure handling -------------------------------------------------------
    def _abort(self, ticket, vdr, span, on_placed, on_failed,
               error: MigrationAbortedError) -> None:
        ticket.target_drone = None
        self._journal(kind="migration_aborted", tenant=ticket.tenant,
                      reason=error.reason)
        try:
            ticket.transition(MigrationState.PLACING, self.sim.now)
        except MigrationStateError:
            # The entry itself is gone; nothing left to place.
            self._fail(ticket, span, on_failed, error)
            return
        self._retry_or_fail(ticket, vdr, span, on_placed, on_failed, error)

    def _retry_or_fail(self, ticket, vdr, span, on_placed, on_failed,
                       error: MigrationError) -> None:
        if ticket.attempts <= self.retry_limit:
            obs.counter("cp.migrations", outcome="retried").inc()
            self.sim.after(self.retry_backoff_us, lambda: self._try_place(
                ticket, vdr, span, on_placed, on_failed))
            return
        self._fail(ticket, span, on_failed, error)

    def _fail(self, ticket, span, on_failed, error: MigrationError) -> None:
        ticket.failure = str(error)
        ticket.transition(MigrationState.FAILED, self.sim.now)
        obs.counter("cp.migrations", outcome="failed").inc()
        self._journal(kind="migration_failed", tenant=ticket.tenant,
                      reason=str(error))
        span.end(outcome="failed", reason=str(error),
                 attempts=ticket.attempts)
        on_failed(ticket, error)

    # -- reporting --------------------------------------------------------------
    def stats(self) -> dict:
        by_state = {state.value: 0 for state in MigrationState}
        for ticket in self.tickets:
            by_state[ticket.state.value] += 1
        return by_state
