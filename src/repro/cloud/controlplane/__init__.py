"""City-scale control plane: sharded portals, placement, migration.

See ``docs/CONTROL_PLANE.md`` for the component map, the placement
policy contract, and the migration state machine.
"""

from repro.cloud.controlplane.errors import (
    ControlPlaneConfigError,
    ControlPlaneError,
    DroneStateError,
    MigrationAbortedError,
    MigrationError,
    MigrationStateError,
    MigrationTargetError,
    NoFeasiblePlacementError,
    PlacementError,
    UnknownDroneError,
    UnknownShardError,
)
from repro.cloud.controlplane.fleet import (
    WHITELIST_CLASSES,
    DroneSpec,
    DroneState,
    FleetDirectory,
    PlacedTenant,
    whitelist_rank,
)
from repro.cloud.controlplane.migration import (
    TRANSITIONS,
    MigrationCoordinator,
    MigrationState,
    MigrationTicket,
)
from repro.cloud.controlplane.placement import (
    PLACERS,
    BinPackingPlacer,
    FirstFitPlacer,
    PlacementDecision,
    PlacementPolicy,
    PlacementRequest,
    feasible,
    make_placer,
)
from repro.cloud.controlplane.plane import CityControlPlane, TenantRecord
from repro.cloud.controlplane.ring import ConsistentHashRouter
from repro.cloud.controlplane.shard import ORDER_STRIDE, ControlPlaneShard

__all__ = [
    "ControlPlaneError",
    "ControlPlaneConfigError",
    "UnknownShardError",
    "UnknownDroneError",
    "DroneStateError",
    "PlacementError",
    "NoFeasiblePlacementError",
    "MigrationError",
    "MigrationStateError",
    "MigrationTargetError",
    "MigrationAbortedError",
    "WHITELIST_CLASSES",
    "whitelist_rank",
    "DroneSpec",
    "DroneState",
    "PlacedTenant",
    "FleetDirectory",
    "ConsistentHashRouter",
    "PlacementRequest",
    "PlacementDecision",
    "PlacementPolicy",
    "BinPackingPlacer",
    "FirstFitPlacer",
    "PLACERS",
    "make_placer",
    "feasible",
    "MigrationState",
    "MigrationTicket",
    "MigrationCoordinator",
    "TRANSITIONS",
    "ControlPlaneShard",
    "ORDER_STRIDE",
    "CityControlPlane",
    "TenantRecord",
]
