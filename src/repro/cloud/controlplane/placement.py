"""Pluggable placement: which physical drone hosts a virtual drone.

The control plane scores candidate drones with a bin-packing policy over
three axes the ISSUE's DaaS sources (AeroDaaS, Cloudrone) all name:

* **allotment headroom** — energy and time left in the drone's
  next-flight budget after taking the tenant (best-fit: prefer the
  tightest feasible fit so big future tenants still find room);
* **geographic locality** — pad-to-waypoint distance (battery spent
  ferrying is battery not sold to tenants);
* **whitelist class** — a drone can host any tenant whose required
  MAVLink template class is at or below its own; exact matches score
  better so ``full``-capable drones stay free for ``full`` tenants.

Policies are pluggable: anything with ``place(request, drones)`` →
:class:`PlacementDecision` (raising
:class:`~repro.cloud.controlplane.errors.NoFeasiblePlacementError` when
nothing fits).  :class:`FirstFitPlacer` is the deliberately naive
baseline the placement-quality benchmark compares against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import repro.obs as obs
from repro.cloud.controlplane.errors import (
    ControlPlaneConfigError,
    NoFeasiblePlacementError,
)
from repro.cloud.controlplane.fleet import (
    DroneState,
    PlacedTenant,
    whitelist_rank,
)


@dataclass(frozen=True)
class PlacementRequest:
    """What a virtual drone asks of a physical drone."""

    tenant: str
    east_m: float
    north_m: float
    energy_j: float
    duration_s: float
    whitelist_class: str = "standard"

    def as_placed(self) -> PlacedTenant:
        return PlacedTenant(
            tenant=self.tenant, energy_j=self.energy_j,
            duration_s=self.duration_s, east_m=self.east_m,
            north_m=self.north_m, whitelist_class=self.whitelist_class)


@dataclass(frozen=True)
class PlacementDecision:
    """The outcome of one placement query."""

    tenant: str
    drone_id: str
    score: float
    distance_m: float
    considered: int
    feasible: int
    policy: str


def _distance_m(drone: DroneState, request: PlacementRequest) -> float:
    return math.hypot(drone.spec.east_m - request.east_m,
                      drone.spec.north_m - request.north_m)


def feasible(drone: DroneState, request: PlacementRequest) -> bool:
    """Can ``drone`` take ``request`` on its next flight?"""
    return (drone.available
            and drone.slots_free >= 1
            and drone.energy_headroom_j >= request.energy_j
            and drone.time_headroom_s >= request.duration_s
            and whitelist_rank(drone.spec.whitelist_class)
            >= whitelist_rank(request.whitelist_class))


class PlacementPolicy:
    """Interface: rank the fleet for one request."""

    name = "abstract"

    def place(self, request: PlacementRequest,
              drones: Sequence[DroneState]) -> PlacementDecision:
        raise NotImplementedError


class BinPackingPlacer(PlacementPolicy):
    """Weighted best-fit over headroom, locality, and whitelist slack.

    Lower score wins.  Headroom terms are the *leftover* fraction of the
    budget after placement (best-fit packs tight); the locality term is
    distance normalized by ``locality_scale_m``; the class term is how
    many capability ranks the drone would waste on this tenant.
    """

    name = "binpack"

    def __init__(self, energy_weight: float = 1.0, time_weight: float = 0.5,
                 locality_weight: float = 1.0, class_weight: float = 0.25,
                 locality_scale_m: float = 1000.0):
        for label, value in (("energy_weight", energy_weight),
                             ("time_weight", time_weight),
                             ("locality_weight", locality_weight),
                             ("class_weight", class_weight)):
            if value < 0:
                raise ControlPlaneConfigError(
                    f"{label} must be >= 0, got {value}")
        if locality_scale_m <= 0:
            raise ControlPlaneConfigError(
                f"locality_scale_m must be positive, got {locality_scale_m}")
        self.energy_weight = energy_weight
        self.time_weight = time_weight
        self.locality_weight = locality_weight
        self.class_weight = class_weight
        self.locality_scale_m = locality_scale_m

    def score(self, drone: DroneState, request: PlacementRequest) -> float:
        energy_left = (drone.energy_headroom_j - request.energy_j) \
            / drone.spec.energy_budget_j
        time_left = (drone.time_headroom_s - request.duration_s) \
            / drone.spec.time_budget_s
        distance = _distance_m(drone, request) / self.locality_scale_m
        class_slack = (whitelist_rank(drone.spec.whitelist_class)
                       - whitelist_rank(request.whitelist_class))
        return (self.energy_weight * energy_left
                + self.time_weight * time_left
                + self.locality_weight * distance
                + self.class_weight * class_slack)

    def place(self, request: PlacementRequest,
              drones: Sequence[DroneState]) -> PlacementDecision:
        candidates: List[DroneState] = [d for d in drones
                                        if feasible(d, request)]
        if not candidates:
            raise NoFeasiblePlacementError(request.tenant, len(drones))
        # Ties break on drone id so the decision never depends on the
        # fleet's iteration order.
        best = min(candidates,
                   key=lambda d: (self.score(d, request), d.spec.drone_id))
        score = self.score(best, request)
        distance = _distance_m(best, request)
        obs.histogram("cp.placement_score", policy=self.name).observe(score)
        obs.histogram("cp.placement_locality_m",
                      unit="m", policy=self.name).observe(distance)
        return PlacementDecision(
            tenant=request.tenant, drone_id=best.spec.drone_id, score=score,
            distance_m=distance, considered=len(drones),
            feasible=len(candidates), policy=self.name)


class FirstFitPlacer(PlacementPolicy):
    """First feasible drone in id order — the baseline policy the
    placement-quality benchmark measures :class:`BinPackingPlacer`
    against."""

    name = "firstfit"

    def place(self, request: PlacementRequest,
              drones: Sequence[DroneState]) -> PlacementDecision:
        candidates = [d for d in drones if feasible(d, request)]
        if not candidates:
            raise NoFeasiblePlacementError(request.tenant, len(drones))
        best = min(candidates, key=lambda d: d.spec.drone_id)
        distance = _distance_m(best, request)
        obs.histogram("cp.placement_locality_m",
                      unit="m", policy=self.name).observe(distance)
        return PlacementDecision(
            tenant=request.tenant, drone_id=best.spec.drone_id, score=0.0,
            distance_m=distance, considered=len(drones),
            feasible=len(candidates), policy=self.name)


#: Scenario-facing registry of placement policies.
PLACERS = {
    BinPackingPlacer.name: BinPackingPlacer,
    FirstFitPlacer.name: FirstFitPlacer,
}


def make_placer(name: str) -> PlacementPolicy:
    if name not in PLACERS:
        raise ControlPlaneConfigError(
            f"unknown placer {name!r}: choose from {sorted(PLACERS)}")
    return PLACERS[name]()
