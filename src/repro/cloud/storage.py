"""General cloud storage for drone flight data.

Files marked by apps (``markFileForUser``) are offloaded here after the
flight; "users retrieve files on demand from cloud storage" (Figure 4)
via emailed links.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass
class StoredFile:
    tenant: str
    path: str
    content: str
    size_bytes: int


class CloudStorage:
    """Per-tenant object store."""

    def __init__(self) -> None:
        self._files: Dict[Tuple[str, str], StoredFile] = {}
        self.bytes_uploaded = 0

    def put(self, tenant: str, path: str, content: str) -> str:
        """Store a file; returns a retrieval link."""
        record = StoredFile(tenant, path, content, len(content))
        self._files[(tenant, path)] = record
        self.bytes_uploaded += record.size_bytes
        return self.link_for(tenant, path)

    def get(self, tenant: str, path: str) -> Optional[str]:
        record = self._files.get((tenant, path))
        return record.content if record else None

    def list_files(self, tenant: str) -> List[str]:
        return sorted(path for t, path in self._files if t == tenant)

    def usage_bytes(self, tenant: str) -> int:
        return sum(f.size_bytes for (t, _), f in self._files.items() if t == tenant)

    def link_for(self, tenant: str, path: str) -> str:
        token = hashlib.sha256(f"{tenant}:{path}".encode()).hexdigest()[:20]
        return f"https://storage.androne.cloud/{tenant}/{token}"
