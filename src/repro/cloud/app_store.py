"""The AnDrone app store.

Developers publish apps with both manifests; the portal reads the AnDrone
manifest to learn required devices and user arguments (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.android.manifest import AndroidManifest, AnDroneManifest, ManifestError


class UnknownAppError(KeyError):
    """Lookup of a package the store does not carry.  Subclasses
    ``KeyError`` so callers that caught the bare lookup error this used
    to surface as keep working."""

    def __init__(self, package: str):
        super().__init__(f"no app {package!r} in the store")
        self.package = package

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


@dataclass
class StoreApp:
    """One published app."""

    package: str
    title: str
    description: str
    android_manifest: AndroidManifest
    androne_manifest: AnDroneManifest
    downloads: int = 0

    def required_arguments(self):
        return [a for a in self.androne_manifest.arguments if a.required]


class AppStore:
    """Registry of published AnDrone apps."""

    def __init__(self) -> None:
        self._apps: Dict[str, StoreApp] = {}

    def publish(self, title: str, description: str,
                android_manifest_xml: str, androne_manifest_xml: str) -> StoreApp:
        """Validate and publish an app; both manifests must parse and
        agree on the package name."""
        android_manifest = AndroidManifest.parse(android_manifest_xml)
        androne_manifest = AnDroneManifest.parse(androne_manifest_xml)
        if android_manifest.package != androne_manifest.package:
            raise ManifestError(
                f"manifest package mismatch: {android_manifest.package!r} vs "
                f"{androne_manifest.package!r}"
            )
        app = StoreApp(android_manifest.package, title, description,
                       android_manifest, androne_manifest)
        self._apps[app.package] = app
        return app

    def get(self, package: str) -> StoreApp:
        if package not in self._apps:
            raise UnknownAppError(package)
        return self._apps[package]

    def download(self, package: str) -> StoreApp:
        app = self.get(package)
        app.downloads += 1
        return app

    def search(self, query: str) -> List[StoreApp]:
        query = query.lower()
        return [
            app for app in self._apps.values()
            if query in app.title.lower() or query in app.description.lower()
        ]

    def list_packages(self) -> List[str]:
        return sorted(self._apps)
