"""flow-taint: wall-clock and unseeded-RNG taint crossing call
boundaries into sim-path code.

The per-file ``sim-clock``/``seeded-rng`` rules catch a direct
``time.time()`` or ``random.random()``; they cannot see the same call
wrapped in a helper — including a helper living in an allowlisted
module, which is exactly how a measurement utility leaks wall-clock
into simulation logic.  This checker propagates taint over the project
call graph (``repro.lint.flow``) and flags every function that reaches
a source *indirectly* from a module not allowlisted for that source
kind.  Direct sources stay the per-file rules' findings; inline
suppressions on a source are honored as sanitizers (the disable is a
reviewed assertion the value never feeds sim behavior), as is the
blessed ``sim/rng.py`` wrapper via ``flow_taint_sanitizers``.
"""

from __future__ import annotations

from repro.lint.core import Checker, register

#: taint kind -> (config allowlist attribute, remedy clause)
_KINDS = {
    "wall-clock": ("sim_clock_allow",
                   "route timing through the SimClock"),
    "global-rng": ("rng_allow",
                   "draw from the run's seeded RngRegistry stream"),
    "unseeded-rng": ("rng_allow",
                     "seed the generator from the run's RngRegistry"),
}


@register
class FlowTaintChecker(Checker):
    rule = "flow-taint"
    scope = "project"
    description = ("no sim-path function reaches wall-clock or "
                   "unseeded-RNG sources through helper calls "
                   "(interprocedural)")

    def check_project(self, corpus, config):
        # Imported lazily: repro.lint.flow.summary reads constants from
        # the per-file checkers, so a module-level import here would be
        # circular.
        from repro.lint.flow.graph import project_graph
        graph = project_graph(corpus, config)
        taint = graph.taint()
        for fid in sorted(taint):
            fn = graph.functions[fid]
            for kind in sorted(taint[fid]):
                via, _target = taint[fid][kind]
                if via != "call":
                    continue  # direct source: the per-file rule's beat
                allow_attr, remedy = _KINDS[kind]
                if fn["package_rel"] in getattr(config, allow_attr):
                    continue
                path = " -> ".join(graph.taint_path(fid, kind))
                yield self.finding(
                    config, config.package_dir / fn["package_rel"],
                    fn["line"], fn["col"],
                    f"{fn['qualname']} reaches a {kind} source through "
                    f"helper calls ({path}); {remedy}",
                    identity=f"taint:{kind}:{graph.fid_label(fid)}")
