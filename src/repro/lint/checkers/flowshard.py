"""flow-shard-state: mutable state reachable from shard-worker code.

``ParallelFleetExecutor`` shards are real OS processes; anything a
worker mutates in its own address space silently diverges from the
parent and from sibling shards.  The per-file ``fork-safety`` rule
polices module-level mutable *definitions*; this checker closes the
behavioral half: starting from the declared shard entry points
(``shard_entry_points``) plus every callable detected crossing a
pool/process boundary (``pool.map``/``submit``/``Process(target=...)``),
it walks the call graph and flags

* ``global`` writes,
* mutations of module-level bindings (``.append``/``[k] =``/``+=``),
* mutable default arguments (shared across a worker's invocations),

in any reached function, and lambdas crossing the boundary outright
(closure state travels with them invisibly).  ``shard_state_allow``
exempts modules whose process-wide registries are reset *by design* at
shard start (the obs registry).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.lint.core import Checker, register


@register
class FlowShardStateChecker(Checker):
    rule = "flow-shard-state"
    scope = "project"
    description = ("no shard-worker-reachable function mutates state "
                   "that does not cross the process boundary back "
                   "(interprocedural)")

    def _entries(self, graph, config) -> Tuple[List[str], List]:
        entries: List[str] = []
        for spec in config.shard_entry_points:
            package_rel, qualname = spec.split("::", 1)
            rel = graph.rel_of_package_rel.get(package_rel)
            if rel is not None and f"{rel}::{qualname}" in graph.functions:
                entries.append(f"{rel}::{qualname}")
        lambdas = []
        for fid in sorted(graph.functions):
            fn = graph.functions[fid]
            for kind, ref, line, col in fn["crossings"]:
                if kind == "lambda":
                    lambdas.append((fn, line, col))
                elif kind in ("name", "bound"):
                    entries.extend(graph.resolve_chain(fid, ref))
        return entries, lambdas

    def check_project(self, corpus, config):
        # Lazy: repro.lint.flow.summary imports per-file checker
        # constants, so a module-level import would be circular.
        from repro.lint.flow.graph import project_graph
        graph = project_graph(corpus, config)
        entries, lambdas = self._entries(graph, config)
        for fn, line, col in lambdas:
            yield self.finding(
                config, config.package_dir / fn["package_rel"], line, col,
                f"lambda crosses the shard boundary in {fn['qualname']}: "
                f"captured closure state travels to the worker invisibly; "
                f"pass a module-level function and explicit arguments",
                identity=(f"shard-lambda:{fn['package_rel']}::"
                          f"{fn['qualname']}:{line}"))

        reached = graph.reachable_from(entries)
        for fid in sorted(reached):
            fn = graph.functions[fid]
            if fn["package_rel"] in config.shard_state_allow:
                continue
            entry = graph.fid_label(reached[fid])
            path = config.package_dir / fn["package_rel"]
            for name in fn["globals_written"]:
                yield self.finding(
                    config, path, fn["line"], fn["col"],
                    f"{fn['qualname']} writes global {name!r} but is "
                    f"reachable from shard entry {entry}: the write stays "
                    f"in one worker process; return the value or use a "
                    f"per-shard accumulator",
                    identity=f"shard-global:{graph.fid_label(fid)}:{name}")
            for fname, line, col in fn["mutable_defaults"]:
                yield self.finding(
                    config, path, line, col,
                    f"{fn['qualname']} has a mutable default argument and "
                    f"is reachable from shard entry {entry}: the default "
                    f"is shared across every call in that worker",
                    identity=f"shard-default:{graph.fid_label(fid)}")
            for name, how, line, col in fn["module_mutations"]:
                yield self.finding(
                    config, path, line, col,
                    f"{fn['qualname']} mutates module-level {name!r} "
                    f"({how}) and is reachable from shard entry {entry}: "
                    f"the mutation never leaves the worker process",
                    identity=(f"shard-mut:{graph.fid_label(fid)}:"
                              f"{name}:{how}"))
