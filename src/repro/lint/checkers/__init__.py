"""Builtin checkers.  Importing this package registers every checker
with the engine registry (see :func:`repro.lint.core.all_checkers`)."""

from repro.lint.checkers import (  # noqa: F401
    flowexc,
    flowshard,
    flowstate,
    flowtaint,
    forksafety,
    metricdocs,
    rng,
    security,
    simclock,
    taxonomy,
    unordered,
    whitelist,
)
