"""sim-clock: no wall-clock reads or sleeps on the simulated path.

Golden-trace digests, the parallel-executor equivalence proof, and every
replay test assume timestamps come from the one simulated clock
(``Simulator.now``).  A single ``time.time()`` on the sim path makes
runs diverge between hosts.  Modules that legitimately measure host
time (speedup and overhead numbers) are allowlisted in
:class:`~repro.lint.config.LintConfig.sim_clock_allow` or carry an
inline ``# repro-lint: disable=sim-clock``.
"""

from __future__ import annotations

from repro.lint.checkers._astutil import ImportMap, iter_calls
from repro.lint.core import Checker, register

BANNED_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.sleep",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})


@register
class SimClockChecker(Checker):
    rule = "sim-clock"
    description = ("wall-clock reads/sleeps are banned in sim-path "
                   "modules; timestamps come from the sim clock")

    def check_file(self, src, config):
        if src.package_rel in config.sim_clock_allow:
            return
        imap = ImportMap(src.tree)
        for call in iter_calls(src.tree):
            name = imap.resolve(call.func)
            if name in BANNED_CALLS:
                yield self.finding(
                    config, src.path, call.lineno, call.col_offset,
                    f"wall-clock call {name}() in a sim-path module; "
                    f"timestamps must come from the sim clock "
                    f"(Simulator.now / repro.sim.time) — allowlist the "
                    f"module in LintConfig.sim_clock_allow only for real "
                    f"wall-time measurement sites")
