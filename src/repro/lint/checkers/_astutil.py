"""Shared AST helpers: import-aware name resolution and constant-name
conventions, used by the determinism checkers."""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Optional


class ImportMap:
    """Resolves local names back to the dotted names they import.

    ``import time as t`` maps ``t`` -> ``time``; ``from datetime import
    datetime as dt`` maps ``dt`` -> ``datetime.datetime``.  Only
    module-level and function-level imports visible in the tree are
    considered, which is exact enough for a linter.
    """

    def __init__(self, tree: ast.AST):
        self.modules: Dict[str, str] = {}
        self.from_names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    self.modules[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.from_names[local] = f"{node.module}.{alias.name}"

    def resolve(self, expr: ast.AST) -> Optional[str]:
        """Dotted name a call target resolves to, or None."""
        parts = []
        while isinstance(expr, ast.Attribute):
            parts.append(expr.attr)
            expr = expr.value
        if not isinstance(expr, ast.Name):
            return None
        parts.reverse()
        base = expr.id
        if base in self.from_names:
            return ".".join([self.from_names[base]] + parts)
        if base in self.modules:
            return ".".join([self.modules[base]] + parts)
        return ".".join([base] + parts)


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


_CONST_NAME = re.compile(r"^_{0,2}[A-Z][A-Z0-9_]*$")


def is_constant_name(name: str) -> bool:
    """ALL_CAPS (optionally underscore-prefixed) or dunder convention —
    treated as a read-only table, not mutable process state."""
    return bool(_CONST_NAME.match(name)) or (
        name.startswith("__") and name.endswith("__"))


def assign_names(node: ast.stmt):
    """Plain-name targets of an Assign/AnnAssign/AugAssign statement."""
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    else:
        return []
    return [t.id for t in targets if isinstance(t, ast.Name)]
