"""mav-whitelist: every MAVLink command is explicitly classified.

Section 4.3's restriction templates are the only thing standing between
a tenant and the real flight controller, so "not mentioned" must never
be how a command gets its policy.  This checker cross-references the
``MavCommand`` enum against ``mavproxy/whitelist.py``: every enum
member must appear by name in the whitelist module (in a template's
allowed set, or in one of the explicit classification sets such as
``FENCE_CRITICAL``/``FULL_ONLY``/``VFC_INTERCEPTED``), and every
``MavCommand.X`` the whitelist references must exist in the enum.
``tests/mavproxy/test_whitelist_completeness.py`` mirrors the same
invariant at runtime.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Tuple

from repro.lint.core import Checker, Severity, register


def _enum_members(tree: ast.AST, class_name: str) -> Dict[str, int]:
    """name -> line of each int-valued member of ``class_name``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            members: Dict[str, int] = {}
            for stmt in node.body:
                if isinstance(stmt, ast.Assign) \
                        and isinstance(stmt.value, ast.Constant) \
                        and isinstance(stmt.value.value, int):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            members[target.id] = stmt.lineno
            return members
    return {}


def _attribute_refs(tree: ast.AST,
                    base: str) -> List[Tuple[str, int, int]]:
    """(member, line, col) for each ``base.member`` attribute access."""
    refs = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == base:
            refs.append((node.attr, node.lineno, node.col_offset))
    return refs


@register
class MavWhitelistChecker(Checker):
    rule = "mav-whitelist"
    scope = "project"
    description = ("every MavCommand enum member is explicitly "
                   "classified in mavproxy/whitelist.py, and every "
                   "referenced member exists")

    def check_project(self, corpus, config):
        enums_path = config.root / config.mav_enums_rel
        whitelist_path = config.root / config.whitelist_rel
        missing = [p for p in (enums_path, whitelist_path)
                   if not p.exists()]
        if missing:
            for path in missing:
                yield self.finding(
                    config, path, 1, 0,
                    "mav-whitelist skipped: file not found",
                    severity=Severity.WARNING)
            return

        enums_tree = ast.parse(enums_path.read_text(encoding="utf-8"))
        wl_tree = ast.parse(whitelist_path.read_text(encoding="utf-8"))
        members = _enum_members(enums_tree, config.mav_enum_class)
        if not members:
            yield self.finding(
                config, enums_path, 1, 0,
                f"enum {config.mav_enum_class} not found or empty",
                severity=Severity.WARNING)
            return

        refs = _attribute_refs(wl_tree, config.mav_enum_class)
        referenced = {name for name, _, _ in refs}

        for name in sorted(set(members) - referenced):
            yield self.finding(
                config, whitelist_path, 1, 0,
                f"{config.mav_enum_class}.{name} is never classified in "
                f"the whitelist module: add it to a template's allowed "
                f"set or to an explicit classification set "
                f"(FENCE_CRITICAL / FULL_ONLY / VFC_INTERCEPTED) so its "
                f"policy is a decision, not an omission")
        for name, line, col in refs:
            if name not in members:
                yield self.finding(
                    config, whitelist_path, line, col,
                    f"whitelist references unknown "
                    f"{config.mav_enum_class}.{name} (not a member of "
                    f"the enum in {config.mav_enums_rel})")
