"""security-errors: the security package keeps its typed taxonomy.

Two invariants over ``src/repro/security/``:

1. Every ``raise`` in the package throws one of the typed errors
   defined in ``security/errors.py`` (the :class:`SecurityError`
   closure) — callers at the admission/binder/MAVLink edges dispatch on
   those types to classify refusals, so an untyped raise silently
   escapes the retry/containment logic.
2. Every ``sec.*`` metric/event the package registers has a row in
   docs/METRICS.md.  The project-wide ``metric-docs`` rule covers the
   whole vocabulary; this one keeps the security slice enforced even
   when that broader rule is suppressed or baselined.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Set

from repro.lint.checkers.metricdocs import _code_names, _doc_names
from repro.lint.core import Checker, SourceFile, register

SECURITY_PREFIX = "security/"
ERRORS_MODULE = "security/errors.py"
ROOT_ERROR = "SecurityError"
SEC_METRIC_PREFIX = "sec."


def _typed_error_names(tree: ast.AST) -> Set[str]:
    """The SecurityError subclass closure defined in errors.py."""
    bases: Dict[str, Set[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            bases[node.name] = {b.id for b in node.bases
                                if isinstance(b, ast.Name)}
    typed = {ROOT_ERROR}
    grew = True
    while grew:
        grew = False
        for name, parents in bases.items():
            if name not in typed and parents & typed:
                typed.add(name)
                grew = True
    return typed


@register
class SecurityErrorsChecker(Checker):
    rule = "security-errors"
    scope = "project"
    description = ("src/repro/security/ raises typed SecurityError "
                   "subclasses only, and every sec.* metric it registers "
                   "is documented in docs/METRICS.md")

    def check_project(self, corpus: Dict[str, SourceFile],
                      config) -> Iterable:
        errors_src = next(
            (src for src in corpus.values()
             if src.package_rel == ERRORS_MODULE), None)
        if errors_src is None:
            return
        typed = _typed_error_names(errors_src.tree)

        for src in corpus.values():
            if not src.package_rel.startswith(SECURITY_PREFIX):
                continue
            for node in ast.walk(src.tree):
                if isinstance(node, ast.Raise):
                    yield from self._check_raise(node, src, typed, config)

        yield from self._check_metrics(corpus, config)

    def _check_raise(self, node: ast.Raise, src: SourceFile,
                     typed: Set[str], config) -> Iterable:
        exc = node.exc
        if exc is None:
            return  # bare re-raise propagates the already-typed error
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name) and exc.id not in typed:
            yield self.finding(
                config, src.path, node.lineno, node.col_offset,
                f"raise of {exc.id} inside the security package; raise "
                f"a {ROOT_ERROR} subclass from security/errors.py so "
                f"the guard edges can dispatch on it")

    def _check_metrics(self, corpus: Dict[str, SourceFile],
                       config) -> Iterable:
        doc_path = config.root / config.metrics_doc_rel
        if not doc_path.exists():
            return  # metric-docs already reports the missing file
        trees: Dict[str, ast.AST] = {
            rel: src.tree for rel, src in corpus.items()}
        documented = _doc_names(doc_path.read_text(encoding="utf-8"))
        for name, (rel, line) in sorted(_code_names(trees).items()):
            if name.startswith(SEC_METRIC_PREFIX) and name not in documented:
                yield self.finding(
                    config, config.root / rel, line, 0,
                    f"security metric {name!r} is registered here but "
                    f"has no row in {config.metrics_doc_rel}")
