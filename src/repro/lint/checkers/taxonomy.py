"""error-taxonomy: failures surface as repro-defined typed exceptions.

Three shapes are flagged anywhere in the package: a bare ``except:``,
an over-broad ``except Exception/BaseException``, and a handler whose
body is only ``pass`` (a silent swallow — the failure neither logs via
``repro.obs`` nor propagates).  On the cloud/VDC/portal paths — where
callers dispatch on error type for retry/billing decisions — a fourth
shape is flagged: raising a builtin exception class directly instead of
one of the repo's typed errors (``PortalBusyError``,
``UnknownTenantError``, ...).
"""

from __future__ import annotations

import ast

from repro.lint.core import Checker, register

BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})

#: Builtins that must not be raised directly on the typed-raise paths.
#: NotImplementedError and AssertionError stay legal (abstract hooks,
#: invariant checks).
BUILTIN_RAISES = frozenset({
    "Exception", "BaseException", "RuntimeError", "ValueError",
    "TypeError", "KeyError", "IndexError", "LookupError",
    "ArithmeticError", "OSError", "IOError", "StopIteration",
})


def _exception_names(handler_type):
    if handler_type is None:
        return []
    nodes = (handler_type.elts if isinstance(handler_type, ast.Tuple)
             else [handler_type])
    return [n.id for n in nodes if isinstance(n, ast.Name)]


def _body_is_silent(body) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis):
            continue
        return False
    return True


@register
class ErrorTaxonomyChecker(Checker):
    rule = "error-taxonomy"
    description = ("typed repro exceptions only: no bare/over-broad "
                   "excepts, no silent swallows, no builtin raises on "
                   "cloud/VDC paths")

    def check_file(self, src, config):
        typed_path = any(src.package_rel.startswith(p)
                         for p in config.typed_raise_prefixes)
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(node, src, config)
            elif typed_path and isinstance(node, ast.Raise):
                yield from self._check_raise(node, src, config)

    def _check_handler(self, node, src, config):
        names = _exception_names(node.type)
        if node.type is None:
            yield self.finding(
                config, src.path, node.lineno, node.col_offset,
                "bare 'except:' catches everything including "
                "KeyboardInterrupt; catch the typed repro error this "
                "block can actually recover from")
        else:
            for name in names:
                if name in BROAD_EXCEPTIONS:
                    yield self.finding(
                        config, src.path, node.lineno, node.col_offset,
                        f"over-broad 'except {name}' hides unrelated "
                        f"bugs; catch the typed repro error(s) this "
                        f"block recovers from")
        if _body_is_silent(node.body):
            caught = ", ".join(names) or "everything"
            yield self.finding(
                config, src.path, node.lineno, node.col_offset,
                f"silently swallowed exception ({caught}): log it via "
                f"repro.obs or re-raise a typed repro error")

    def _check_raise(self, node, src, config):
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name) and exc.id in BUILTIN_RAISES:
            yield self.finding(
                config, src.path, node.lineno, node.col_offset,
                f"raise of builtin {exc.id} on a cloud/VDC path; define "
                f"or reuse a typed repro error (subclassing {exc.id} "
                f"keeps existing callers working)")
