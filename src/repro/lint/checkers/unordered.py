"""unordered-iter: never iterate an unordered structure directly.

Set iteration order is an accident of hashing and insertion history —
two runs from the same seed can visit a same-tick event set, a handle
table, or a membership index in different orders, which is exactly the
class of bug the schedule explorer (:mod:`repro.sched`) hunts at the
event level.  Any ``for``/comprehension over a set literal, set
comprehension, ``set()``/``frozenset()`` call, or set-algebra result
must go through ``sorted(...)`` with a stable key first (a plain
``sorted`` wrapper satisfies the rule; picking a *meaningful* key is
code review's job).  See docs/EXPLORATION.md.
"""

from __future__ import annotations

import ast

from repro.lint.core import Checker, register

#: builtin constructors that produce unordered containers.
SET_CONSTRUCTORS = frozenset({"set", "frozenset"})

#: set-algebra methods that produce a new unordered container.
SET_ALGEBRA_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})


def _unordered_reason(node: ast.AST):
    """Why ``node`` evaluates to an unordered container, or None."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in SET_CONSTRUCTORS:
            return f"{func.id}()"
        if isinstance(func, ast.Attribute) \
                and func.attr in SET_ALGEBRA_METHODS:
            return f".{func.attr}()"
    return None


@register
class UnorderedIterChecker(Checker):
    rule = "unordered-iter"
    description = ("no iteration over sets or set-algebra results "
                   "without sorted() and a stable key")

    def check_file(self, src, config):
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters = [node.iter]
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters = [gen.iter for gen in node.generators]
            else:
                continue
            for target in iters:
                reason = _unordered_reason(target)
                if reason is None:
                    continue
                yield self.finding(
                    config, src.path, target.lineno, target.col_offset,
                    f"iterating {reason} visits members in arbitrary "
                    f"hash order, which diverges across runs and "
                    f"same-tick schedules; wrap it in sorted() with a "
                    f"stable key")
