"""flow-typestate: state-machine assignments verified against the
declared transition tables.

The machines (``repro.lint.flow.statetables``) declare, per attribute,
who may write it and which transitions are legal.  For each machine the
checker

* reads the enum members from the module and sanity-checks the table;
* diffs the declared table against the module's runtime-validation dict
  (``runtime_table``) so the two cannot drift apart;
* flags *bypasses*: direct attribute writes outside ``__init__`` and
  the declared setter — in the owner class, and in any other class
  whose field is constructor-typed to the owner;
* checks every setter call site for legality under a flow-sensitive
  guard analysis: ``if self.state is X: ...`` narrows the possible
  source states (early-return negation, ``in``/``not in`` over literal
  tuples and module-level state-set constants included).  Machines with
  ``enforcement="none"`` (the setter assigns blindly) get a
  must-analysis — every possible source must allow the target; machines
  with ``enforcement="runtime"`` (the setter validates) get a
  may-analysis — flagged only when no possible source is legal, i.e.
  the call is statically guaranteed to raise;
* for ``protocol="monotonic-counter"`` machines, verifies the attribute
  is seeded with a literal in ``__init__``, advanced by exactly
  ``+= 1`` in the setter, and written nowhere else.

Soundness caveat (docs/STATIC_ANALYSIS.md): loops widen the possible
set back to all states only when the loop body writes the attribute;
guards the parser cannot read (helper predicates, walrus) leave the
set unnarrowed, which can only add *possible* sources — the
must-analysis stays sound, the may-analysis may miss.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.checkers._astutil import ImportMap
from repro.lint.core import Checker, Severity, register
from repro.lint.flow.statetables import DEFAULT_MACHINES


def _function_nodes(tree: ast.AST) -> Dict[str, ast.FunctionDef]:
    out: Dict[str, ast.FunctionDef] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.FunctionDef):
            out[stmt.name] = stmt
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, ast.FunctionDef):
                    out[f"{stmt.name}.{sub.name}"] = sub
    return out


def _enum_members(tree: ast.AST, enum_name: str) -> Tuple[str, ...]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == enum_name:
            names = []
            for stmt in node.body:
                for target in getattr(stmt, "targets",
                                      [getattr(stmt, "target", None)]):
                    if isinstance(target, ast.Name):
                        names.append(target.id)
            return tuple(names)
    return ()


class _Machine:
    """One machine spec bound to its module's enum members."""

    def __init__(self, spec: dict, members: Tuple[str, ...]):
        self.spec = spec
        self.name = spec["name"]
        self.attr = spec["attr"]
        self.setter = spec.get("setter")
        self.members: Set[str] = set(members)
        self.transitions = {s: set(t) for s, t in
                            spec.get("transitions", {}).items()}
        self.initial = set(spec.get("initial", ()))
        self.restore_from = set(spec.get("restore_from", ()))
        self.must = spec.get("enforcement", "none") == "none"


class _SiteWalker:
    """Flow-sensitive walk of one function: yields every state write
    with the set of statically possible source states at that point."""

    def __init__(self, machine: _Machine, resolver):
        self.machine = machine
        self.resolve_states = resolver  # expr -> Optional[Set[str]]
        #: (kind, node, possible, target) — kind in {assign, call}
        self.sites: List[Tuple[str, ast.AST, Set[str],
                               Optional[str]]] = []

    # -- guards -----------------------------------------------------------
    def _is_state_read(self, expr: ast.AST) -> bool:
        return isinstance(expr, ast.Attribute) \
            and expr.attr == self.machine.attr

    def _true_states(self, test: ast.AST) -> Set[str]:
        members = self.machine.members
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._false_states(test.operand)
        if isinstance(test, ast.BoolOp):
            sets = [self._true_states(v) for v in test.values]
            out = set(members)
            if isinstance(test.op, ast.And):
                for s in sets:
                    out &= s
            else:
                out = set()
                for s in sets:
                    out |= s
            return out
        states = self._compare_states(test)
        return states if states is not None else set(members)

    def _false_states(self, test: ast.AST) -> Set[str]:
        members = self.machine.members
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._true_states(test.operand)
        if isinstance(test, ast.BoolOp):
            sets = [self._false_states(v) for v in test.values]
            if isinstance(test.op, ast.And):
                out = set()
                for s in sets:
                    out |= s
            else:
                out = set(members)
                for s in sets:
                    out &= s
            return out
        states = self._compare_states(test)
        return members - states if states is not None else set(members)

    def _compare_states(self, test: ast.AST) -> Optional[Set[str]]:
        """States for which the comparison is True, or None if it is
        not a readable guard on the machine attribute."""
        if not (isinstance(test, ast.Compare) and len(test.ops) == 1
                and self._is_state_read(test.left)):
            return None
        states = self.resolve_states(test.comparators[0])
        if states is None:
            return None
        op = test.ops[0]
        if isinstance(op, (ast.Is, ast.Eq, ast.In)):
            return states
        if isinstance(op, (ast.IsNot, ast.NotEq, ast.NotIn)):
            return self.machine.members - states
        return None

    # -- statements -------------------------------------------------------
    def walk(self, stmts: Iterable[ast.stmt],
             possible: Set[str]) -> Optional[Set[str]]:
        """Returns the possible set after the block, None if the block
        cannot fall through."""
        for stmt in stmts:
            if isinstance(stmt, (ast.Return, ast.Raise)):
                self._scan_leaf(stmt, possible)
                return None
            if isinstance(stmt, (ast.Break, ast.Continue)):
                return None
            if isinstance(stmt, ast.If):
                true_set = possible & self._true_states(stmt.test)
                false_set = possible & self._false_states(stmt.test)
                after_true = self.walk(stmt.body, true_set)
                after_false = self.walk(stmt.orelse, false_set)
                if after_true is None and after_false is None:
                    return None
                possible = (after_true or set()) | (after_false or set())
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                self.walk(stmt.body, set(possible))
                self.walk(stmt.orelse, set(possible))
                if self._writes_state(stmt.body):
                    possible = set(self.machine.members)
            elif isinstance(stmt, ast.Try):
                after = self.walk(stmt.body, set(possible))
                for handler in stmt.handlers:
                    self.walk(handler.body, set(possible))
                if stmt.orelse and after is not None:
                    after = self.walk(stmt.orelse, after)
                exits = (after or set()) | possible
                after_final = self.walk(stmt.finalbody, exits) \
                    if stmt.finalbody else exits
                possible = after_final if after_final is not None else set()
                if not possible:
                    return None
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                after = self.walk(stmt.body, possible)
                if after is None:
                    return None
                possible = after
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.walk(stmt.body, set(self.machine.members))
            else:
                possible = self._scan_leaf(stmt, possible)
        return possible

    def _writes_state(self, stmts) -> bool:
        for node in ast.walk(ast.Module(body=list(stmts), type_ignores=[])):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                if any(self._is_state_read(t) for t in targets):
                    return True
            elif isinstance(node, ast.Call) and self._is_setter(node):
                return True
        return False

    def _is_setter(self, call: ast.Call) -> bool:
        return self.machine.setter is not None \
            and isinstance(call.func, ast.Attribute) \
            and call.func.attr == self.machine.setter

    def _scan_leaf(self, stmt: ast.stmt, possible: Set[str]) -> Set[str]:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if self._is_state_read(target):
                        states = self.resolve_states(node.value)
                        target_state = None
                        if states is not None and len(states) == 1:
                            target_state = next(iter(states))
                        self.sites.append(("assign", node, set(possible),
                                           target_state))
                        possible = (set(states) if states is not None
                                    else set(self.machine.members))
            elif isinstance(node, ast.AugAssign) \
                    and self._is_state_read(node.target):
                self.sites.append(("assign", node, set(possible), None))
                possible = set(self.machine.members)
            elif isinstance(node, ast.Call) and self._is_setter(node):
                target_state = None
                if node.args:
                    states = self.resolve_states(node.args[0])
                    if states is not None and len(states) == 1:
                        target_state = next(iter(states))
                self.sites.append(("call", node, set(possible),
                                   target_state))
                possible = ({target_state} if target_state is not None
                            else set(self.machine.members))
        return possible


@register
class FlowTypestateChecker(Checker):
    rule = "flow-typestate"
    scope = "project"
    description = ("state-machine writes and transitions are legal "
                   "under the declared tables (VFC, migration, rekey "
                   "epoch; interprocedural)")

    def check_project(self, corpus, config):
        # Lazy: repro.lint.flow.summary imports per-file checker
        # constants, so a module-level import would be circular.
        from repro.lint.flow.graph import project_graph
        graph = project_graph(corpus, config)
        specs = config.typestate_machines or DEFAULT_MACHINES
        for spec in specs:
            rel = graph.rel_of_package_rel.get(spec["module"])
            if rel is None:
                yield self.finding(
                    config, config.package_dir / spec["module"], 1, 0,
                    f"flow-typestate machine {spec['name']!r} skipped: "
                    f"module not in the corpus",
                    severity=Severity.WARNING,
                    identity=f"typestate-skip:{spec['name']}")
                continue
            if spec.get("protocol") == "monotonic-counter":
                yield from self._check_monotonic(spec, rel, corpus,
                                                 config, graph)
            else:
                yield from self._check_enum_machine(spec, rel, corpus,
                                                    config, graph)

    # -- shared helpers ---------------------------------------------------
    def _owner_node(self, tree: ast.AST,
                    owner: str) -> Optional[ast.ClassDef]:
        for node in tree.body:
            if isinstance(node, ast.ClassDef) and node.name == owner:
                return node
        return None

    def _foreign_typed_writes(self, spec: dict, owner_cid: str, corpus,
                              graph):
        """Writes to ``self.<field>.<attr>`` where ``field`` is
        constructor-typed to the owner class — bypasses from outside."""
        attr = spec["attr"]
        for rel in sorted(corpus):
            for cls_node in corpus[rel].tree.body:
                if not isinstance(cls_node, ast.ClassDef):
                    continue
                attr_types = graph.classes.get(
                    f"{rel}::{cls_node.name}", {}).get("attr_types", {})
                if not attr_types:
                    continue
                for node in ast.walk(cls_node):
                    if not isinstance(node, (ast.Assign, ast.AugAssign)):
                        continue
                    targets = (node.targets if isinstance(node, ast.Assign)
                               else [node.target])
                    for target in targets:
                        if not (isinstance(target, ast.Attribute)
                                and target.attr == attr
                                and isinstance(target.value, ast.Attribute)
                                and isinstance(target.value.value, ast.Name)
                                and target.value.value.id == "self"):
                            continue
                        ctor = attr_types.get(target.value.attr)
                        if ctor is None or graph.resolve_class_chain(
                                rel, ctor) != owner_cid:
                            continue
                        yield rel, cls_node.name, node

    # -- monotonic counters -----------------------------------------------
    def _check_monotonic(self, spec, rel, corpus, config, graph):
        src = corpus[rel]
        attr, setter = spec["attr"], spec["setter"]
        owner = self._owner_node(src.tree, spec["owner"])
        if owner is None:
            return
        for method in owner.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            for node in ast.walk(method):
                ok = None
                if isinstance(node, ast.Assign) and any(
                        isinstance(t, ast.Attribute) and t.attr == attr
                        and isinstance(t.value, ast.Name)
                        and t.value.id == "self" for t in node.targets):
                    ok = (method.name == "__init__"
                          and isinstance(node.value, ast.Constant)
                          and isinstance(node.value.value, int))
                elif isinstance(node, ast.AugAssign) and isinstance(
                        node.target, ast.Attribute) \
                        and node.target.attr == attr \
                        and isinstance(node.target.value, ast.Name) \
                        and node.target.value.id == "self":
                    ok = (method.name == setter
                          and isinstance(node.op, ast.Add)
                          and isinstance(node.value, ast.Constant)
                          and node.value.value == 1)
                if ok is False:
                    yield self.finding(
                        config, src.path, node.lineno, node.col_offset,
                        f"{spec['owner']}.{method.name} writes "
                        f"{attr!r} outside the monotonic-counter "
                        f"protocol (literal seed in __init__, += 1 in "
                        f"{setter}): a jump or reset resurrects "
                        f"replayed frames",
                        identity=(f"typestate-bypass:{spec['name']}:"
                                  f"{method.name}"))
        owner_cid = f"{rel}::{spec['owner']}"
        for frel, cls_name, node in self._foreign_typed_writes(
                spec, owner_cid, corpus, graph):
            yield self.finding(
                config, corpus[frel].path, node.lineno, node.col_offset,
                f"{cls_name} writes {spec['owner']}.{attr} directly: "
                f"only {spec['owner']}.{setter} may advance it",
                identity=f"typestate-bypass:{spec['name']}:{cls_name}")

    # -- enum machines ----------------------------------------------------
    def _check_enum_machine(self, spec, rel, corpus, config, graph):
        src = corpus[rel]
        members = _enum_members(src.tree, spec["enum"])
        if not members:
            yield self.finding(
                config, src.path, 1, 0,
                f"flow-typestate machine {spec['name']!r} skipped: enum "
                f"{spec['enum']} not found or empty",
                severity=Severity.WARNING,
                identity=f"typestate-skip:{spec['name']}")
            return
        machine = _Machine(spec, members)

        declared = set(machine.transitions) | machine.initial \
            | machine.restore_from
        for targets in machine.transitions.values():
            declared |= targets
        for unknown in sorted(declared - machine.members):
            yield self.finding(
                config, src.path, 1, 0,
                f"declared table for machine {spec['name']!r} references "
                f"unknown state {unknown!r} (not a {spec['enum']} member)",
                severity=Severity.WARNING,
                identity=f"typestate-table:{spec['name']}:{unknown}")

        if spec.get("runtime_table"):
            yield from self._diff_runtime_table(spec, machine, src, config,
                                                graph)

        owner = self._owner_node(src.tree, spec["owner"])
        owner_cid = f"{rel}::{spec['owner']}"
        if owner is not None:
            yield from self._check_dataclass_default(spec, machine, owner,
                                                     src, config, graph)
            for method in owner.body:
                if isinstance(method, ast.FunctionDef):
                    yield from self._check_function(
                        spec, machine, method,
                        f"{spec['owner']}.{method.name}", src, config,
                        graph, in_owner=True)

        # Setter call sites outside the owner class, preselected via the
        # summaries (any call chain ending in ".<setter>").
        suffix = f".{spec['setter']}"
        for fid in sorted(graph.functions):
            fn = graph.functions[fid]
            frel, qualname = fid.split("::", 1)
            if frel == rel and fn["class"] == spec["owner"]:
                continue
            if not any(chain is not None and chain.endswith(suffix)
                       for chain, _l, _c in fn["calls"]):
                continue
            node = _function_nodes(corpus[frel].tree).get(qualname)
            if node is not None:
                yield from self._check_function(
                    spec, machine, node, qualname, corpus[frel], config,
                    graph, in_owner=False)

        for frel, cls_name, node in self._foreign_typed_writes(
                spec, owner_cid, corpus, graph):
            yield self.finding(
                config, corpus[frel].path, node.lineno, node.col_offset,
                f"{cls_name} writes {spec['owner']}.{spec['attr']} "
                f"directly, bypassing {spec['setter']}",
                identity=f"typestate-bypass:{spec['name']}:{cls_name}")

    def _diff_runtime_table(self, spec, machine, src, config, graph):
        """The declared table and the module's runtime-validation dict
        must agree edge for edge."""
        resolve = self._state_resolver(spec, machine, src, graph)
        table_node = None
        for stmt in src.tree.body:
            if isinstance(stmt, ast.Assign) and any(
                    isinstance(t, ast.Name)
                    and t.id == spec["runtime_table"]
                    for t in stmt.targets):
                table_node = stmt
                break
        if table_node is None or not isinstance(table_node.value, ast.Dict):
            yield self.finding(
                config, src.path, 1, 0,
                f"runtime table {spec['runtime_table']} for machine "
                f"{spec['name']!r} not found as a module-level dict",
                severity=Severity.WARNING,
                identity=f"typestate-table:{spec['name']}:missing")
            return
        runtime: Dict[str, Set[str]] = {}
        for key, value in zip(table_node.value.keys,
                              table_node.value.values):
            sources = resolve(key) if key is not None else None
            targets = resolve(value) if not (
                isinstance(value, (ast.Tuple, ast.List, ast.Set))
                and not value.elts) else set()
            if sources is None or len(sources) != 1 or targets is None:
                continue  # unreadable entry: leave it to runtime tests
            runtime[next(iter(sources))] = targets
        for source in sorted(set(machine.transitions) | set(runtime)):
            declared = machine.transitions.get(source)
            enforced = runtime.get(source)
            if declared == enforced:
                continue
            yield self.finding(
                config, src.path, table_node.lineno,
                table_node.col_offset,
                f"machine {spec['name']!r} drifted for source state "
                f"{source}: declared table allows "
                f"{{{', '.join(sorted(declared or ()))}}} but "
                f"{spec['runtime_table']} enforces "
                f"{{{', '.join(sorted(enforced or ()))}}}",
                identity=f"typestate-table:{spec['name']}:{source}")

    def _state_resolver(self, spec, machine, src, graph):
        const_seqs = graph.summaries[src.rel]["const_seqs"]
        enum_name = spec["enum"]

        def one(ref: Optional[str]) -> Optional[str]:
            if ref is None:
                return None
            parts = ref.split(".")
            if len(parts) >= 2 and parts[-2] == enum_name \
                    and parts[-1] in machine.members:
                return parts[-1]
            return None

        imap = ImportMap(src.tree)

        def resolve(expr: ast.AST) -> Optional[Set[str]]:
            if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
                out = set()
                for elt in expr.elts:
                    member = one(imap.resolve(elt))
                    if member is None:
                        return None
                    out.add(member)
                return out
            if isinstance(expr, ast.Name) and expr.id in const_seqs:
                out = set()
                for ref in const_seqs[expr.id]:
                    member = one(ref)
                    if member is None:
                        return None
                    out.add(member)
                return out
            member = one(imap.resolve(expr))
            return {member} if member is not None else None

        return resolve

    def _check_dataclass_default(self, spec, machine, owner, src, config,
                                 graph):
        resolve = self._state_resolver(spec, machine, src, graph)
        for stmt in owner.body:
            if isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name) \
                    and stmt.target.id == spec["attr"] \
                    and stmt.value is not None:
                states = resolve(stmt.value)
                if states is not None and not states <= machine.initial:
                    bad = ", ".join(sorted(states - machine.initial))
                    yield self.finding(
                        config, src.path, stmt.lineno, stmt.col_offset,
                        f"{spec['owner']}.{spec['attr']} default is {bad} "
                        f"but the machine starts in "
                        f"{'/'.join(sorted(machine.initial))}",
                        identity=f"typestate-initial:{spec['name']}")

    def _check_function(self, spec, machine, node, qualname, src, config,
                        graph, in_owner: bool):
        resolve = self._state_resolver(spec, machine, src, graph)
        walker = _SiteWalker(machine, resolve)
        walker.walk(node.body, set(machine.members))
        is_init = in_owner and node.name == "__init__"
        is_setter = in_owner and node.name == spec["setter"]
        for kind, site, possible, target in walker.sites:
            if kind == "assign":
                if is_setter:
                    continue  # the setter's own write is the mechanism
                if is_init:
                    if target is not None \
                            and target not in machine.initial:
                        yield self.finding(
                            config, src.path, site.lineno,
                            site.col_offset,
                            f"__init__ seeds {spec['attr']} with "
                            f"{target}; the machine starts in "
                            f"{'/'.join(sorted(machine.initial))}",
                            identity=f"typestate-initial:{spec['name']}")
                    continue
                yield self.finding(
                    config, src.path, site.lineno, site.col_offset,
                    f"{qualname} assigns {spec['attr']!r} directly, "
                    f"bypassing {spec['setter']}: transitions must go "
                    f"through the setter so the table can be enforced",
                    identity=f"typestate-bypass:{spec['name']}:{qualname}")
                continue
            # setter call site
            if not possible:
                continue  # statically unreachable
            if target is None:
                if machine.must:
                    illegal = possible - machine.restore_from
                    if illegal:
                        yield self.finding(
                            config, src.path, site.lineno,
                            site.col_offset,
                            f"{qualname} calls {spec['setter']} with a "
                            f"statically unresolvable target while the "
                            f"state may be "
                            f"{'/'.join(sorted(illegal))}; "
                            f"restore-style transitions are only legal "
                            f"from "
                            f"{'/'.join(sorted(machine.restore_from))}",
                            identity=(f"typestate:{spec['name']}:"
                                      f"{qualname}:restore"))
                continue
            if machine.must:
                illegal = {s for s in possible
                           if target not in machine.transitions.get(
                               s, ())}
                if illegal:
                    yield self.finding(
                        config, src.path, site.lineno, site.col_offset,
                        f"{qualname} may transition "
                        f"{'/'.join(sorted(illegal))} -> {target}, "
                        f"which the {spec['name']} table forbids; guard "
                        f"the call so every possible source state "
                        f"allows it",
                        identity=(f"typestate:{spec['name']}:"
                                  f"{qualname}:{target}"))
            else:
                legal = {s for s in possible
                         if target in machine.transitions.get(s, ())}
                if not legal:
                    yield self.finding(
                        config, src.path, site.lineno, site.col_offset,
                        f"{qualname} transitions to {target} from "
                        f"{'/'.join(sorted(possible))}: no possible "
                        f"source state allows it, so the runtime check "
                        f"is guaranteed to raise",
                        identity=(f"typestate:{spec['name']}:"
                                  f"{qualname}:{target}"))
