"""metric-docs: the code and docs/METRICS.md agree on the vocabulary.

Every dotted metric/span/event name registered through the ``repro.obs``
helpers (``counter``/``gauge``/``histogram``/``span``/``event``) must
have a row in docs/METRICS.md, and every name the doc tables list must
still exist in code — the reference stays trustworthy in both
directions.  Benchmarks register ``fig10.*``/``scale.*`` series, so the
scan covers the configured extra trees as well as the package.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, List, Tuple

from repro.lint.core import Checker, Severity, register

OBS_HELPERS = frozenset({"counter", "gauge", "histogram", "span", "event"})

#: Backticked dotted identifiers (``vdc.tenant``); label values and
#: prose words never contain a dot, so this stays precise.
_DOC_NAME = re.compile(r"`([a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+)`")


def _code_names(trees: Dict[str, ast.AST]) -> Dict[str, Tuple[str, int]]:
    """metric name -> first (path, line) registering it."""
    names: Dict[str, Tuple[str, int]] = {}
    for rel in sorted(trees):
        for node in ast.walk(trees[rel]):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            attr = (func.attr if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else None)
            first = node.args[0]
            if attr in OBS_HELPERS and isinstance(first, ast.Constant) \
                    and isinstance(first.value, str) and "." in first.value:
                names.setdefault(first.value, (rel, node.lineno))
    return names


def _doc_names(text: str) -> Dict[str, int]:
    """metric name -> line, from the first cell of each table row."""
    names: Dict[str, int] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped.startswith("|"):
            continue
        first_cell = stripped.split("|")[1]
        for name in _DOC_NAME.findall(first_cell):
            names.setdefault(name, lineno)
    return names


@register
class MetricDocsChecker(Checker):
    rule = "metric-docs"
    scope = "project"
    description = ("registered metric/span/event names and the "
                   "docs/METRICS.md tables must match, both directions")

    def check_project(self, corpus, config):
        doc_path = config.root / config.metrics_doc_rel
        if not doc_path.exists():
            yield self.finding(config, doc_path, 1, 0,
                               "metric-docs skipped: file not found",
                               severity=Severity.WARNING)
            return

        trees: Dict[str, ast.AST] = {
            rel: src.tree for rel, src in corpus.items()}
        for extra in config.metrics_extra_rels:
            base = config.root / extra
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*.py")):
                if any(part in config.skip_dirs for part in path.parts):
                    continue
                try:
                    trees[config.rel(path)] = ast.parse(
                        path.read_text(encoding="utf-8"))
                except SyntaxError:
                    continue  # the parse-error finding covers package files

        code = _code_names(trees)
        docs = _doc_names(doc_path.read_text(encoding="utf-8"))

        for name in sorted(set(code) - set(docs)):
            rel, line = code[name]
            yield self.finding(
                config, config.root / rel, line, 0,
                f"metric {name!r} is registered here but has no row in "
                f"{config.metrics_doc_rel}; document it (name, kind, "
                f"unit, labels, paper anchor)")
        for name in sorted(set(docs) - set(code)):
            yield self.finding(
                config, doc_path, docs[name], 0,
                f"metric {name!r} is documented but never registered in "
                f"code; delete the row or restore the instrumentation")
