"""seeded-rng: every random draw comes from a named, seeded stream.

The module-level ``random.*`` functions share one process-global
generator, so any new call site perturbs every stream after it and
breaks replay from the root seed; an unseeded ``random.Random()`` (or
``SystemRandom``) is nondeterministic by construction.  Components draw
from :class:`repro.sim.rng.RngRegistry` streams instead.
"""

from __future__ import annotations

from repro.lint.checkers._astutil import ImportMap, iter_calls
from repro.lint.core import Checker, register

#: ``random`` module-level functions backed by the shared global RNG.
GLOBAL_RNG_FUNCS = frozenset({
    "seed", "random", "uniform", "randint", "randrange", "choice",
    "choices", "shuffle", "sample", "gauss", "normalvariate",
    "expovariate", "betavariate", "triangular", "vonmisesvariate",
    "paretovariate", "weibullvariate", "lognormvariate", "getrandbits",
    "randbytes",
})


@register
class SeededRngChecker(Checker):
    rule = "seeded-rng"
    description = ("no process-global or unseeded RNG; draw from a "
                   "named RngRegistry stream")

    def check_file(self, src, config):
        if src.package_rel in config.rng_allow:
            return
        imap = ImportMap(src.tree)
        for call in iter_calls(src.tree):
            name = imap.resolve(call.func)
            if name is None or not name.startswith("random."):
                continue
            suffix = name[len("random."):]
            if suffix in GLOBAL_RNG_FUNCS:
                yield self.finding(
                    config, src.path, call.lineno, call.col_offset,
                    f"{name}() draws from the process-global RNG and "
                    f"breaks replay from the root seed; use a named "
                    f"repro.sim.rng.RngRegistry stream")
            elif suffix == "Random" and not call.args and not call.keywords:
                yield self.finding(
                    config, src.path, call.lineno, call.col_offset,
                    "unseeded random.Random() is nondeterministic; pass "
                    "a seed derived from the run's root seed "
                    "(repro.sim.rng.RngRegistry)")
            elif suffix == "SystemRandom":
                yield self.finding(
                    config, src.path, call.lineno, call.col_offset,
                    "random.SystemRandom is entropy-backed and can never "
                    "replay; use a seeded RngRegistry stream")
