"""fork-safety: no mutable process-global or class-level shared state.

The sharded :class:`~repro.loadgen.executor.ParallelFleetExecutor`
proves serial == sharded behavior; that proof only holds when no state
leaks across drones through module or class scope.  Class-attribute id
counters (``_next_order_id = 0`` bumped via the class) were exactly the
bug class PRs 2 and 4 fixed by hand — ids allocated in one shard do not
advance the counter in another, so merged runs diverge from serial
ones.  ALL_CAPS names are exempt by convention: they are read-only
tables, not state.
"""

from __future__ import annotations

import ast
import re

from repro.lint.checkers._astutil import (
    ImportMap,
    assign_names,
    is_constant_name,
)
from repro.lint.core import Checker, register

#: Constructors whose result is shared mutable state when bound at
#: module or class level.
MUTABLE_CONSTRUCTORS = frozenset({
    "dict", "list", "set", "bytearray",
    "collections.defaultdict", "collections.OrderedDict",
    "collections.Counter", "collections.deque",
    "itertools.count",
})

#: Names that smell like a sequence/id allocator when bound to an int at
#: class level ("count" alone is too common to flag).
_COUNTER_NAME = re.compile(
    r"(^|_)next(_|$)|(^|_)seq(_|$)|(^|_)serial(_|$)|counter")


def _is_dataclass(node: ast.ClassDef, imap: ImportMap) -> bool:
    """Dataclass bodies declare per-instance field defaults, not shared
    class state (and dataclasses reject mutable defaults themselves)."""
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = imap.resolve(target)
        if name in ("dataclasses.dataclass", "dataclass"):
            return True
    return False


def _is_mutable_value(value: ast.AST, imap: ImportMap) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set,
                          ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        name = imap.resolve(value.func)
        return name in MUTABLE_CONSTRUCTORS
    return False


@register
class ForkSafetyChecker(Checker):
    rule = "fork-safety"
    description = ("no mutable module globals or class-level counters — "
                   "they break serial == sharded equivalence")

    def check_file(self, src, config):
        imap = ImportMap(src.tree)
        for stmt in src.tree.body:
            yield from self._check_scope(
                stmt, imap, src, config, scope="module")
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ClassDef) \
                    and not _is_dataclass(node, imap):
                for stmt in node.body:
                    yield from self._check_scope(
                        stmt, imap, src, config, scope=f"class {node.name}")

    def _check_scope(self, stmt, imap, src, config, scope):
        names = [n for n in assign_names(stmt) if not is_constant_name(n)]
        if not names:
            return
        value = getattr(stmt, "value", None)
        if value is None:
            return  # bare annotation, no state created
        label = ", ".join(names)
        if _is_mutable_value(value, imap):
            yield self.finding(
                config, src.path, stmt.lineno, stmt.col_offset,
                f"mutable {scope}-level state {label!r} is shared across "
                f"instances and never survives a shard boundary; scope it "
                f"to the instance (or rename ALL_CAPS if it is a "
                f"read-only table)")
        elif (scope != "module"
              and isinstance(value, ast.Constant)
              and isinstance(value.value, int)
              and not isinstance(value.value, bool)
              and any(_COUNTER_NAME.search(n) for n in names)):
            yield self.finding(
                config, src.path, stmt.lineno, stmt.col_offset,
                f"{scope} attribute {label!r} looks like a shared id "
                f"counter; allocate ids per instance so parallel shards "
                f"stay equivalent to the serial run (the PR 2/PR 4 bug "
                f"class)")
