"""flow-exceptions: exception flow from the cloud/VDC/security surface.

The per-file ``error-taxonomy`` rule keeps ``cloud/``/``vdc/`` raising
typed errors; a caller three modules up still sees a bare
``RuntimeError`` if a helper in ``android/`` or ``devices/`` raises
one.  Starting from every public function under ``flow_entry_prefixes``
this checker walks the call graph and flags

* reachable raises of blanket builtins (``Exception``, ``RuntimeError``,
  ``OSError``, ...) outside the modules the per-file rule already
  polices — these cross the API surface untyped, so callers cannot
  distinguish "order infeasible" from "simulation bug";
* any handler (anywhere — a swallow does not need to be reachable to be
  wrong) that catches ``SecurityError`` or a subclass and neither
  re-raises nor calls anything: a dropped security signal never reaches
  the pressure detector.

Intentional drops must carry an inline
``# repro-lint: disable=flow-exceptions`` with a comment saying where
the signal goes instead.
"""

from __future__ import annotations

from repro.lint.core import Checker, register

#: Builtins whose raise, reachable from the public surface, is blanket
#: enough to ban.  Precise builtins (ValueError/KeyError/TypeError on
#: argument validation) stay legal outside the typed-raise prefixes.
_BANNED_BUILTINS = frozenset({
    "Exception", "BaseException", "RuntimeError", "OSError", "IOError",
})


@register
class FlowExceptionsChecker(Checker):
    rule = "flow-exceptions"
    scope = "project"
    description = ("raises reachable from cloud/VDC/security entry "
                   "points resolve to the typed taxonomy, and no "
                   "handler swallows a SecurityError (interprocedural)")

    def check_project(self, corpus, config):
        # Lazy: repro.lint.flow.summary imports per-file checker
        # constants, so a module-level import would be circular.
        from repro.lint.flow.graph import project_graph
        graph = project_graph(corpus, config)
        entries = [
            fid for fid in sorted(graph.functions)
            if graph.functions[fid]["public"]
            and graph.functions[fid]["package_rel"].startswith(
                tuple(config.flow_entry_prefixes))
        ]
        reached = graph.reachable_from(entries)
        typed_prefixes = tuple(config.typed_raise_prefixes) + ("security/",)
        for fid in sorted(reached):
            fn = graph.functions[fid]
            if fn["package_rel"].startswith(typed_prefixes):
                continue  # the per-file taxonomy rule polices these
            for chain, line, col in fn["raises"]:
                if chain not in _BANNED_BUILTINS:
                    continue
                entry = graph.fid_label(reached[fid])
                yield self.finding(
                    config, config.package_dir / fn["package_rel"],
                    line, col,
                    f"{fn['qualname']} raises bare {chain} and is "
                    f"reachable from entry point {entry}: raise a typed "
                    f"error (core/errors.py taxonomy) so API callers can "
                    f"tell faults from bugs",
                    identity=f"raise:{graph.fid_label(fid)}:{chain}")

        root_pkg_rel, root_class = config.flow_security_root.split("::", 1)
        root_rel = graph.rel_of_package_rel.get(root_pkg_rel)
        if root_rel is None:
            return
        root_cid = f"{root_rel}::{root_class}"
        for fid in sorted(graph.functions):
            fn = graph.functions[fid]
            for names, line, col, has_raise, has_call in fn["handlers"]:
                if has_raise or has_call:
                    continue
                for name in names:
                    cid = graph.resolve_class_chain(fn["rel"], name)
                    if cid is None or not graph.is_project_subclass(
                            cid, root_cid):
                        continue
                    yield self.finding(
                        config, config.package_dir / fn["package_rel"],
                        line, col,
                        f"handler in {fn['qualname']} swallows "
                        f"{name.rsplit('.', 1)[-1]} (no re-raise, no "
                        f"call): security signals must reach the "
                        f"pressure detector or be re-raised",
                        identity=(f"swallow:{graph.fid_label(fid)}:"
                                  f"{name.rsplit('.', 1)[-1]}"))
