"""The ``python -m repro.lint`` command line.

Exit codes: 0 = clean (baselined/suppressed findings do not fail), 1 =
fresh error-severity findings (or any finding under ``--strict``), 2 =
usage or configuration problem.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import BaselineError, load_baseline, write_baseline
from repro.lint.config import default_config
from repro.lint.core import Severity, all_checkers, run_lint
from repro.lint.report import render_json, render_text
from repro.lint.sarif import render_sarif

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _split_rules(values: List[str]) -> List[str]:
    rules: List[str] = []
    for value in values:
        rules.extend(r.strip() for r in value.split(",") if r.strip())
    return rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Domain-aware static analysis for the AnDrone "
                    "reproduction (rule catalog in docs/STATIC_ANALYSIS.md).")
    parser.add_argument(
        "paths", nargs="*",
        help="optional root-relative path prefixes to restrict the report "
             "to (default: everything)")
    parser.add_argument(
        "--root", type=Path, default=None,
        help="repository root (default: auto-detected from the package)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format on stdout (default: text)")
    parser.add_argument(
        "--output", type=Path, default=None,
        help="also write a JSON report to this file (for CI artifacts)")
    parser.add_argument(
        "--sarif", type=Path, default=None,
        help="also write a SARIF 2.1.0 report to this file (GitHub code "
             "scanning)")
    parser.add_argument(
        "--diff", metavar="BASE", default=None,
        help="report only findings in files changed since the git ref "
             "BASE (untracked files included); the analysis itself stays "
             "whole-program, so cross-file findings in changed files are "
             "still caught")
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline file (default: <root>/lint-baseline.json)")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="freeze the current findings as the new baseline and exit 0")
    parser.add_argument(
        "--select", action="append", default=[], metavar="RULES",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--disable", action="append", default=[], metavar="RULES",
        help="comma-separated rule ids to skip")
    parser.add_argument(
        "--strict", action="store_true",
        help="warnings also fail the run")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit")
    return parser


class DiffError(RuntimeError):
    """git could not produce the changed-file list for ``--diff``."""


def changed_paths(root: Path, base: str) -> List[str]:
    """Root-relative files changed since ``base`` plus untracked files —
    the report filter for ``--diff`` (the analysis stays whole-program)."""
    commands = (
        ["git", "diff", "--name-only", "-z", base, "--"],
        ["git", "ls-files", "--others", "--exclude-standard", "-z"],
    )
    out = set()
    for command in commands:
        proc = subprocess.run(command, cwd=root, capture_output=True,
                              text=True)
        if proc.returncode != 0:
            raise DiffError(
                f"{' '.join(command)}: {proc.stderr.strip() or 'failed'}")
        out.update(p for p in proc.stdout.split("\0") if p)
    return sorted(out)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule, chk in sorted(all_checkers().items()):
            print(f"{rule:16s} {chk.severity.value:7s} {chk.scope:7s} "
                  f"{chk.description}")
        return EXIT_CLEAN

    config = default_config(args.root)
    if not config.package_dir.is_dir():
        print(f"repro.lint: package directory not found: "
              f"{config.package_dir}", file=sys.stderr)
        return EXIT_USAGE

    select = _split_rules(args.select)
    disable = _split_rules(args.disable)
    known = set(all_checkers())
    unknown = [r for r in select + disable if r not in known]
    if unknown:
        print(f"repro.lint: unknown rule(s): {', '.join(unknown)} "
              f"(see --list-rules)", file=sys.stderr)
        return EXIT_USAGE

    baseline_path = args.baseline or config.baseline_path
    try:
        baseline = load_baseline(baseline_path)
    except BaselineError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return EXIT_USAGE

    paths = list(args.paths)
    if args.diff is not None:
        try:
            changed = changed_paths(config.root, args.diff)
        except DiffError as exc:
            print(f"repro.lint: --diff: {exc}", file=sys.stderr)
            return EXIT_USAGE
        if paths:
            prefixes = tuple(p.rstrip("/") for p in paths)
            changed = [c for c in changed
                       if any(c == p or c.startswith(p + "/")
                              for p in prefixes)]
        # An empty changed set must report nothing; run_lint treats an
        # empty paths list as "no filter", so pass an unmatchable one.
        paths = changed or ["\0no-changed-files"]

    result = run_lint(config, select=select or None,
                      disable=disable or None, baseline=baseline,
                      paths=paths or None)

    if args.write_baseline:
        count = write_baseline(baseline_path,
                               result.findings + result.baselined)
        print(f"repro.lint: wrote {count} baseline entr"
              f"{'y' if count == 1 else 'ies'} to {baseline_path}")
        return EXIT_CLEAN

    if args.output is not None:
        args.output.write_text(render_json(result), encoding="utf-8")
    if args.sarif is not None:
        args.sarif.write_text(render_sarif(result, all_checkers()),
                              encoding="utf-8")
    if args.format == "json" and args.output is None:
        print(render_json(result), end="")
    else:
        print(render_text(result))

    failing = result.errors + (result.warnings if args.strict else 0)
    return EXIT_FINDINGS if failing else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
