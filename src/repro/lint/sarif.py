"""SARIF 2.1.0 reporter, the interchange format GitHub code scanning
ingests.

One run per document; every registered rule that ran appears in the
tool's rule catalog (so code scanning can show descriptions even for
clean rules), each fresh finding becomes a ``result`` with a physical
location, and the finding's baseline identity doubles as the SARIF
``partialFingerprints`` entry — the same stability contract in both
systems.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.lint.core import Checker, LintResult, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def render_sarif(result: LintResult,
                 checkers: Dict[str, Checker]) -> str:
    rules = []
    for rule in result.rules_run:
        chk = checkers.get(rule)
        rules.append({
            "id": rule,
            "shortDescription": {
                "text": chk.description if chk else rule},
            "defaultConfiguration": {
                "level": _LEVELS[chk.severity] if chk else "error"},
        })
    rule_index = {rule: i for i, rule in enumerate(result.rules_run)}

    results = []
    for finding in result.findings:
        entry = {
            "ruleId": finding.rule,
            "level": _LEVELS[finding.severity],
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                },
            }],
            "partialFingerprints": {
                "reproLintIdentity/v1":
                    finding.identity or finding.message,
            },
        }
        if finding.rule in rule_index:
            entry["ruleIndex"] = rule_index[finding.rule]
        results.append(entry)

    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "repro.lint",
                "rules": rules,
            }},
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
