"""Reporters: the one-line-per-finding text format and the JSON document
CI uploads as an artifact."""

from __future__ import annotations

import json

from repro.lint.core import LintResult


def render_text(result: LintResult, verbose_clean: bool = True) -> str:
    """``path:line:col: rule severity: message`` lines plus a summary."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} {f.severity.value}: {f.message}"
        for f in result.findings
    ]
    summary = (
        f"repro.lint: {len(result.findings)} finding"
        f"{'s' if len(result.findings) != 1 else ''} "
        f"({result.errors} errors, {result.warnings} warnings), "
        f"{len(result.baselined)} baselined, "
        f"{result.suppressed} suppressed, "
        f"{result.files_scanned} files scanned, "
        f"{len(result.rules_run)} rules")
    if not result.findings and verbose_clean:
        summary = summary.replace("repro.lint: 0 findings",
                                  "repro.lint: clean — 0 findings")
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    per_rule: dict = {}
    for f in result.findings:
        per_rule[f.rule] = per_rule.get(f.rule, 0) + 1
    payload = {
        "tool": "repro.lint",
        "version": 1,
        "files_scanned": result.files_scanned,
        "rules_run": list(result.rules_run),
        "summary": {
            "findings": len(result.findings),
            "errors": result.errors,
            "warnings": result.warnings,
            "baselined": len(result.baselined),
            "suppressed": result.suppressed,
            "by_rule": per_rule,
        },
        "findings": [f.to_dict() for f in result.findings],
        "baselined": [f.to_dict() for f in result.baselined],
    }
    return json.dumps(payload, indent=2) + "\n"
