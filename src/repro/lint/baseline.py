"""Baseline files: grandfathered findings that do not fail the build.

A baseline entry is a finding fingerprint — (rule, path, message), no
line number — so entries survive unrelated edits to the file.  The
workflow (documented in docs/STATIC_ANALYSIS.md): introduce a checker,
``--write-baseline`` to freeze the existing debt, burn entries down in
later PRs.  The checked-in baseline for this repository is empty: every
rule lands with a clean tree.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Set, Tuple

from repro.lint.core import Finding

Fingerprint = Tuple[str, str, str]

_VERSION = 1


class BaselineError(ValueError):
    """The baseline file exists but cannot be used."""


def load_baseline(path: Path) -> Set[Fingerprint]:
    """Fingerprints from ``path``; a missing file is an empty baseline."""
    if not path.exists():
        return set()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise BaselineError(f"{path}: expected a version-{_VERSION} baseline")
    out: Set[Fingerprint] = set()
    for entry in payload.get("findings", ()):
        try:
            out.add((entry["rule"], entry["path"], entry["message"]))
        except (TypeError, KeyError) as exc:
            raise BaselineError(f"{path}: malformed entry {entry!r}") from exc
    return out


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Freeze ``findings`` (plus any already-baselined ones the caller
    includes) as the new baseline; returns the entry count."""
    entries = sorted(
        {f.fingerprint() for f in findings})
    payload = {
        "version": _VERSION,
        "comment": ("Grandfathered repro.lint findings; burn down, don't "
                    "add.  Regenerate with python -m repro.lint "
                    "--write-baseline."),
        "findings": [
            {"rule": rule, "path": rel, "message": message}
            for rule, rel, message in entries
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)
