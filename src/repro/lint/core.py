"""The lint engine: findings, the checker registry, suppressions, and
the orchestration that runs every registered checker over a tree.

Checkers come in two scopes.  A ``file`` checker sees one parsed module
at a time; a ``project`` checker runs once per lint with access to the
whole corpus plus the config, for cross-file invariants (whitelist
coverage, metric/doc drift).  Both yield :class:`Finding` objects; the
engine applies inline suppressions and the baseline afterwards, so
checkers stay oblivious to both mechanisms.
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.lint.config import LintConfig


class Severity(enum.Enum):
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule: str
    severity: Severity
    path: str  # root-relative, POSIX
    line: int
    col: int
    message: str
    #: Optional stable identity overriding ``message`` in the baseline
    #: fingerprint.  Checkers whose messages embed volatile detail
    #: (taint paths, entry-point attributions, counts) set this to the
    #: invariant core of the finding so baseline entries don't churn
    #: when the detail shifts.
    identity: Optional[str] = None

    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-number-free identity used for baseline matching, so a
        grandfathered finding survives unrelated edits above it."""
        return (self.rule, self.path, self.identity or self.message)

    def to_dict(self) -> dict:
        payload = {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.identity is not None:
            payload["identity"] = self.identity
        return payload


#: ``# repro-lint: disable=rule[,rule]`` suppresses findings on its line;
#: the ``disable-file`` form suppresses the rule(s) anywhere in the file.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_\-, ]+)")


class Suppressions:
    """Per-file inline suppression directives."""

    def __init__(self, text: str):
        self.file_rules: set = set()
        self.line_rules: Dict[int, set] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            for kind, rules in _SUPPRESS_RE.findall(line):
                names = {r.strip() for r in rules.split(",") if r.strip()}
                if kind == "disable-file":
                    self.file_rules |= names
                else:
                    self.line_rules.setdefault(lineno, set()).update(names)

    def covers(self, finding: Finding) -> bool:
        for scope in (self.file_rules,
                      self.line_rules.get(finding.line, ())):
            if finding.rule in scope or "all" in scope:
                return True
        return False


@dataclass
class SourceFile:
    """One parsed module in the corpus."""

    path: Path
    rel: str            # root-relative (reported)
    package_rel: str    # package-relative (allowlist matching)
    text: str
    tree: ast.AST
    suppressions: Suppressions


class Checker:
    """Base class; subclasses register themselves via :func:`register`."""

    rule: str = ""
    severity: Severity = Severity.ERROR
    scope: str = "file"  # or "project"
    description: str = ""

    def check_file(self, src: SourceFile,
                   config: LintConfig) -> Iterable[Finding]:
        return ()

    def check_project(self, corpus: Dict[str, SourceFile],
                      config: LintConfig) -> Iterable[Finding]:
        return ()

    def finding(self, config: LintConfig, path: Path, line: int, col: int,
                message: str, severity: Optional[Severity] = None,
                identity: Optional[str] = None) -> Finding:
        return Finding(rule=self.rule, severity=severity or self.severity,
                       path=config.rel(path), line=line, col=col,
                       message=message, identity=identity)


_REGISTRY: Dict[str, Checker] = {}


def register(cls):
    """Class decorator adding a checker (by its ``rule`` id) to the
    registry the engine runs."""
    if not cls.rule:
        raise ValueError(f"checker {cls.__name__} has no rule id")
    if cls.rule in _REGISTRY:
        raise ValueError(f"duplicate checker rule {cls.rule!r}")
    _REGISTRY[cls.rule] = cls()
    return cls


def all_checkers() -> Dict[str, Checker]:
    """rule id -> checker instance, after loading the builtin set."""
    # Importing the package registers every builtin checker exactly once.
    import repro.lint.checkers  # noqa: F401
    return dict(_REGISTRY)


@dataclass
class LintResult:
    """Outcome of one engine run (fresh findings only fail the build)."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_scanned: int = 0
    rules_run: Tuple[str, ...] = ()
    parse_errors: int = 0

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings
                   if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings
                   if f.severity is Severity.WARNING)


def _iter_py_files(base: Path, skip_dirs: Sequence[str]) -> Iterator[Path]:
    for path in sorted(base.rglob("*.py")):
        if any(part in skip_dirs for part in path.parts):
            continue
        yield path


def load_source(path: Path, config: LintConfig) -> Optional[SourceFile]:
    """Parse one module; returns None when it fails to parse (the caller
    reports a ``parse-error`` finding)."""
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    return SourceFile(path=path, rel=config.rel(path),
                      package_rel=config.package_rel_of(path), text=text,
                      tree=tree, suppressions=Suppressions(text))


def build_corpus(config: LintConfig,
                 errors: List[Finding]) -> Dict[str, SourceFile]:
    corpus: Dict[str, SourceFile] = {}
    for path in _iter_py_files(config.package_dir, config.skip_dirs):
        try:
            src = load_source(path, config)
        except SyntaxError as exc:
            errors.append(Finding(
                rule="parse-error", severity=Severity.ERROR,
                path=config.rel(path), line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"module does not parse: {exc.msg}"))
            continue
        corpus[src.rel] = src
    return corpus


def run_lint(
    config: LintConfig,
    select: Optional[Sequence[str]] = None,
    disable: Optional[Sequence[str]] = None,
    baseline: Optional[Iterable[Tuple[str, str, str]]] = None,
    paths: Optional[Sequence[str]] = None,
) -> LintResult:
    """Run every registered checker and post-process the findings.

    ``select``/``disable`` narrow the rule set; ``baseline`` is a set of
    fingerprints treated as grandfathered; ``paths`` (root-relative
    prefixes) restrict which findings are reported.
    """
    checkers = all_checkers()
    active = {
        rule: chk for rule, chk in checkers.items()
        if (not select or rule in select)
        and (not disable or rule not in disable)
    }

    parse_failures: List[Finding] = []
    corpus = build_corpus(config, parse_failures)

    raw: List[Finding] = list(parse_failures)
    for src in corpus.values():
        for chk in active.values():
            if chk.scope == "file":
                raw.extend(chk.check_file(src, config))
    for chk in active.values():
        if chk.scope == "project":
            raw.extend(chk.check_project(corpus, config))

    if paths:
        prefixes = tuple(p.rstrip("/") for p in paths)
        raw = [f for f in raw
               if any(f.path == p or f.path.startswith(p + "/")
                      for p in prefixes)]

    result = LintResult(files_scanned=len(corpus),
                        rules_run=tuple(sorted(active)),
                        parse_errors=len(parse_failures))
    known = set(baseline or ())
    for finding in sorted(raw, key=lambda f: (f.path, f.line, f.rule)):
        src = corpus.get(finding.path)
        if src is not None and src.suppressions.covers(finding):
            result.suppressed += 1
        elif finding.fingerprint() in known:
            result.baselined.append(finding)
        else:
            result.findings.append(finding)
    return result
