"""Lint configuration: what to scan and where the cross-referenced
artifacts (enums, whitelist, metric docs) live.

Defaults describe this repository; tests point ``root`` at synthetic
mini-trees to exercise checkers against fixture snippets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Tuple


@dataclass
class LintConfig:
    """Paths and allowlists for one lint run.

    All ``*_rel`` fields are POSIX-style paths relative to ``root``;
    allowlist entries are relative to the scanned package directory.
    """

    #: Repository root; every reported path is relative to it.
    root: Path

    #: The package tree the per-file checkers scan.
    package_rel: str = "src/repro"

    #: Sim-path wall-clock allowlist: modules that legitimately measure
    #: host time (speedup/overhead numbers), relative to ``package_rel``.
    sim_clock_allow: Tuple[str, ...] = ("loadgen/executor.py",)

    #: Modules allowed to touch the ``random`` module directly (the
    #: seeded-stream registry itself).
    rng_allow: Tuple[str, ...] = ("sim/rng.py",)

    #: Package-relative prefixes on which ``raise`` must use
    #: repro-defined typed exceptions (the cloud/VDC/portal paths).
    typed_raise_prefixes: Tuple[str, ...] = ("cloud/", "vdc/")

    #: Cross-referenced artifacts for the project-scope checkers.
    mav_enums_rel: str = "src/repro/mavlink/enums.py"
    mav_enum_class: str = "MavCommand"
    whitelist_rel: str = "src/repro/mavproxy/whitelist.py"
    metrics_doc_rel: str = "docs/METRICS.md"

    #: Extra trees (besides ``package_rel``) scanned for registered
    #: metric names — benchmarks register ``fig10.*``/``scale.*`` series.
    metrics_extra_rels: Tuple[str, ...] = ("benchmarks",)

    #: Default baseline location for grandfathered findings.
    baseline_rel: str = "lint-baseline.json"

    # -- interprocedural (flow) layer -------------------------------------
    #: Modules whose functions *sanitize* taint: reviewed boundaries
    #: whose return values are deemed clock-free/deterministic.
    #: ``sim/rng.py`` is the blessed seeded-stream wrapper (calls into
    #: it are the fix, not the bug); ``loadgen/executor.py`` measures
    #: real wall time of the parallel run itself — a measurement
    #: boundary, not sim logic.  (Distinct from ``rng_allow``/
    #: ``sim_clock_allow``, which only mute per-file reporting — taint
    #: still propagates out of a merely allowlisted module, closing the
    #: allowlist-laundering hole.)
    flow_taint_sanitizers: Tuple[str, ...] = ("sim/rng.py",
                                              "loadgen/executor.py")

    #: Package-relative module prefixes whose public functions/methods
    #: are exception-flow entry points: every ``raise`` reachable from
    #: them must resolve to a project-defined typed error.
    flow_entry_prefixes: Tuple[str, ...] = ("cloud/", "vdc/", "security/")

    #: Functions that run inside ParallelFleetExecutor worker processes
    #: (``module.py::function``); everything they can reach is subject
    #: to the shard-boundary state rules.
    shard_entry_points: Tuple[str, ...] = (
        "loadgen/executor.py::run_shard",
        "loadgen/executor.py::_run_shard_job",
    )

    #: Modules exempt from the shard-boundary state rules.  The obs
    #: registry is process-wide *by design* — ``run_shard`` resets it at
    #: worker start, which is the mechanism that makes it fork-safe.
    shard_state_allow: Tuple[str, ...] = ("obs/__init__.py",)

    #: Where the path of the ``SecurityError`` taxonomy root lives, for
    #: the swallowed-SecurityError handler check
    #: (``module.py::ClassName``).
    flow_security_root: str = "security/errors.py::SecurityError"

    #: Declared state-machine transition tables the ``flow-typestate``
    #: rule verifies code against (see ``repro.lint.flow.statetables``).
    #: ``None`` means the default three machines (VFC, migration,
    #: channel rekey epoch); tests point this at fixture machines.
    typestate_machines: Optional[Tuple[dict, ...]] = None

    #: On-disk cache of per-module flow summaries, keyed by content
    #: hash, so the cached whole-program pass stays fast (root-relative;
    #: an absolute path is honored as-is).
    flow_cache_rel: str = ".lint-flow-cache.json"

    #: Directory names never descended into.
    skip_dirs: Tuple[str, ...] = field(
        default=("__pycache__", ".git", ".pytest_cache", ".hypothesis"))

    @property
    def package_dir(self) -> Path:
        return self.root / self.package_rel

    @property
    def baseline_path(self) -> Path:
        return self.root / self.baseline_rel

    @property
    def flow_cache_path(self) -> Path:
        return self.root / self.flow_cache_rel

    def rel(self, path: Path) -> str:
        """``path`` relative to the root, POSIX-style (finding identity)."""
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    def package_rel_of(self, path: Path) -> str:
        """``path`` relative to the scanned package, or '' if outside."""
        try:
            return (path.resolve()
                    .relative_to(self.package_dir.resolve()).as_posix())
        except ValueError:
            return ""


def find_repo_root(start: Path) -> Path:
    """Walk up from ``start`` to the checkout root (pyproject marker)."""
    node = start.resolve()
    for candidate in (node, *node.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return start


def default_config(root: Path = None) -> LintConfig:
    """The configuration for this checkout (root auto-detected from the
    installed package location when not given)."""
    if root is None:
        root = find_repo_root(Path(__file__).parent)
    return LintConfig(root=Path(root))
