"""Lint configuration: what to scan and where the cross-referenced
artifacts (enums, whitelist, metric docs) live.

Defaults describe this repository; tests point ``root`` at synthetic
mini-trees to exercise checkers against fixture snippets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Tuple


@dataclass
class LintConfig:
    """Paths and allowlists for one lint run.

    All ``*_rel`` fields are POSIX-style paths relative to ``root``;
    allowlist entries are relative to the scanned package directory.
    """

    #: Repository root; every reported path is relative to it.
    root: Path

    #: The package tree the per-file checkers scan.
    package_rel: str = "src/repro"

    #: Sim-path wall-clock allowlist: modules that legitimately measure
    #: host time (speedup/overhead numbers), relative to ``package_rel``.
    sim_clock_allow: Tuple[str, ...] = ("loadgen/executor.py",)

    #: Modules allowed to touch the ``random`` module directly (the
    #: seeded-stream registry itself).
    rng_allow: Tuple[str, ...] = ("sim/rng.py",)

    #: Package-relative prefixes on which ``raise`` must use
    #: repro-defined typed exceptions (the cloud/VDC/portal paths).
    typed_raise_prefixes: Tuple[str, ...] = ("cloud/", "vdc/")

    #: Cross-referenced artifacts for the project-scope checkers.
    mav_enums_rel: str = "src/repro/mavlink/enums.py"
    mav_enum_class: str = "MavCommand"
    whitelist_rel: str = "src/repro/mavproxy/whitelist.py"
    metrics_doc_rel: str = "docs/METRICS.md"

    #: Extra trees (besides ``package_rel``) scanned for registered
    #: metric names — benchmarks register ``fig10.*``/``scale.*`` series.
    metrics_extra_rels: Tuple[str, ...] = ("benchmarks",)

    #: Default baseline location for grandfathered findings.
    baseline_rel: str = "lint-baseline.json"

    #: Directory names never descended into.
    skip_dirs: Tuple[str, ...] = field(
        default=("__pycache__", ".git", ".pytest_cache", ".hypothesis"))

    @property
    def package_dir(self) -> Path:
        return self.root / self.package_rel

    @property
    def baseline_path(self) -> Path:
        return self.root / self.baseline_rel

    def rel(self, path: Path) -> str:
        """``path`` relative to the root, POSIX-style (finding identity)."""
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    def package_rel_of(self, path: Path) -> str:
        """``path`` relative to the scanned package, or '' if outside."""
        try:
            return (path.resolve()
                    .relative_to(self.package_dir.resolve()).as_posix())
        except ValueError:
            return ""


def find_repo_root(start: Path) -> Path:
    """Walk up from ``start`` to the checkout root (pyproject marker)."""
    node = start.resolve()
    for candidate in (node, *node.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return start


def default_config(root: Path = None) -> LintConfig:
    """The configuration for this checkout (root auto-detected from the
    installed package location when not given)."""
    if root is None:
        root = find_repo_root(Path(__file__).parent)
    return LintConfig(root=Path(root))
