"""Domain-aware static analysis for the AnDrone reproduction.

The reproduction's correctness rests on invariants the paper states but
ordinary linters cannot see: every MAVLink command must be classified by
a restriction template (Section 4.3), raises on the cloud/VDC paths must
use repro-defined typed exceptions, and replay determinism requires
sim-clock-only timestamps, seeded RNG streams, and instance-scoped
counters (the bug class PRs 2 and 4 each fixed by hand).  This package
encodes those rules as AST checkers, in the tradition of the kernel's
checkpatch/sparse subsystem linters.

Run it as ``python -m repro.lint`` (or ``make lint``).  The rule
catalog, suppression syntax, and baseline workflow are documented in
``docs/STATIC_ANALYSIS.md``.
"""

from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.config import LintConfig, default_config
from repro.lint.core import (
    Checker,
    Finding,
    LintResult,
    Severity,
    all_checkers,
    register,
    run_lint,
)
from repro.lint.report import render_json, render_text

__all__ = [
    "Checker",
    "Finding",
    "LintConfig",
    "LintResult",
    "Severity",
    "all_checkers",
    "default_config",
    "load_baseline",
    "register",
    "render_json",
    "render_text",
    "run_lint",
    "write_baseline",
]
