"""The on-disk summary cache: ``{rel: {sha, summary}}`` keyed by
content hash, so an unchanged module is never re-summarized.

The cache is a pure accelerator — a missing, stale, or corrupt file
degrades to a full re-extraction, never to wrong answers.  Write
failures (read-only checkouts, concurrent runs) are swallowed the same
way: the run completes, only colder.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional, Tuple

from repro.lint.config import LintConfig
from repro.lint.core import SourceFile
from repro.lint.flow.summary import SCHEMA_VERSION, summarize_module

_CACHE_VERSION = 1


def content_sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _load_disk_cache(config: LintConfig) -> Dict[str, Dict]:
    path = config.flow_cache_path
    if not path.exists():
        return {}
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, OSError):
        return {}
    if not isinstance(payload, dict) \
            or payload.get("version") != _CACHE_VERSION \
            or payload.get("schema") != SCHEMA_VERSION:
        return {}
    entries = payload.get("modules")
    return entries if isinstance(entries, dict) else {}


def _store_disk_cache(config: LintConfig,
                      entries: Dict[str, Dict]) -> bool:
    payload = {"version": _CACHE_VERSION, "schema": SCHEMA_VERSION,
               "modules": entries}
    try:
        config.flow_cache_path.write_text(
            json.dumps(payload, sort_keys=True), encoding="utf-8")
    except OSError:
        return False  # cold next run; never fail the lint over the cache
    return True


def load_summaries(corpus: Dict[str, SourceFile],
                   config: LintConfig,
                   use_disk: bool = True) -> Tuple[Dict[str, Dict], int]:
    """``rel -> summary`` for the corpus, reusing disk-cache entries
    whose content hash still matches.  Returns ``(summaries, hits)``;
    the refreshed cache is written back when anything changed."""
    disk = _load_disk_cache(config) if use_disk else {}
    summaries: Dict[str, Dict] = {}
    fresh: Dict[str, Dict] = {}
    hits = 0
    for rel in sorted(corpus):
        src = corpus[rel]
        sha = content_sha(src.text)
        entry: Optional[Dict] = disk.get(rel)
        if entry is not None and entry.get("sha") == sha:
            summaries[rel] = entry["summary"]
            fresh[rel] = entry
            hits += 1
            continue
        summary = summarize_module(src)
        summaries[rel] = summary
        fresh[rel] = {"sha": sha, "summary": summary}
    if use_disk and (hits < len(corpus) or set(disk) != set(fresh)):
        _store_disk_cache(config, fresh)
    return summaries, hits
