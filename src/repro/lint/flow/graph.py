"""The project call graph + import graph, built from module summaries.

Resolution is heuristic but *bounded*: a call target we cannot resolve
is dropped (documented under-approximation) rather than wired to every
plausible callee, and name-based method fallback is capped at
:data:`MAX_METHOD_CANDIDATES` implementations — past that, a method
name is treated as dynamic dispatch the analysis stays silent about.
The cap trades soundness for a finding list humans will read; the
trade is documented in docs/STATIC_ANALYSIS.md.

The graph is memoized on the corpus content signature, so the four
``flow-*`` checkers running in one lint share a single build.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.core import SourceFile
from repro.lint.flow.cache import content_sha, load_summaries

#: A method name resolved purely by name (unknown receiver) links to at
#: most this many implementations; more means a common verb (``run``,
#: ``stop``) whose dispatch we refuse to guess at.
MAX_METHOD_CANDIDATES = 3

#: How many chained re-exports (``from .executor import run_parallel``
#: in a package ``__init__``) symbol resolution follows.
_MAX_REEXPORT_DEPTH = 5

#: Longest taint path reconstructed for a finding message.
_MAX_PATH = 12


class ProjectGraph:
    """Whole-program view over one corpus of module summaries."""

    def __init__(self, summaries: Dict[str, Dict], config: LintConfig,
                 cache_hits: int = 0):
        self.summaries = summaries
        self.config = config
        self.cache_hits = cache_hits
        self.pkg = config.package_rel.rstrip("/").split("/")[-1]

        #: dotted module name ("repro.cloud.portal") -> rel
        self.module_of_dotted: Dict[str, str] = {}
        #: package_rel -> rel
        self.rel_of_package_rel: Dict[str, str] = {}
        for rel in sorted(summaries):
            s = summaries[rel]
            pkg_rel = s["package_rel"]
            self.rel_of_package_rel[pkg_rel] = rel
            dotted = self._dotted_of(pkg_rel)
            if dotted is not None:
                self.module_of_dotted[dotted] = rel

        #: fid ("rel::qualname") -> function summary (plus "rel")
        self.functions: Dict[str, Dict] = {}
        #: cid ("rel::ClassName") -> class summary (plus "rel")
        self.classes: Dict[str, Dict] = {}
        self._methods_by_name: Dict[str, List[str]] = {}
        for rel in sorted(summaries):
            s = summaries[rel]
            for qualname in sorted(s["functions"]):
                fn = dict(s["functions"][qualname])
                fn["rel"] = rel
                fn["package_rel"] = s["package_rel"]
                self.functions[f"{rel}::{qualname}"] = fn
            for cname in sorted(s["classes"]):
                cls = dict(s["classes"][cname])
                cls["rel"] = rel
                self.classes[f"{rel}::{cname}"] = cls
                for mname in cls["methods"]:
                    self._methods_by_name.setdefault(mname, []).append(
                        f"{rel}::{cname}.{mname}")

        #: fid -> sorted resolved callee fids
        self.calls: Dict[str, Tuple[str, ...]] = {}
        for fid in sorted(self.functions):
            self.calls[fid] = self._resolve_calls(fid)

        self._taint: Optional[Dict[str, Dict[str, Tuple]]] = None

    # -- naming -----------------------------------------------------------
    def _dotted_of(self, package_rel: str) -> Optional[str]:
        if not package_rel.endswith(".py"):
            return None
        parts = package_rel[:-len(".py")].split("/")
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join([self.pkg] + parts) if parts else self.pkg

    def fid_label(self, fid: str) -> str:
        """Human-readable ``package_rel::qualname`` for messages."""
        rel, qualname = fid.split("::", 1)
        return f"{self.summaries[rel]['package_rel']}::{qualname}"

    # -- symbol resolution ------------------------------------------------
    def resolve_symbol(self, dotted: str,
                       depth: int = 0) -> Optional[Tuple[str, str]]:
        """``("func"|"class", id)`` for a project dotted name, else
        None (external or unresolvable)."""
        if depth > _MAX_REEXPORT_DEPTH:
            return None
        parts = dotted.split(".")
        if parts[0] != self.pkg:
            return None
        rel = None
        split_at = 0
        for i in range(len(parts), 0, -1):
            candidate = self.module_of_dotted.get(".".join(parts[:i]))
            if candidate is not None:
                rel, split_at = candidate, i
                break
        if rel is None:
            return None
        return self._resolve_in_module(rel, parts[split_at:], depth)

    def _resolve_in_module(self, rel: str, rest: Sequence[str],
                           depth: int) -> Optional[Tuple[str, str]]:
        if not rest:
            return None
        s = self.summaries[rel]
        head = rest[0]
        if head in s["functions"] and len(rest) == 1:
            return ("func", f"{rel}::{head}")
        if head in s["classes"]:
            if len(rest) == 1:
                return ("class", f"{rel}::{head}")
            if len(rest) == 2:
                method = self.find_method(f"{rel}::{head}", rest[1])
                if method is not None:
                    return ("func", method)
            return None
        imports = s["imports"]
        target = imports["from_names"].get(head) \
            or imports["modules"].get(head)
        if target is not None:
            return self.resolve_symbol(
                ".".join([target] + list(rest[1:])), depth + 1)
        return None

    def find_method(self, cid: str, name: str) -> Optional[str]:
        """Method fid via the project-class MRO (linear base walk)."""
        seen: Set[str] = set()
        stack = [cid]
        while stack:
            current = stack.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            cls = self.classes[current]
            if name in cls["methods"]:
                rel = cls["rel"]
                cname = current.split("::", 1)[1]
                return f"{rel}::{cname}.{name}"
            for base in cls["bases"]:
                resolved = self._resolve_class_ref(cls["rel"], base)
                if resolved is not None:
                    stack.append(resolved)
        return None

    def _resolve_class_ref(self, rel: str, chain: str) -> Optional[str]:
        """A base-class or annotation chain to a project cid."""
        parts = chain.split(".")
        s = self.summaries[rel]
        if len(parts) == 1 and parts[0] in s["classes"]:
            return f"{rel}::{parts[0]}"
        resolved = None
        if parts[0] == self.pkg:
            resolved = self.resolve_symbol(chain)
        else:
            imports = s["imports"]
            target = imports["from_names"].get(parts[0]) \
                or imports["modules"].get(parts[0])
            if target is not None:
                resolved = self.resolve_symbol(
                    ".".join([target] + parts[1:]))
        if resolved is not None and resolved[0] == "class":
            return resolved[1]
        return None

    def methods_named(self, name: str) -> Tuple[str, ...]:
        """Name-based method fallback, capped and dunder-free."""
        if name.startswith("__"):
            return ()
        fids = self._methods_by_name.get(name, ())
        if not fids or len(fids) > MAX_METHOD_CANDIDATES:
            return ()
        return tuple(sorted(fids))

    # -- call edges -------------------------------------------------------
    def _resolve_calls(self, fid: str) -> Tuple[str, ...]:
        rel, qualname = fid.split("::", 1)
        fn = self.functions[fid]
        s = self.summaries[rel]
        out: Set[str] = set()
        for chain, _line, _col in fn["calls"]:
            if chain is None:
                continue
            out.update(self._resolve_one_call(rel, fn, s, chain))
        return tuple(sorted(out))

    def _resolve_one_call(self, rel: str, fn: Dict, s: Dict,
                          chain: str) -> Tuple[str, ...]:
        parts = chain.split(".")
        base = parts[0]
        if base == "self" and fn["class"] is not None:
            cid = f"{rel}::{fn['class']}"
            if len(parts) == 2:
                method = self.find_method(cid, parts[1])
                return (method,) if method else self.methods_named(parts[1])
            if len(parts) == 3:
                attr_type = self.classes.get(cid, {}).get(
                    "attr_types", {}).get(parts[1])
                if attr_type is not None:
                    target_cid = self._resolve_class_ref(rel, attr_type)
                    if target_cid is not None:
                        method = self.find_method(target_cid, parts[2])
                        if method is not None:
                            return (method,)
                return self.methods_named(parts[2])
            return ()
        if len(parts) == 1:
            if base in s["functions"]:
                return (f"{rel}::{base}",)
            if base in s["classes"]:
                init = self.find_method(f"{rel}::{base}", "__init__")
                return (init,) if init else ()
        if base in s["classes"] and len(parts) == 2:
            method = self.find_method(f"{rel}::{base}", parts[1])
            return (method,) if method else ()
        if base == self.pkg:
            # The summary already resolved the name through the module's
            # ImportMap, so the chain arrives fully dotted.
            resolved = self.resolve_symbol(chain)
            if resolved is None:
                return ()
            kind, ident = resolved
            if kind == "func":
                return (ident,)
            init = self.find_method(ident, "__init__")
            return (init,) if init else ()
        imports = s["imports"]
        target = imports["from_names"].get(base) \
            or imports["modules"].get(base)
        if target is not None:
            resolved = self.resolve_symbol(
                ".".join([target] + parts[1:]))
            if resolved is None:
                if target.split(".")[0] == self.pkg or len(parts) < 2:
                    return ()
                return self.methods_named(parts[-1])
            kind, ident = resolved
            if kind == "func":
                return (ident,)
            init = self.find_method(ident, "__init__")
            return (init,) if init else ()
        if len(parts) >= 2:
            return self.methods_named(parts[-1])
        return ()

    def resolve_chain(self, fid: str, chain: str) -> Tuple[str, ...]:
        """Callee fids a chain (as written inside ``fid``) resolves to —
        the call-edge heuristics, exposed for crossing callables."""
        rel = fid.split("::", 1)[0]
        return self._resolve_one_call(
            rel, self.functions[fid], self.summaries[rel], chain)

    # -- analyses ---------------------------------------------------------
    def taint(self) -> Dict[str, Dict[str, Tuple]]:
        """``fid -> {kind -> ("source", name) | ("call", callee_fid)}``
        fixpoint: a function is tainted by its own unsuppressed sources
        or by any callee, except inside sanitizer modules."""
        if self._taint is not None:
            return self._taint
        sanitizers = set(self.config.flow_taint_sanitizers)
        taint: Dict[str, Dict[str, Tuple]] = {}
        for fid in sorted(self.functions):
            fn = self.functions[fid]
            if fn["package_rel"] in sanitizers:
                continue
            for kind, name, _line, _col in fn["sources"]:
                taint.setdefault(fid, {}).setdefault(
                    kind, ("source", name))
        changed = True
        while changed:
            changed = False
            for fid in sorted(self.functions):
                if self.functions[fid]["package_rel"] in sanitizers:
                    continue
                for callee in self.calls[fid]:
                    for kind in sorted(taint.get(callee, ())):
                        if kind not in taint.setdefault(fid, {}):
                            taint[fid][kind] = ("call", callee)
                            changed = True
        self._taint = taint
        return taint

    def taint_path(self, fid: str, kind: str) -> List[str]:
        """Deterministic helper chain from ``fid`` to the source name."""
        path: List[str] = []
        taint = self.taint()
        current = fid
        for _hop in range(_MAX_PATH):
            entry = taint.get(current, {}).get(kind)
            if entry is None:
                break
            via, target = entry
            if via == "source":
                path.append(f"{target}()")
                break
            path.append(self.fid_label(target))
            current = target
        return path

    def reachable_from(self, entries: Sequence[str]) -> Dict[str, str]:
        """``fid -> attributed entry fid`` over the call graph; entries
        processed in sorted order, so attribution is deterministic."""
        attributed: Dict[str, str] = {}
        for entry in sorted(set(entries)):
            if entry not in self.functions:
                continue
            stack = [entry]
            while stack:
                fid = stack.pop()
                if fid in attributed:
                    continue
                attributed[fid] = entry
                stack.extend(reversed(self.calls.get(fid, ())))
        return attributed

    # -- exception hierarchy ----------------------------------------------
    def is_project_subclass(self, cid: str, root_cid: str) -> bool:
        seen: Set[str] = set()
        stack = [cid]
        while stack:
            current = stack.pop()
            if current == root_cid:
                return True
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            cls = self.classes[current]
            for base in cls["bases"]:
                resolved = self._resolve_class_ref(cls["rel"], base)
                if resolved is not None:
                    stack.append(resolved)
        return False

    def resolve_class_chain(self, rel: str, chain: str) -> Optional[str]:
        """A name as written in ``rel`` (handler type, raise target)
        to a project cid, or None for builtins/externals."""
        return self._resolve_class_ref(rel, chain)


#: signature -> built graph; a handful of entries covers the test
#: suites' mini-corpora without unbounded growth.
_GRAPH_MEMO: Dict[Tuple, ProjectGraph] = {}
_MEMO_LIMIT = 8


def corpus_signature(corpus: Dict[str, SourceFile],
                     config: LintConfig) -> Tuple:
    """Memo key: corpus content plus every config field the graph or
    its cached analyses read (root distinguishes synthetic test repos
    with identical content)."""
    return (str(config.root), config.package_rel,
            tuple(config.flow_taint_sanitizers),
            tuple((rel, content_sha(corpus[rel].text))
                  for rel in sorted(corpus)))


def project_graph(corpus: Dict[str, SourceFile],
                  config: LintConfig) -> ProjectGraph:
    """The (memoized) whole-program graph for this corpus."""
    signature = corpus_signature(corpus, config)
    graph = _GRAPH_MEMO.get(signature)
    if graph is not None:
        return graph
    summaries, hits = load_summaries(corpus, config)
    graph = ProjectGraph(summaries, config, cache_hits=hits)
    if len(_GRAPH_MEMO) >= _MEMO_LIMIT:
        _GRAPH_MEMO.pop(next(iter(_GRAPH_MEMO)))
    _GRAPH_MEMO[signature] = graph
    return graph
