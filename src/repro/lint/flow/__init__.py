"""The interprocedural analysis layer under ``repro.lint``.

Per-file checkers see one module; the invariants this reproduction's
correctness proofs rest on do not stop at module boundaries — a
wall-clock read wrapped in a helper, an unseeded RNG handed through
three calls, or an illegal VFC ``SAFETY`` transition written from
another package all slip past a per-file pass.  This package builds a
whole-program view once per lint run and shares it across the
``flow-*`` checkers:

* :mod:`repro.lint.flow.summary` — one JSON-serializable summary per
  module (imports, functions, calls, raises, handlers, taint sources,
  shard-state writes), extracted from the AST;
* :mod:`repro.lint.flow.cache` — the on-disk summary cache keyed by
  content hash, so the cached whole-program pass stays fast;
* :mod:`repro.lint.flow.graph` — the project call graph + import graph
  with conservative method-resolution heuristics, plus the taint and
  reachability fixpoints the checkers query;
* :mod:`repro.lint.flow.statetables` — the declared state-machine
  transition tables (VFC, migration, channel rekey epoch) the
  type-state checker verifies code against.

Soundness stance (documented in docs/STATIC_ANALYSIS.md): resolution
is conservative-but-bounded — unresolvable dynamic dispatch is dropped
rather than exploded, so the layer under-approximates reachability in
exchange for a finding list humans will actually read.
"""

from repro.lint.flow.graph import project_graph  # noqa: F401
