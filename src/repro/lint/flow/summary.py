"""Per-module flow summaries: everything the whole-program layer needs
from one module, as a JSON-serializable dict.

A summary is a pure function of the module text (suppression comments
included), which is what makes the on-disk cache sound: same bytes,
same summary.  All structures are lists/dicts of primitives so they
round-trip through JSON unchanged.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.lint.checkers._astutil import ImportMap, is_constant_name
from repro.lint.checkers.forksafety import _is_mutable_value
from repro.lint.checkers.rng import GLOBAL_RNG_FUNCS
from repro.lint.checkers.simclock import BANNED_CALLS
from repro.lint.core import SourceFile

#: Bumped whenever the summary schema changes; stale cache entries are
#: silently re-extracted.
SCHEMA_VERSION = 1

#: Container-mutating method names: calling one on a module-level
#: binding from shard-reachable code is a cross-shard state write.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "update", "extend", "insert",
    "setdefault", "pop", "popleft", "popitem", "remove", "discard",
    "clear",
})

#: Pool/executor methods whose first argument crosses a process
#: boundary.
_CROSSING_METHODS = frozenset({"map", "starmap", "imap", "submit",
                               "apply", "apply_async"})
#: Constructors whose ``target=`` callable crosses a process/thread
#: boundary.
_CROSSING_CTORS = frozenset({"multiprocessing.Process",
                             "threading.Thread"})


def _suppressed(src: SourceFile, rule: str, line: int) -> bool:
    sup = src.suppressions
    for scope in (sup.file_rules, sup.line_rules.get(line, ())):
        if rule in scope or "all" in scope:
            return True
    return False


def _chain(imap: ImportMap, expr: ast.AST) -> Optional[str]:
    return imap.resolve(expr)


def _callable_ref(arg: ast.AST, imap: ImportMap) -> List:
    """[kind, repr] of a callable crossing the shard boundary."""
    if isinstance(arg, ast.Lambda):
        return ["lambda", "<lambda>"]
    if isinstance(arg, ast.Attribute):
        return ["bound", _chain(imap, arg) or arg.attr]
    if isinstance(arg, ast.Name):
        return ["name", _chain(imap, arg) or arg.id]
    return ["opaque", "<expr>"]


def _taint_sources(call: ast.Call, chain: Optional[str],
                   src: SourceFile) -> List[List]:
    """Taint sources this call constitutes (suppressed sites sanitize:
    the inline disable is a reviewed assertion that the value never
    feeds sim behavior)."""
    out: List[List] = []
    if chain is None:
        return out
    if chain in BANNED_CALLS and not _suppressed(src, "sim-clock",
                                                 call.lineno):
        out.append(["wall-clock", chain, call.lineno, call.col_offset])
    elif chain.startswith("random.") \
            and not _suppressed(src, "seeded-rng", call.lineno):
        suffix = chain[len("random."):]
        if suffix in GLOBAL_RNG_FUNCS:
            out.append(["global-rng", chain, call.lineno,
                        call.col_offset])
        elif suffix == "Random" and not call.args and not call.keywords:
            out.append(["unseeded-rng", chain, call.lineno,
                        call.col_offset])
        elif suffix == "SystemRandom":
            out.append(["unseeded-rng", chain, call.lineno,
                        call.col_offset])
    return out


def _const_seq_items(value: ast.AST, imap: ImportMap) -> Optional[List[str]]:
    """Resolved items of a module-level tuple/list of dotted refs
    (state-set constants like ``_LIVE_STATES``), or None."""
    if not isinstance(value, (ast.Tuple, ast.List)):
        return None
    items: List[str] = []
    for elt in value.elts:
        ref = imap.resolve(elt)
        if ref is None:
            return None
        items.append(ref)
    return items


def _function_summary(node, qualname: str, cls: Optional[str],
                      imap: ImportMap, src: SourceFile,
                      module_names: frozenset) -> Dict:
    params = {a.arg for a in (node.args.args + node.args.posonlyargs
                              + node.args.kwonlyargs)}
    if node.args.vararg:
        params.add(node.args.vararg.arg)
    if node.args.kwarg:
        params.add(node.args.kwarg.arg)

    calls: List[List] = []
    crossings: List[List] = []
    raises: List[List] = []
    handlers: List[List] = []
    sources: List[List] = []
    globals_written: List[str] = []
    mutable_defaults: List[List] = []
    module_mutations: List[List] = []
    locals_bound = set(params)

    # First pass: every bound name (nested scopes included — being
    # over-inclusive here only *reduces* module-mutation findings).
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(
                sub.ctx, (ast.Store, ast.Del)):
            locals_bound.add(sub.id)
        elif isinstance(sub, ast.Global):
            globals_written.extend(sub.names)
            locals_bound.difference_update(sub.names)

    for default in (node.args.defaults + node.args.kw_defaults):
        if default is not None and _is_mutable_value(default, imap):
            mutable_defaults.append(
                [node.name, default.lineno, default.col_offset])

    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            chain = _chain(imap, sub.func)
            calls.append([chain, sub.lineno, sub.col_offset])
            sources.extend(_taint_sources(sub, chain, src))
            if chain is not None:
                parts = chain.split(".")
                if len(parts) >= 2 and parts[-1] in _CROSSING_METHODS \
                        and sub.args:
                    crossings.append(
                        _callable_ref(sub.args[0], imap)
                        + [sub.lineno, sub.col_offset])
                elif chain in _CROSSING_CTORS:
                    for kw in sub.keywords:
                        if kw.arg == "target":
                            crossings.append(
                                _callable_ref(kw.value, imap)
                                + [sub.lineno, sub.col_offset])
                if len(parts) == 2 and parts[-1] in MUTATOR_METHODS:
                    base = parts[0]
                    if base in module_names and base not in locals_bound \
                            and not is_constant_name(base):
                        module_mutations.append(
                            [base, f".{parts[-1]}()", sub.lineno,
                             sub.col_offset])
        elif isinstance(sub, ast.Raise):
            exc = sub.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            raises.append([_chain(imap, exc) if exc is not None else None,
                           sub.lineno, sub.col_offset])
        elif isinstance(sub, ast.ExceptHandler):
            names = []
            if sub.type is not None:
                nodes = (sub.type.elts if isinstance(sub.type, ast.Tuple)
                         else [sub.type])
                names = [c for c in (_chain(imap, n) for n in nodes)
                         if c is not None]
            has_raise = any(isinstance(s, ast.Raise)
                            for s in ast.walk(ast.Module(
                                body=sub.body, type_ignores=[])))
            has_call = any(isinstance(s, ast.Call)
                           for s in ast.walk(ast.Module(
                               body=sub.body, type_ignores=[])))
            handlers.append([names, sub.lineno, sub.col_offset,
                             has_raise, has_call])
        elif isinstance(sub, (ast.Assign, ast.AugAssign)):
            targets = (sub.targets if isinstance(sub, ast.Assign)
                       else [sub.target])
            for tgt in targets:
                base = tgt
                how = "="
                if isinstance(base, ast.Subscript):
                    base = base.value
                    how = "[...]="
                if isinstance(base, ast.Name) and how != "=" \
                        and base.id in module_names \
                        and base.id not in locals_bound \
                        and not is_constant_name(base.id):
                    module_mutations.append(
                        [base.id, how, sub.lineno, sub.col_offset])

    return {
        "name": node.name,
        "qualname": qualname,
        "class": cls,
        "line": node.lineno,
        "col": node.col_offset,
        "public": not node.name.startswith("_"),
        "calls": calls,
        "crossings": crossings,
        "raises": raises,
        "handlers": handlers,
        "sources": sources,
        "globals_written": sorted(set(globals_written)),
        "mutable_defaults": mutable_defaults,
        "module_mutations": module_mutations,
    }


def _class_attr_types(node: ast.ClassDef, imap: ImportMap) -> Dict[str, str]:
    """``self.attr = ClassName(...)`` bindings in ``__init__`` plus
    annotated class fields — the instance-attribute type heuristic."""
    types: Dict[str, str] = {}
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name):
            ann = imap.resolve(stmt.annotation)
            if ann is not None:
                types[stmt.target.id] = ann
        elif isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    tgt = sub.targets[0]
                    if (isinstance(tgt, ast.Attribute)
                            and isinstance(tgt.value, ast.Name)
                            and tgt.value.id == "self"
                            and isinstance(sub.value, ast.Call)):
                        ctor = imap.resolve(sub.value.func)
                        if ctor is not None:
                            types[tgt.attr] = ctor
    return types


def summarize_module(src: SourceFile) -> Dict:
    """The flow summary of one parsed module."""
    imap = ImportMap(src.tree)
    module_names = set()
    const_seqs: Dict[str, List[str]] = {}
    classes: Dict[str, Dict] = {}
    functions: Dict[str, Dict] = {}

    for stmt in src.tree.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            for tgt in targets:
                if isinstance(tgt, ast.Name):
                    module_names.add(tgt.id)
                    value = getattr(stmt, "value", None)
                    if value is not None:
                        items = _const_seq_items(value, imap)
                        if items is not None:
                            const_seqs[tgt.id] = items
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module_names.add(stmt.name)
        elif isinstance(stmt, ast.ClassDef):
            module_names.add(stmt.name)

    frozen_names = frozenset(module_names)
    for stmt in src.tree.body:
        if isinstance(stmt, ast.FunctionDef):
            functions[stmt.name] = _function_summary(
                stmt, stmt.name, None, imap, src, frozen_names)
        elif isinstance(stmt, ast.ClassDef):
            bases = [c for c in (imap.resolve(b) for b in stmt.bases)
                     if c is not None]
            methods = []
            for sub in stmt.body:
                if isinstance(sub, ast.FunctionDef):
                    qualname = f"{stmt.name}.{sub.name}"
                    functions[qualname] = _function_summary(
                        sub, qualname, stmt.name, imap, src, frozen_names)
                    methods.append(sub.name)
            classes[stmt.name] = {
                "line": stmt.lineno,
                "bases": bases,
                "methods": methods,
                "attr_types": _class_attr_types(stmt, imap),
            }

    return {
        "schema": SCHEMA_VERSION,
        "rel": src.rel,
        "package_rel": src.package_rel,
        "imports": {"modules": dict(imap.modules),
                    "from_names": dict(imap.from_names)},
        "module_names": sorted(module_names),
        "const_seqs": const_seqs,
        "classes": classes,
        "functions": functions,
    }
