"""Declared transition tables for the project's state machines.

The ``flow-typestate`` checker verifies every state assignment and
transition call in code against these tables — the Simplex argument
(arXiv 1812.02834) that a safety controller's state machine must be
*verifiable* applies directly: the SAFETY quarantine is only as strong
as the guarantee that no code path writes its way out of it.

Each machine is a plain dict so tests can substitute fixture machines
via ``LintConfig.typestate_machines``:

``name``
    Short id used in findings.
``module``
    Package-relative path of the module defining the machine.
``owner``
    Class whose instances carry the state attribute.
``enum``
    The state enum class (members are read from the module).
``attr``
    The instance attribute holding the state.
``setter``
    The one method allowed to assign ``attr`` (besides ``__init__``);
    any other assignment is a bypass.
``enforcement``
    ``"none"``: the setter assigns blindly, so every statically
    possible source state must be legal (*must*-analysis).
    ``"runtime"``: the setter itself validates against a table, so a
    call site is only flagged when **no** possible source state makes
    it legal (*may*-analysis).
``transitions``
    Legal ``source -> targets`` map for transitions whose target state
    is statically resolvable.
``restore_from``
    Source states from which a *statically unresolvable* target (a
    restore-prior-state variable like ``_pre_safety_state``) is legal;
    anywhere else an unresolvable target is flagged.
``initial``
    States ``__init__`` (or a dataclass field default) may assign.
``runtime_table``
    Optional module-level dict the runtime validates against; the
    checker diffs it against ``transitions`` so the declared table and
    the enforced table cannot drift apart.
``protocol``
    ``"monotonic-counter"`` replaces the enum machinery: the attribute
    is an integer epoch that only ``__init__`` may seed and only the
    setter may advance, by exactly ``+= 1``.
"""

#: The VFC per-tenant connection states (mavproxy/vfc.py).  SAFETY is
#: the simplex quarantine: the only resolvable exit is ``finish`` (the
#: terminal landing view); the only other way out is ``exit_safety``
#: restoring the *recorded prior level* — an unresolvable target, legal
#: solely from SAFETY via ``restore_from``.
VFC_MACHINE = {
    "name": "vfc",
    "module": "mavproxy/vfc.py",
    "owner": "VirtualFlightController",
    "enum": "VfcState",
    "attr": "state",
    "setter": "_set_state",
    "enforcement": "none",
    "initial": ("INACTIVE",),
    "restore_from": ("SAFETY",),
    "transitions": {
        "INACTIVE": ("INACTIVE", "APPROACHING", "ACTIVE", "SAFETY",
                     "FINISHED"),
        "APPROACHING": ("ACTIVE", "INACTIVE", "SAFETY", "FINISHED"),
        "ACTIVE": ("ACTIVE", "HOLDING", "RECOVERING", "INACTIVE",
                   "SAFETY", "FINISHED"),
        "RECOVERING": ("RECOVERING", "ACTIVE", "INACTIVE", "SAFETY",
                       "FINISHED"),
        "HOLDING": ("ACTIVE", "RECOVERING", "INACTIVE", "SAFETY",
                    "FINISHED"),
        "SAFETY": ("FINISHED",),
        "FINISHED": ("FINISHED",),
    },
}

#: The VDR-based migration hand-off (cloud/controlplane/migration.py).
#: ``MigrationTicket.transition`` validates against the module's own
#: TRANSITIONS dict at runtime, so the static pass is a may-analysis
#: plus a declared-vs-runtime table diff.
MIGRATION_MACHINE = {
    "name": "migration",
    "module": "cloud/controlplane/migration.py",
    "owner": "MigrationTicket",
    "enum": "MigrationState",
    "attr": "state",
    "setter": "transition",
    "enforcement": "runtime",
    "initial": ("REQUESTED",),
    "runtime_table": "TRANSITIONS",
    "transitions": {
        "REQUESTED": ("EXPORTING", "FAILED"),
        "EXPORTING": ("STORED", "FAILED"),
        "STORED": ("PLACING", "FAILED"),
        "PLACING": ("IMPORTING", "PLACING", "FAILED"),
        "IMPORTING": ("COMPLETED", "PLACING", "FAILED"),
        "COMPLETED": (),
        "FAILED": (),
    },
}

#: The secure-channel rekey epoch (security/channel.py).  Replay
#: rejection assumes the epoch is a monotonic counter: seeded once in
#: ``__init__``, advanced by exactly one in ``rekey``, never written
#: anywhere else — a jump or reset would resurrect replayed frames.
REKEY_MACHINE = {
    "name": "rekey-epoch",
    "module": "security/channel.py",
    "owner": "KeySchedule",
    "attr": "epoch",
    "setter": "rekey",
    "protocol": "monotonic-counter",
}

DEFAULT_MACHINES = (VFC_MACHINE, MIGRATION_MACHINE, REKEY_MACHINE)
