"""Vectorized flight dynamics + attitude fusion over drone slots.

:class:`~repro.flight.physics.QuadcopterPhysics` integrates one vehicle
per Python call; a ground station soaking hundreds of physical drones
spends most of its flight budget re-running the same arithmetic per
slot.  This module carries the identical math as numpy array ops with
one row per drone slot, so a fleet tick is a handful of vector
operations instead of ``N`` interpreter passes.

The vector core is **opt-in**: the simulator's golden path keeps the
scalar integrator (whose RNG gust stream is part of the golden-trace
contract), and the scalar classes remain the behavioral oracle.  The
property tests in ``tests/flight/test_vector_equivalence.py`` drive both
implementations through identical command histories and hold every state
component within 1e-9 (``on_ground``/``time_us`` exactly), which is what
licenses the benchmark suite to report vector throughput as equivalent
work.

Operation order mirrors ``physics.py`` statement by statement — numpy
elementwise float64 arithmetic performs the same IEEE operations, so any
divergence is confined to the transcendental ulp differences between
``math.sin`` and ``np.sin``.  Gusts are still drawn from the per-slot
``random.Random`` streams (three draws per slot per step, same order as
the scalar model) so seeded runs agree draw for draw.

numpy is an optional dependency: importing this module without it leaves
``np`` as None and the classes raise at construction.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised implicitly by import
    import numpy as np
except ImportError:  # pragma: no cover - container always has numpy
    np = None

from repro.flight.estimator import DESIGN_RATE_HZ
from repro.flight.physics import GRAVITY, QuadcopterParams


def _require_numpy() -> None:
    if np is None:  # pragma: no cover
        raise RuntimeError(
            "repro.flight.vector needs numpy; install it or use the scalar "
            "QuadcopterPhysics/AttitudeEstimator classes")


TWO_PI = 2 * math.pi


class VectorFleetPhysics:
    """``count`` quadcopters integrated as (count, ...) arrays.

    All slots share one :class:`QuadcopterParams` (the fleet flies
    identical airframes).  ``rngs`` optionally supplies one
    ``random.Random`` per slot for wind gusts; omit it for the
    deterministic, gust-free model.
    """

    def __init__(self, count: int, params: Optional[QuadcopterParams] = None,
                 rngs: Optional[Sequence] = None,
                 wind_enu: Tuple[float, float, float] = (0.0, 0.0, 0.0)):
        _require_numpy()
        if count <= 0:
            raise ValueError("count must be positive")
        if rngs is not None and len(rngs) != count:
            raise ValueError("need one rng per slot")
        self.count = count
        self.params = params or QuadcopterParams()
        self._rngs = list(rngs) if rngs is not None else None
        self.wind_enu = np.broadcast_to(
            np.asarray(wind_enu, dtype=np.float64), (count, 3)).copy()
        self.position = np.zeros((count, 3))
        self.velocity = np.zeros((count, 3))
        self.roll = np.zeros(count)
        self.pitch = np.zeros(count)
        self.yaw = np.zeros(count)
        self.rates = np.zeros((count, 3))
        self.motor_thrust = np.zeros((count, 4))
        self.on_ground = np.ones(count, dtype=bool)
        self.time_us = np.zeros(count, dtype=np.int64)
        self.last_accel_body = np.zeros((count, 3))
        self.propulsion_energy_j = np.zeros(count)

    # -- dynamics ---------------------------------------------------------------
    def step_all(self, dt_s: float, motor_commands) -> None:
        """Advance every slot by ``dt_s``.

        ``motor_commands`` is (count, 4) in ArduPilot X-configuration
        order, exactly as :meth:`QuadcopterPhysics.step` takes per
        vehicle.
        """
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        p = self.params
        commands = np.clip(np.asarray(motor_commands, dtype=np.float64),
                           0.0, 1.0)
        if commands.shape != (self.count, 4):
            raise ValueError(f"motor_commands must be ({self.count}, 4)")
        # math.exp, not np.exp: the scalar model's alpha, bit for bit.
        alpha = 1.0 - math.exp(-dt_s / p.motor_tau_s)
        thrusts = self.motor_thrust
        thrusts += (commands * p.max_thrust_per_motor_n - thrusts) * alpha

        t1, t2, t3, t4 = thrusts[:, 0], thrusts[:, 1], thrusts[:, 2], thrusts[:, 3]
        thrust = t1 + t2 + t3 + t4
        arm = p.arm_length_m * math.sqrt(0.5)
        torque_roll = arm * ((t2 + t3) - (t1 + t4))
        torque_pitch = arm * ((t1 + t3) - (t2 + t4))
        torque_yaw = p.yaw_torque_coeff * ((t1 + t2) - (t3 + t4))

        ix, iy, iz = p.inertia
        rates = self.rates
        rates[:, 0] += (torque_roll - p.angular_drag * rates[:, 0]) / ix * dt_s
        rates[:, 1] += (torque_pitch - p.angular_drag * rates[:, 1]) / iy * dt_s
        rates[:, 2] += (torque_yaw - p.angular_drag * rates[:, 2]) / iz * dt_s
        self.roll += rates[:, 0] * dt_s
        self.pitch += rates[:, 1] * dt_s
        self.yaw = (self.yaw + rates[:, 2] * dt_s) % TWO_PI

        sr, cr = np.sin(self.roll), np.cos(self.roll)
        sp, cp = np.sin(self.pitch), np.cos(self.pitch)
        sy, cy = np.sin(self.yaw), np.cos(self.yaw)
        forward_force = thrust * (-sp)
        right_force = thrust * (sr * cp)
        up_force = thrust * (cp * cr)
        force_e = forward_force * sy + right_force * cy
        force_n = forward_force * cy - right_force * sy
        force_u = up_force - p.mass_kg * GRAVITY

        gust = np.zeros((self.count, 3))
        if self._rngs is not None:
            # Per-slot scalar draws keep each slot's RNG stream identical
            # to the scalar model's (three gauss per step, in order).
            for i, rng in enumerate(self._rngs):
                gust[i, 0] = rng.gauss(0.0, 0.05)
                gust[i, 1] = rng.gauss(0.0, 0.05)
                gust[i, 2] = rng.gauss(0.0, 0.05)
        rel_v = self.velocity - self.wind_enu
        accel = np.empty((self.count, 3))
        accel[:, 0] = (force_e - p.linear_drag * rel_v[:, 0]) / p.mass_kg + gust[:, 0]
        accel[:, 1] = (force_n - p.linear_drag * rel_v[:, 1]) / p.mass_kg + gust[:, 1]
        accel[:, 2] = (force_u - p.linear_drag * rel_v[:, 2]) / p.mass_kg + gust[:, 2]
        self.last_accel_body[:, 0] = accel[:, 0] * sy + accel[:, 1] * cy
        self.last_accel_body[:, 1] = accel[:, 0] * cy - accel[:, 1] * sy
        self.last_accel_body[:, 2] = accel[:, 2]

        self.velocity += accel * dt_s
        self.position += self.velocity * dt_s

        # Ground contact, same branch order as the scalar model.
        below = self.position[:, 2] <= 0.0
        if below.any():
            self.position[below, 2] = 0.0
            sinking = below & (self.velocity[:, 2] < 0.0)
            self.velocity[sinking, 2] = 0.0
            landed = below & (thrust < p.mass_kg * GRAVITY * 0.95)
            if landed.any():
                self.on_ground[landed] = True
                self.velocity[landed] = 0.0
                self.rates[landed] = 0.0
                self.roll[landed] = 0.0
                self.pitch[landed] = 0.0
        self.on_ground[self.position[:, 2] > 0.02] = False

        self.propulsion_energy_j += self._propulsion_power_w(thrust) * dt_s
        self.time_us += int(round(dt_s * 1e6))

    def _propulsion_power_w(self, thrust) -> "np.ndarray":
        rho = 1.225
        disk_area = math.pi * (0.120) ** 2
        denom = math.sqrt(2 * rho * disk_area) * 0.55
        per_motor = np.maximum(self.motor_thrust, 0.0) ** 1.5 / denom
        power = (per_motor[:, 0] + per_motor[:, 1]
                 + per_motor[:, 2] + per_motor[:, 3])
        return np.where(thrust <= 0.0, 0.0, power)

    # -- scalar interop ---------------------------------------------------------
    def load_slot(self, i: int, physics) -> None:
        """Copy one :class:`QuadcopterPhysics` state into slot ``i``."""
        self.position[i] = physics.position
        self.velocity[i] = physics.velocity
        self.roll[i] = physics.roll
        self.pitch[i] = physics.pitch
        self.yaw[i] = physics.yaw
        self.rates[i] = physics.rates
        self.motor_thrust[i] = physics.motor_thrust
        self.on_ground[i] = physics.on_ground
        self.time_us[i] = physics.time_us
        self.last_accel_body[i] = physics._last_accel_body
        self.propulsion_energy_j[i] = physics.propulsion_energy_j
        self.wind_enu[i] = physics.wind_enu

    def slot_state(self, i: int) -> dict:
        """Plain-scalar view of slot ``i`` (for tests and reports)."""
        return {
            "position": [float(v) for v in self.position[i]],
            "velocity": [float(v) for v in self.velocity[i]],
            "roll": float(self.roll[i]),
            "pitch": float(self.pitch[i]),
            "yaw": float(self.yaw[i]),
            "rates": [float(v) for v in self.rates[i]],
            "motor_thrust": [float(v) for v in self.motor_thrust[i]],
            "on_ground": bool(self.on_ground[i]),
            "time_us": int(self.time_us[i]),
            "accel_body": [float(v) for v in self.last_accel_body[i]],
            "propulsion_energy_j": float(self.propulsion_energy_j[i]),
        }


class VectorAttitudeEstimator:
    """Complementary attitude filter over ``count`` slots at once.

    Mirrors :class:`~repro.flight.estimator.AttitudeEstimator.update`
    with arrays for the gyro/accel samples; the blend condition and the
    circular yaw correction use ``np.where`` over the same expressions.
    """

    def __init__(self, count: int, alpha: float = 0.999,
                 yaw_gain: float = 0.05):
        _require_numpy()
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.count = count
        self.alpha = alpha
        self.tau_s = 1.0 / (DESIGN_RATE_HZ * (1.0 - alpha))
        self.yaw_gain = yaw_gain
        self.roll = np.zeros(count)
        self.pitch = np.zeros(count)
        self.yaw = np.zeros(count)
        self.rates = np.zeros((count, 3))
        self.samples = 0

    def update_all(self, gyro, accel, dt_s: float,
                   heading_rad=None) -> None:
        """Fold in one (count, 3) gyro/accel sample pair per slot.

        ``heading_rad`` is an optional (count,) compass array; pass NaN
        in a slot to skip its heading correction this sample (the scalar
        model's ``heading_rad=None``).
        """
        gyro = np.asarray(gyro, dtype=np.float64)
        accel = np.asarray(accel, dtype=np.float64)
        self.rates = gyro.copy()
        gyro_roll = self.roll + gyro[:, 0] * dt_s
        gyro_pitch = self.pitch + gyro[:, 1] * dt_s
        ax, ay, az = accel[:, 0], accel[:, 1], accel[:, 2]
        accel_norm = np.sqrt(ax * ax + ay * ay + az * az)
        trusted = (0.5 * GRAVITY < accel_norm) & (accel_norm < 1.5 * GRAVITY)
        accel_roll = np.arctan2(ay, az)
        accel_pitch = np.arctan2(-ax, np.sqrt(ay * ay + az * az))
        blend = math.exp(-dt_s / self.tau_s)
        self.roll = np.where(
            trusted, blend * gyro_roll + (1 - blend) * accel_roll, gyro_roll)
        self.pitch = np.where(
            trusted, blend * gyro_pitch + (1 - blend) * accel_pitch,
            gyro_pitch)
        yaw_gyro = self.yaw + gyro[:, 2] * dt_s
        if heading_rad is None:
            self.yaw = yaw_gyro % TWO_PI
        else:
            heading = np.asarray(heading_rad, dtype=np.float64)
            have = ~np.isnan(heading)
            err = (np.where(have, heading, 0.0) - yaw_gyro
                   + math.pi) % TWO_PI - math.pi
            corrected = (yaw_gyro + self.yaw_gain * err) % TWO_PI
            self.yaw = np.where(have, corrected, yaw_gyro % TWO_PI)
        self.samples += 1


def fleet_step_rate(count: int, steps: int, dt_s: float = 0.0025,
                    hover: Optional[float] = None) -> float:
    """Drone-steps per wall-second for a ``count``-slot hover workload.

    The benchmark helper behind ``benchmarks/bench_throughput.py``'s
    flight-loop row: every slot holds a slightly perturbed hover command
    so the integrator exercises the full force/torque path.
    """
    _require_numpy()
    import time
    fleet = VectorFleetPhysics(count)
    throttle = hover if hover is not None else fleet.params.hover_throttle()
    commands = np.full((count, 4), throttle)
    commands[:, 0] += 0.01  # asymmetric, so attitude dynamics stay live
    fleet.step_all(dt_s, commands)  # warm the allocator
    start = time.perf_counter()  # repro-lint: disable=sim-clock
    for _ in range(steps):
        fleet.step_all(dt_s, commands)
    elapsed = time.perf_counter() - start  # repro-lint: disable=sim-clock
    return count * steps / elapsed
