"""6-DOF quadcopter rigid-body physics.

Parameterized to the paper's prototype: a DJI FlameWheel F450 airframe
with four T-Motor MN2213 950Kv motors and 9.5" props, all-up weight about
1.5 kg with the Pi, Navio2, and the 5000 mAh pack.

The model takes four motor thrust commands (normalized 0..1), converts
them through a first-order motor lag into thrusts, computes body torques
from the X-configuration geometry, and integrates attitude and position
with semi-implicit Euler.  Euler angles are fine here: the controller
never approaches gimbal lock in the evaluated regimes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.devices.state import DroneStateSnapshot
from repro.flight.geo import GeoPoint, offset_geopoint

GRAVITY = 9.80665


@dataclass
class QuadcopterParams:
    """Physical parameters (prototype defaults)."""

    mass_kg: float = 1.5
    arm_length_m: float = 0.225          # F450 motor arm
    max_thrust_per_motor_n: float = 9.0  # MN2213 + 9.5" prop at 12V
    motor_tau_s: float = 0.04            # ESC+prop spin-up lag
    inertia: Tuple[float, float, float] = (0.013, 0.013, 0.024)
    linear_drag: float = 0.35            # N per (m/s)
    angular_drag: float = 0.04
    yaw_torque_coeff: float = 0.016      # Nm of yaw per N of thrust

    def hover_throttle(self) -> float:
        """Normalized per-motor command that balances gravity."""
        return (self.mass_kg * GRAVITY / 4.0) / self.max_thrust_per_motor_n


class QuadcopterPhysics:
    """The vehicle's ground-truth state and dynamics."""

    def __init__(self, params: Optional[QuadcopterParams] = None,
                 home: Optional[GeoPoint] = None, rng=None,
                 wind_enu: Tuple[float, float, float] = (0.0, 0.0, 0.0)):
        self.params = params or QuadcopterParams()
        self.home = home or GeoPoint(43.6084298, -85.8110359, 0.0)
        self._rng = rng
        self.wind_enu = wind_enu
        # State: ENU position/velocity, Euler attitude, body rates.
        self.position = [0.0, 0.0, 0.0]
        self.velocity = [0.0, 0.0, 0.0]
        self.roll = 0.0
        self.pitch = 0.0
        self.yaw = 0.0
        self.rates = [0.0, 0.0, 0.0]
        # Actual (lagged) motor thrusts in newtons.
        self.motor_thrust = [0.0, 0.0, 0.0, 0.0]
        self.on_ground = True
        self.time_us = 0
        self._last_accel_body = (0.0, 0.0, 0.0)
        #: cumulative propulsion energy drawn, joules (for billing/power).
        self.propulsion_energy_j = 0.0
        #: Memoize snapshot() between steps.  Sensors on the same tick all
        #: sample identical ground truth, so the geodetic conversion and
        #: snapshot construction run once per step instead of once per
        #: sensor read.  False rebuilds every call — the oracle the
        #: equivalence tests and throughput benchmarks A/B against.
        #: Direct state pokes (tests) must be followed by step() before
        #: the cached view refreshes.
        self.cache_snapshots = True
        self._state_version = 0
        self._snapshot_cache: Optional[DroneStateSnapshot] = None
        self._snapshot_version = -1

    # -- state access -----------------------------------------------------------
    def geoposition(self) -> GeoPoint:
        return offset_geopoint(
            self.home, self.position[0], self.position[1], self.position[2]
        )

    def snapshot(self) -> DroneStateSnapshot:
        """The ground truth that sensors sample."""
        if self.cache_snapshots and self._snapshot_version == self._state_version:
            return self._snapshot_cache
        geo = self.geoposition()
        snap = DroneStateSnapshot(
            time_us=self.time_us,
            latitude=geo.latitude,
            longitude=geo.longitude,
            altitude_m=self.position[2],
            position_enu=tuple(self.position),
            velocity_enu=tuple(self.velocity),
            accel_body=self._last_accel_body,
            roll=self.roll,
            pitch=self.pitch,
            yaw=self.yaw,
            angular_rates=tuple(self.rates),
            on_ground=self.on_ground,
        )
        if self.cache_snapshots:
            self._snapshot_cache = snap
            self._snapshot_version = self._state_version
        return snap

    def total_thrust(self) -> float:
        return sum(self.motor_thrust)

    def propulsion_power_w(self) -> float:
        """Electrical power drawn by the motors (induced-power model)."""
        thrust = self.total_thrust()
        if thrust <= 0.0:
            return 0.0
        # P = T^(3/2) / sqrt(2 rho A) / figure-of-merit, per rotor.
        rho = 1.225
        disk_area = math.pi * (0.120) ** 2  # 9.5" prop
        per_motor = [
            (t ** 1.5) / math.sqrt(2 * rho * disk_area) / 0.55
            for t in self.motor_thrust
        ]
        return sum(per_motor)

    # -- dynamics -------------------------------------------------------------------
    def step(self, dt_s: float, motor_commands: Tuple[float, float, float, float]) -> None:
        """Advance the vehicle by ``dt_s`` under the given motor commands.

        Motor order (X configuration, ArduPilot numbering): 1 front-right
        (CCW), 2 back-left (CCW), 3 front-left (CW), 4 back-right (CW).
        """
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        p = self.params
        commands = [min(1.0, max(0.0, c)) for c in motor_commands]
        # First-order motor response toward commanded thrust.
        alpha = 1.0 - math.exp(-dt_s / p.motor_tau_s)
        for i in range(4):
            target = commands[i] * p.max_thrust_per_motor_n
            self.motor_thrust[i] += (target - self.motor_thrust[i]) * alpha

        t1, t2, t3, t4 = self.motor_thrust
        thrust = t1 + t2 + t3 + t4
        # X config: motors 3,2 on the left/back-left, 1,4 right... compute
        # torques with the standard 45-degree arm projection.
        arm = p.arm_length_m * math.sqrt(0.5)
        torque_roll = arm * ((t2 + t3) - (t1 + t4))    # left minus right
        torque_pitch = arm * ((t1 + t3) - (t2 + t4))   # front minus back
        torque_yaw = p.yaw_torque_coeff * ((t1 + t2) - (t3 + t4))  # CCW - CW

        # Angular dynamics.
        ix, iy, iz = p.inertia
        rp, rq, rr = self.rates
        rp += (torque_roll - p.angular_drag * rp) / ix * dt_s
        rq += (torque_pitch - p.angular_drag * rq) / iy * dt_s
        rr += (torque_yaw - p.angular_drag * rr) / iz * dt_s
        self.rates = [rp, rq, rr]
        self.roll += rp * dt_s
        self.pitch += rq * dt_s
        self.yaw = (self.yaw + rr * dt_s) % (2 * math.pi)

        # Thrust direction.  Conventions: yaw 0 faces north, positive
        # clockwise (compass); positive roll = right side down (accelerates
        # right); positive pitch = nose up (accelerates backward).
        sr, cr = math.sin(self.roll), math.cos(self.roll)
        sp, cp = math.sin(self.pitch), math.cos(self.pitch)
        sy, cy = math.sin(self.yaw), math.cos(self.yaw)
        forward_force = thrust * (-sp)          # nose up -> backward
        right_force = thrust * (sr * cp)        # right down -> right
        up_force = thrust * (cp * cr)
        # Body-forward in ENU is (sin yaw, cos yaw); body-right is
        # (cos yaw, -sin yaw) for compass yaw.
        force_e = forward_force * sy + right_force * cy
        force_n = forward_force * cy - right_force * sy
        force_u = up_force - p.mass_kg * GRAVITY

        gust = (0.0, 0.0, 0.0)
        if self._rng is not None:
            gust = tuple(self._rng.gauss(0.0, 0.05) for _ in range(3))
        rel_v = [self.velocity[i] - self.wind_enu[i] for i in range(3)]
        accel = [
            (force_e - p.linear_drag * rel_v[0]) / p.mass_kg + gust[0],
            (force_n - p.linear_drag * rel_v[1]) / p.mass_kg + gust[1],
            (force_u - p.linear_drag * rel_v[2]) / p.mass_kg + gust[2],
        ]
        # Dynamic acceleration rotated into the body frame (yaw only; the
        # small-tilt approximation is plenty for the IMU model, which adds
        # the gravity components itself).
        self._last_accel_body = (
            accel[0] * sy + accel[1] * cy,
            accel[0] * cy - accel[1] * sy,
            accel[2],
        )

        for i in range(3):
            self.velocity[i] += accel[i] * dt_s
        for i in range(3):
            self.position[i] += self.velocity[i] * dt_s

        # Ground contact.
        if self.position[2] <= 0.0:
            self.position[2] = 0.0
            if self.velocity[2] < 0.0:
                self.velocity[2] = 0.0
            if thrust < p.mass_kg * GRAVITY * 0.95:
                self.on_ground = True
                self.velocity = [0.0, 0.0, 0.0]
                self.rates = [0.0, 0.0, 0.0]
                self.roll = self.pitch = 0.0
        if self.position[2] > 0.02:
            self.on_ground = False

        self.propulsion_energy_j += self.propulsion_power_w() * dt_s
        self.time_us += int(round(dt_s * 1e6))
        self._state_version += 1
