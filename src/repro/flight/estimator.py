"""State estimation: complementary attitude filter + position fusion.

ArduPilot's fast loop "processes values from one or more inertial motion
units and adjusts the motors" — the estimator is the first half of that.
Attitude comes from gyro integration corrected slowly by the
accelerometer's gravity direction; position/velocity fuse GPS and
barometer with simple first-order corrections.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.devices.imu import GRAVITY, ImuReading


#: The loop rate `alpha` is tuned against.  The blend weight must scale
#: with the actual sample interval or the filter's time constant changes
#: with loop rate: SITLs running the fast loop slower than 400 Hz (the
#: fleet harness uses 50 Hz) would correct gyro drift 8x+ more weakly,
#: and the resulting steady attitude bias (~gyro_bias * tau) is enough to
#: park a hover several metres off target.
DESIGN_RATE_HZ = 400.0


class AttitudeEstimator:
    """Complementary filter over IMU samples.

    ``alpha`` is the gyro weight per sample *at 400 Hz*; internally it is
    converted to a time constant so the filter behaves identically at any
    loop rate.
    """

    def __init__(self, alpha: float = 0.999, yaw_gain: float = 0.05):
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.alpha = alpha
        # (1 - alpha) per sample at DESIGN_RATE_HZ == dt/tau per second.
        self.tau_s = 1.0 / (DESIGN_RATE_HZ * (1.0 - alpha))
        self.yaw_gain = yaw_gain
        self.roll = 0.0
        self.pitch = 0.0
        self.yaw = 0.0
        self.rates: Tuple[float, float, float] = (0.0, 0.0, 0.0)
        self.samples = 0

    def update(self, imu: ImuReading, dt_s: float,
               heading_rad: Optional[float] = None) -> None:
        """Fold in one IMU sample (and optionally a compass heading)."""
        p, q, r = imu.gyro
        self.rates = (p, q, r)
        gyro_roll = self.roll + p * dt_s
        gyro_pitch = self.pitch + q * dt_s
        ax, ay, az = imu.accel
        # Gravity direction gives absolute roll/pitch when not accelerating
        # hard; weight it by (1 - alpha).
        accel_norm = math.sqrt(ax * ax + ay * ay + az * az)
        if 0.5 * GRAVITY < accel_norm < 1.5 * GRAVITY:
            accel_roll = math.atan2(ay, az)
            accel_pitch = math.atan2(-ax, math.sqrt(ay * ay + az * az))
            alpha = math.exp(-dt_s / self.tau_s)
            self.roll = alpha * gyro_roll + (1 - alpha) * accel_roll
            self.pitch = alpha * gyro_pitch + (1 - alpha) * accel_pitch
        else:
            self.roll = gyro_roll
            self.pitch = gyro_pitch
        if heading_rad is not None:
            yaw_gyro = self.yaw + r * dt_s
            # Blend on the circle to avoid wrap glitches; the compass
            # arrives at only 10 Hz so it gets its own, larger gain.
            err = (heading_rad - yaw_gyro + math.pi) % (2 * math.pi) - math.pi
            self.yaw = (yaw_gyro + self.yaw_gain * err) % (2 * math.pi)
        else:
            self.yaw = (self.yaw + r * dt_s) % (2 * math.pi)
        self.samples += 1


class PositionEstimator:
    """First-order GPS/baro fusion in the local ENU frame."""

    def __init__(self, gps_gain: float = 0.15, baro_gain: float = 0.2):
        self.gps_gain = gps_gain
        self.baro_gain = baro_gain
        self.position = [0.0, 0.0, 0.0]
        self.velocity = [0.0, 0.0, 0.0]
        self._initialized = False

    def predict(self, accel_enu: Tuple[float, float, float], dt_s: float) -> None:
        for i in range(3):
            self.velocity[i] += accel_enu[i] * dt_s
            self.position[i] += self.velocity[i] * dt_s

    def correct_gps(self, east: float, north: float,
                    vel_e: float, vel_n: float) -> None:
        if not self._initialized:
            self.position[0], self.position[1] = east, north
            self.velocity[0], self.velocity[1] = vel_e, vel_n
            self._initialized = True
            return
        self.position[0] += self.gps_gain * (east - self.position[0])
        self.position[1] += self.gps_gain * (north - self.position[1])
        self.velocity[0] += self.gps_gain * (vel_e - self.velocity[0])
        self.velocity[1] += self.gps_gain * (vel_n - self.velocity[1])

    def correct_baro(self, altitude_m: float) -> None:
        self.position[2] += self.baro_gain * (altitude_m - self.position[2])
