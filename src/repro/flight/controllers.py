"""The PID control cascade.

Position error → desired velocity → desired lean angles → desired body
rates → motor torques, the standard multicopter structure (and
ArduPilot's).  Gains are tuned for the F450-class parameters in
:mod:`repro.flight.physics`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple


class Pid:
    """A scalar PID with output limiting and integrator clamping."""

    def __init__(self, kp: float, ki: float = 0.0, kd: float = 0.0,
                 limit: float = float("inf"), i_limit: float = float("inf")):
        self.kp = kp
        self.ki = ki
        self.kd = kd
        self.limit = limit
        self.i_limit = i_limit
        self._integral = 0.0
        self._last_error = None

    def reset(self) -> None:
        self._integral = 0.0
        self._last_error = None

    def update(self, error: float, dt_s: float) -> float:
        self._integral += error * dt_s
        self._integral = max(-self.i_limit, min(self.i_limit, self._integral))
        derivative = 0.0
        if self._last_error is not None and dt_s > 0:
            derivative = (error - self._last_error) / dt_s
        self._last_error = error
        out = self.kp * error + self.ki * self._integral + self.kd * derivative
        return max(-self.limit, min(self.limit, out))


@dataclass
class AttitudeTarget:
    roll: float = 0.0
    pitch: float = 0.0
    yaw: float = 0.0
    climb_rate: float = 0.0  # m/s, +up


class AttitudeController:
    """Angle → rate → torque, run in the 400 Hz fast loop."""

    def __init__(self):
        self.angle_p = 6.0           # desired rate per radian of error
        self.rate_roll = Pid(0.10, 0.05, 0.003, limit=0.8, i_limit=0.4)
        self.rate_pitch = Pid(0.10, 0.05, 0.003, limit=0.8, i_limit=0.4)
        self.rate_yaw = Pid(0.20, 0.02, 0.0, limit=0.4, i_limit=0.3)

    def reset(self) -> None:
        for pid in (self.rate_roll, self.rate_pitch, self.rate_yaw):
            pid.reset()

    def update(self, target: AttitudeTarget, est, dt_s: float) -> Tuple[float, float, float]:
        """Returns normalized (roll, pitch, yaw) torque demands."""
        desired_p = self.angle_p * self._angle_err(target.roll, est.roll)
        desired_q = self.angle_p * self._angle_err(target.pitch, est.pitch)
        desired_r = 2.5 * self._angle_err(target.yaw, est.yaw)
        p, q, r = est.rates
        return (
            self.rate_roll.update(desired_p - p, dt_s),
            self.rate_pitch.update(desired_q - q, dt_s),
            self.rate_yaw.update(desired_r - r, dt_s),
        )

    @staticmethod
    def _angle_err(target: float, actual: float) -> float:
        return (target - actual + math.pi) % (2 * math.pi) - math.pi


class AltitudeController:
    """Altitude → climb rate → collective throttle adjustment."""

    def __init__(self, hover_throttle: float):
        self.hover_throttle = hover_throttle
        self.pos_p = 1.0
        self.vel = Pid(0.25, 0.10, 0.0, limit=0.35, i_limit=0.25)
        self.max_climb = 2.5   # m/s
        self.max_descend = 1.5

    def reset(self) -> None:
        self.vel.reset()

    def update(self, target_alt: float, alt: float, climb: float, dt_s: float) -> float:
        """Returns collective throttle (0..1)."""
        desired_climb = self.pos_p * (target_alt - alt)
        desired_climb = max(-self.max_descend, min(self.max_climb, desired_climb))
        throttle = self.hover_throttle + self.vel.update(desired_climb - climb, dt_s)
        return max(0.0, min(1.0, throttle))


class PositionController:
    """Horizontal position → velocity → lean angles."""

    def __init__(self, max_speed_ms: float = 8.0, max_lean_rad: float = math.radians(25)):
        self.pos_p = 0.4
        self.vel_e = Pid(0.10, 0.02, 0.05, limit=max_lean_rad, i_limit=0.2)
        self.vel_n = Pid(0.10, 0.02, 0.05, limit=max_lean_rad, i_limit=0.2)
        self.max_speed_ms = max_speed_ms
        self.max_lean_rad = max_lean_rad

    def reset(self) -> None:
        self.vel_e.reset()
        self.vel_n.reset()

    def update(self, target_enu, position, velocity, yaw: float,
               dt_s: float, speed_limit: float = None) -> Tuple[float, float]:
        """Returns desired (roll, pitch) in radians."""
        limit = min(self.max_speed_ms, speed_limit or self.max_speed_ms)
        err_e = target_enu[0] - position[0]
        err_n = target_enu[1] - position[1]
        desired_ve = self.pos_p * err_e
        desired_vn = self.pos_p * err_n
        speed = math.hypot(desired_ve, desired_vn)
        if speed > limit:
            scale = limit / speed
            desired_ve *= scale
            desired_vn *= scale
        # Accel demands in ENU, expressed as lean angles.
        lean_e = self.vel_e.update(desired_ve - velocity[0], dt_s)
        lean_n = self.vel_n.update(desired_vn - velocity[1], dt_s)
        # Rotate into the body frame given compass yaw (0 = north).
        # Accelerating forward needs nose DOWN, i.e. negative pitch.
        sy, cy = math.sin(yaw), math.cos(yaw)
        pitch = -(lean_n * cy + lean_e * sy)
        roll = (lean_e * cy - lean_n * sy)
        clamp = self.max_lean_rad
        return (
            max(-clamp, min(clamp, roll)),
            max(-clamp, min(clamp, pitch)),
        )


def mix_motors(throttle: float, torque_roll: float, torque_pitch: float,
               torque_yaw: float) -> Tuple[float, float, float, float]:
    """X-configuration mixer: normalized motor commands.

    Motor order matches :meth:`QuadcopterPhysics.step`: 1 front-right CCW,
    2 back-left CCW, 3 front-left CW, 4 back-right CW.
    """
    m1 = throttle - torque_roll + torque_pitch + torque_yaw
    m2 = throttle + torque_roll - torque_pitch + torque_yaw
    m3 = throttle + torque_roll + torque_pitch - torque_yaw
    m4 = throttle - torque_roll - torque_pitch - torque_yaw
    return tuple(max(0.0, min(1.0, m)) for m in (m1, m2, m3, m4))
