"""The flight software stack.

An ArduPilot-Copter-like flight controller running against a 6-DOF
quadcopter physics model:

* :mod:`repro.flight.physics` — rigid-body quadcopter with a motor mixer,
  parameterized to the prototype airframe (DJI F450, MN2213 motors);
* :mod:`repro.flight.estimator` — complementary-filter attitude estimate
  plus GPS/baro position fusion;
* :mod:`repro.flight.controllers` — the PID cascade (rate → attitude →
  velocity → position);
* :mod:`repro.flight.autopilot` — mode logic (GUIDED/LOITER/AUTO/RTL/...),
  the 400 Hz fast loop, MAVLink command handling, telemetry;
* :mod:`repro.flight.geofence` — AnDrone's modified geofence whose breach
  action recovers and continues instead of failsafe-landing;
* :mod:`repro.flight.logs` — dataflash-style logging and the Attitude
  Estimate Divergence analyzer used in Section 6.2;
* :mod:`repro.flight.sitl` — the software-in-the-loop harness of
  Section 6.6.
"""

from repro.flight.geo import GeoPoint, enu_between, offset_geopoint
from repro.flight.physics import QuadcopterPhysics, QuadcopterParams
from repro.flight.estimator import AttitudeEstimator
from repro.flight.geofence import Geofence, GeofenceBreach
from repro.flight.autopilot import Autopilot
from repro.flight.logs import (
    FlightLog,
    analyze_attitude_divergence,
    analyze_gps_glitches,
    analyze_vibration,
)
from repro.flight.sitl import SitlDrone

__all__ = [
    "GeoPoint",
    "enu_between",
    "offset_geopoint",
    "QuadcopterPhysics",
    "QuadcopterParams",
    "AttitudeEstimator",
    "Geofence",
    "GeofenceBreach",
    "Autopilot",
    "FlightLog",
    "analyze_attitude_divergence",
    "analyze_gps_glitches",
    "analyze_vibration",
    "SitlDrone",
]
