"""Geodesy helpers: geographic coordinates and local ENU frames.

Uses the equirectangular approximation, accurate to centimeters over the
few-kilometer scales drone flights cover.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

M_PER_DEG_LAT = 111_320.0


@dataclass(frozen=True)
class GeoPoint:
    """Latitude/longitude in degrees, altitude in meters (above home)."""

    latitude: float
    longitude: float
    altitude_m: float = 0.0

    def horizontal_distance_to(self, other: "GeoPoint") -> float:
        east, north, _ = enu_between(self, other)
        return math.hypot(east, north)

    def distance_to(self, other: "GeoPoint") -> float:
        east, north, up = enu_between(self, other)
        return math.sqrt(east * east + north * north + up * up)


def enu_between(origin: GeoPoint, target: GeoPoint) -> Tuple[float, float, float]:
    """(east, north, up) meters from origin to target."""
    north = (target.latitude - origin.latitude) * M_PER_DEG_LAT
    east = (
        (target.longitude - origin.longitude)
        * M_PER_DEG_LAT
        * math.cos(math.radians(origin.latitude))
    )
    up = target.altitude_m - origin.altitude_m
    return east, north, up


def offset_geopoint(origin: GeoPoint, east: float, north: float, up: float = 0.0) -> GeoPoint:
    """The point east/north/up meters from origin."""
    lat = origin.latitude + north / M_PER_DEG_LAT
    lon = origin.longitude + east / (
        M_PER_DEG_LAT * math.cos(math.radians(origin.latitude))
    )
    return GeoPoint(lat, lon, origin.altitude_m + up)


def bearing_rad(origin: GeoPoint, target: GeoPoint) -> float:
    """Bearing from origin to target, radians clockwise from north."""
    east, north, _ = enu_between(origin, target)
    return math.atan2(east, north) % (2 * math.pi)
