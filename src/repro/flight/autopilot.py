"""The flight controller (ArduPilot Copter's role).

Runs a 400 Hz fast loop (estimator + attitude control), slower position
and navigation logic, ArduPilot's mode set (STABILIZE, GUIDED, LOITER,
AUTO, RTL, LAND), MAVLink command handling, and telemetry generation.

The autopilot is deliberately split from time: callers (the SITL harness
or the flight-container thread) call :meth:`control_step` with the actual
elapsed ``dt`` and feed the returned motor commands to the physics.  That
is exactly how scheduling jitter on the real system perturbs control — a
late fast loop integrates a larger dt — so the Section 6.2 stability
experiment exercises the same coupling.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Tuple

from repro.devices.gps import GpsFix
from repro.flight.controllers import (
    AltitudeController,
    AttitudeController,
    AttitudeTarget,
    PositionController,
    mix_motors,
)
from repro.flight.estimator import AttitudeEstimator, PositionEstimator
from repro.flight.geo import GeoPoint, enu_between, offset_geopoint
from repro.flight.geofence import Geofence, GeofenceBreach
from repro.flight.logs import FlightLog
from repro.mavlink.enums import (
    CUSTOM_MODE_ENABLED,
    SAFETY_ARMED,
    CopterMode,
    MavCommand,
    MavResult,
    MavState,
)
from repro.mavlink.messages import (
    Attitude,
    CommandLong,
    GlobalPositionInt,
    Heartbeat,
    MissionItem,
    SetPositionTarget,
)

#: Horizontal acceptance radius for waypoints, meters (ArduPilot default 2m).
WP_ACCEPT_M = 2.0

#: RTL may begin its vertical descent anywhere within this radius of the
#: pad.  The hover equilibrium under estimation noise can settle just
#: outside WP_ACCEPT_M, so gating the descent on waypoint-grade precision
#: leaves RTL hovering forever on unlucky trajectories (fleet soaks under
#: chaos hit this); landing descends straight down from within the pad
#: area regardless.
RTL_LAND_ACCEPT_M = 2.0 * WP_ACCEPT_M


class DirectSensors:
    """Sensor frontend that owns its devices (standalone / SITL mode)."""

    def __init__(self, physics, rng=None):
        from repro.devices import Barometer, GpsReceiver, Imu, Magnetometer

        provider = physics.snapshot
        self._imu = Imu(state_provider=provider, rng=rng)
        self._gps = GpsReceiver(state_provider=provider, rng=rng)
        self._baro = Barometer(state_provider=provider, rng=rng)
        self._mag = Magnetometer(state_provider=provider, rng=rng)
        self._h_imu = self._imu.open("flight-controller")
        self._h_gps = self._gps.open("flight-controller")
        self._h_baro = self._baro.open("flight-controller")
        self._h_mag = self._mag.open("flight-controller")

    def read_imu(self):
        return self._imu.read(self._h_imu)

    def read_gps(self) -> GpsFix:
        return self._gps.read_fix(self._h_gps)

    def read_baro_alt(self) -> float:
        return self._baro.read_altitude(self._h_baro)

    def read_heading(self) -> float:
        return self._mag.read_heading(self._h_mag)


class Autopilot:
    """The flight controller state machine and control stack."""

    def __init__(self, sensors, home: GeoPoint, hover_throttle: float = 0.41,
                 log: Optional[FlightLog] = None, truth_provider=None):
        self.sensors = sensors
        self.home = home
        self.mode = CopterMode.STABILIZE
        self.armed = False
        self.boot_time_us = 0
        self.time_us = 0
        self.attitude_est = AttitudeEstimator()
        self.position_est = PositionEstimator()
        self.att_ctrl = AttitudeController()
        self.alt_ctrl = AltitudeController(hover_throttle)
        self.pos_ctrl = PositionController()
        self.log = log
        #: optional ground-truth provider for log comparison (AED analysis).
        self.truth_provider = truth_provider
        # Targets.
        self.target_enu = [0.0, 0.0, 0.0]
        self.target_yaw: Optional[float] = None
        self.velocity_target: Optional[Tuple[float, float, float]] = None
        self.speed_limit_ms: Optional[float] = None
        # Mission state (AUTO mode).
        self.mission: List[MissionItem] = []
        self.mission_index = 0
        self._loiter_until_us: Optional[int] = None
        # Geofence.
        self.fence: Optional[Geofence] = None
        self.fence_enabled = False
        self.on_breach: Optional[Callable[[GeofenceBreach], None]] = None
        self._breach_active = False
        # Sensor scheduling accumulators (microseconds since last read).
        self._since_gps = 1_000_000
        self._since_baro = 1_000_000
        self._since_mag = 1_000_000
        self.fast_loop_count = 0
        self.status_texts: List[str] = []

    # ------------------------------------------------------------- telemetry
    def position(self) -> GeoPoint:
        east, north, up = self.position_est.position
        return offset_geopoint(self.home, east, north, up)

    def make_heartbeat(self) -> Heartbeat:
        base = CUSTOM_MODE_ENABLED | (SAFETY_ARMED if self.armed else 0)
        status = MavState.ACTIVE if self.armed else MavState.STANDBY
        return Heartbeat(custom_mode=int(self.mode), base_mode=base,
                         system_status=int(status))

    def make_global_position(self) -> GlobalPositionInt:
        geo = self.position()
        ve, vn, vu = self.position_est.velocity
        return GlobalPositionInt(
            time_boot_ms=self.time_us // 1000,
            lat=int(round(geo.latitude * 1e7)),
            lon=int(round(geo.longitude * 1e7)),
            alt=int(round((geo.altitude_m) * 1000)),
            relative_alt=int(round(self.position_est.position[2] * 1000)),
            vx=int(round(vn * 100)), vy=int(round(ve * 100)),
            vz=int(round(-vu * 100)),
            hdg=int(round(math.degrees(self.attitude_est.yaw) * 100)) % 36000,
        )

    def make_attitude(self) -> Attitude:
        est = self.attitude_est
        return Attitude(
            time_boot_ms=self.time_us // 1000,
            roll=est.roll, pitch=est.pitch, yaw=est.yaw,
            rollspeed=est.rates[0], pitchspeed=est.rates[1], yawspeed=est.rates[2],
        )

    # -------------------------------------------------------------- commands
    def set_mode(self, mode: CopterMode) -> MavResult:
        if mode == self.mode:
            return MavResult.ACCEPTED
        self.mode = mode
        self.att_ctrl.reset()
        self._althold_target = None
        if mode in (CopterMode.LOITER, CopterMode.POSHOLD, CopterMode.BRAKE):
            self._hold_current_position()
        elif mode is CopterMode.RTL:
            self.target_enu = [0.0, 0.0, max(15.0, self.position_est.position[2])]
            self.velocity_target = None
        elif mode is CopterMode.AUTO:
            self.mission_index = 0
            self._loiter_until_us = None
        elif mode is CopterMode.GUIDED:
            self._hold_current_position()
        return MavResult.ACCEPTED

    def _hold_current_position(self) -> None:
        self.target_enu = list(self.position_est.position)
        self.velocity_target = None

    def _althold_alt(self) -> float:
        """ALT_HOLD's captured altitude (set on mode entry)."""
        if getattr(self, "_althold_target", None) is None:
            self._althold_target = self.position_est.position[2]
        return self._althold_target

    def handle_command(self, cmd: CommandLong) -> MavResult:
        """Execute a COMMAND_LONG; returns the MAV_RESULT for the ack."""
        command = MavCommand(cmd.command) if cmd.command in MavCommand._value2member_map_ \
            else None
        if command is None:
            return MavResult.UNSUPPORTED
        if command is MavCommand.COMPONENT_ARM_DISARM:
            want_armed = cmd.param1 >= 0.5
            if want_armed and self.mode not in (
                CopterMode.GUIDED, CopterMode.LOITER, CopterMode.STABILIZE,
                CopterMode.AUTO, CopterMode.ALT_HOLD,
            ):
                return MavResult.DENIED
            self.armed = want_armed
            return MavResult.ACCEPTED
        if command is MavCommand.DO_SET_MODE:
            try:
                return self.set_mode(CopterMode(int(cmd.param2)))
            except ValueError:
                return MavResult.DENIED
        if command is MavCommand.NAV_TAKEOFF:
            if not self.armed:
                return MavResult.DENIED
            if self.mode is not CopterMode.GUIDED:
                self.set_mode(CopterMode.GUIDED)
            self.target_enu = [
                self.position_est.position[0],
                self.position_est.position[1],
                max(1.0, cmd.param7),
            ]
            self.velocity_target = None
            return MavResult.ACCEPTED
        if command is MavCommand.NAV_WAYPOINT:
            if self.mode is not CopterMode.GUIDED:
                return MavResult.DENIED
            target = GeoPoint(cmd.param5, cmd.param6, cmd.param7)
            east, north, up = enu_between(self.home, target)
            self.target_enu = [east, north, target.altitude_m]
            self.velocity_target = None
            return MavResult.ACCEPTED
        if command is MavCommand.NAV_LAND:
            self.set_mode(CopterMode.LAND)
            return MavResult.ACCEPTED
        if command is MavCommand.NAV_RETURN_TO_LAUNCH:
            self.set_mode(CopterMode.RTL)
            return MavResult.ACCEPTED
        if command is MavCommand.NAV_LOITER_UNLIM:
            self.set_mode(CopterMode.LOITER)
            return MavResult.ACCEPTED
        if command is MavCommand.DO_CHANGE_SPEED:
            if cmd.param2 <= 0:
                return MavResult.DENIED
            self.speed_limit_ms = cmd.param2
            return MavResult.ACCEPTED
        if command is MavCommand.CONDITION_YAW:
            self.target_yaw = math.radians(cmd.param1)
            return MavResult.ACCEPTED
        if command is MavCommand.DO_FENCE_ENABLE:
            self.fence_enabled = cmd.param1 >= 0.5
            return MavResult.ACCEPTED
        if command in (MavCommand.DO_SET_HOME, MavCommand.DO_DIGICAM_CONTROL,
                       MavCommand.DO_MOUNT_CONTROL, MavCommand.SET_MESSAGE_INTERVAL,
                       MavCommand.REQUEST_MESSAGE):
            return MavResult.ACCEPTED
        return MavResult.UNSUPPORTED

    def handle_position_target(self, msg: SetPositionTarget) -> MavResult:
        """GUIDED-mode position/velocity target."""
        if self.mode is not CopterMode.GUIDED:
            return MavResult.DENIED
        use_position = not (msg.type_mask & 0x0007)
        use_velocity = not (msg.type_mask & 0x0038)
        if use_position:
            target = GeoPoint(msg.lat_int / 1e7, msg.lon_int / 1e7, msg.alt)
            east, north, _ = enu_between(self.home, target)
            self.target_enu = [east, north, msg.alt]
            self.velocity_target = None
        elif use_velocity:
            # vx is north, vy east in MAVLink NED convention.
            self.velocity_target = (msg.vy, msg.vx, -msg.vz)
        if msg.type_mask & 0x0400 == 0 and msg.yaw:
            self.target_yaw = msg.yaw
        return MavResult.ACCEPTED

    def upload_mission(self, items: List[MissionItem]) -> None:
        self.mission = list(items)
        self.mission_index = 0

    # -------------------------------------------------------------- geofence
    def set_geofence(self, fence: Optional[Geofence], enabled: bool = True) -> None:
        self.fence = fence
        self.fence_enabled = enabled and fence is not None
        self._breach_active = False

    def check_fence(self) -> Optional[GeofenceBreach]:
        if not self.fence_enabled or self.fence is None:
            return None
        # Like ArduPilot, the fence only engages once armed and airborne.
        if not self.armed or self.position_est.position[2] < 1.0:
            return None
        position = self.position()
        breach = self.fence.check(position)
        if breach is None:
            # Hysteresis: only consider the excursion over once the vehicle
            # is comfortably back inside, so estimate noise at the boundary
            # can't retrigger the breach handler.
            if (self._breach_active and self.fence.distance_from_center(position)
                    < 0.92 * self.fence.radius_m):
                self._breach_active = False
            return None
        if self._breach_active:
            return None   # already being handled
        self._breach_active = True
        self.status_texts.append(str(breach))
        if self.on_breach is not None:
            self.on_breach(breach)
        return breach

    # -------------------------------------------------------------- fast loop
    def control_step(self, dt_s: float) -> Tuple[float, float, float, float]:
        """One fast-loop iteration; returns motor commands for physics."""
        self.fast_loop_count += 1
        self.time_us += int(round(dt_s * 1e6))
        self._read_sensors(dt_s)
        if self.log is not None and self.truth_provider is not None:
            truth = self.truth_provider()
            self.log.record(
                self.time_us, self.attitude_est, truth,
                tuple(self.position_est.position), self.mode.name,
            )
        if not self.armed:
            return (0.0, 0.0, 0.0, 0.0)

        self._navigate(dt_s)
        desired_roll, desired_pitch = 0.0, 0.0
        target_alt = self.target_enu[2]
        if self.velocity_target is not None:
            ve, vn, vu = self.velocity_target
            # Velocity mode: chase a moving virtual target point.
            self.target_enu[0] += ve * dt_s
            self.target_enu[1] += vn * dt_s
            self.target_enu[2] += vu * dt_s
            target_alt = self.target_enu[2]
        if self.mode in (CopterMode.STABILIZE, CopterMode.ALT_HOLD):
            # Pilot-input modes with no RC attached: hold a level
            # attitude; the vehicle weathervanes/drifts with the wind.
            desired_roll, desired_pitch = 0.0, 0.0
        else:
            desired_roll, desired_pitch = self.pos_ctrl.update(
                self.target_enu, self.position_est.position,
                self.position_est.velocity, self.attitude_est.yaw, dt_s,
                self.speed_limit_ms,
            )
        if self.mode is CopterMode.LAND:
            target_alt = max(-1.0, self.position_est.position[2] - 1.0)
        if self.mode is CopterMode.STABILIZE:
            # No altitude hold either: constant hover throttle.
            throttle = self.alt_ctrl.hover_throttle
        elif self.mode is CopterMode.ALT_HOLD:
            throttle = self.alt_ctrl.update(
                self._althold_alt(), self.position_est.position[2],
                self.position_est.velocity[2], dt_s,
            )
        else:
            throttle = self.alt_ctrl.update(
                target_alt, self.position_est.position[2],
                self.position_est.velocity[2], dt_s,
            )
        yaw_target = self.target_yaw if self.target_yaw is not None else self.attitude_est.yaw
        torques = self.att_ctrl.update(
            AttitudeTarget(desired_roll, desired_pitch, yaw_target),
            self.attitude_est, dt_s,
        )
        if self.mode is CopterMode.LAND and self.position_est.position[2] < 0.08:
            self.armed = False
            return (0.0, 0.0, 0.0, 0.0)
        return mix_motors(throttle, *torques)

    def _read_sensors(self, dt_s: float) -> None:
        dt_us = int(round(dt_s * 1e6))
        self._since_gps += dt_us
        self._since_baro += dt_us
        self._since_mag += dt_us
        heading = None
        if self._since_mag >= 100_000:   # 10 Hz compass
            self._since_mag = 0
            heading = self.sensors.read_heading()
        imu = self.sensors.read_imu()
        if self.log is not None:
            self.log.record_imu(self.time_us, imu.accel[2])
        self.attitude_est.update(imu, dt_s, heading)
        # INS-style dead reckoning between GPS fixes: horizontal
        # acceleration follows from the estimated lean angles (thrust tilt)
        # minus an airframe drag term.
        est = self.attitude_est
        a_forward = -math.tan(max(-0.6, min(0.6, est.pitch))) * 9.80665
        a_right = math.tan(max(-0.6, min(0.6, est.roll))) * 9.80665
        sy, cy = math.sin(est.yaw), math.cos(est.yaw)
        drag = 0.23
        accel_e = a_forward * sy + a_right * cy - drag * self.position_est.velocity[0]
        accel_n = a_forward * cy - a_right * sy - drag * self.position_est.velocity[1]
        self.position_est.predict((accel_e, accel_n, 0.0), dt_s)
        if self._since_baro >= 40_000:   # 25 Hz baro
            self._since_baro = 0
            self.position_est.correct_baro(self.sensors.read_baro_alt())
        if self._since_gps >= 200_000:   # 5 Hz GPS
            self._since_gps = 0
            fix = self.sensors.read_gps()
            east, north, _ = enu_between(self.home, GeoPoint(fix.latitude, fix.longitude))
            if self.log is not None:
                self.log.record_gps(self.time_us, east, north)
            # Fuse the receiver's Doppler velocity.  Differencing consecutive
            # position fixes amplifies the white position noise ~40x at 5 Hz
            # (sigma ~8 m/s) and the velocity PID's derivative term then
            # saturates on noise — the vehicle loses the authority to close
            # the last few metres of a hover and long soaks see RTL crawl for
            # minutes.  Doppler velocity is quiet (~0.1 m/s) and is what real
            # flight stacks fuse.
            self.position_est.correct_gps(east, north,
                                          fix.velocity_e_ms,
                                          fix.velocity_n_ms)
        # Vertical velocity from baro-derived altitude changes.
        if not hasattr(self, "_last_alt"):
            self._last_alt = (self.position_est.position[2], self.time_us)
        else:
            la, lt = self._last_alt
            span_s = (self.time_us - lt) / 1e6
            if span_s >= 0.1:
                climb = (self.position_est.position[2] - la) / span_s
                self.position_est.velocity[2] += 0.6 * (climb - self.position_est.velocity[2])
                self._last_alt = (self.position_est.position[2], self.time_us)

    # -------------------------------------------------------------- navigation
    def _dist_to_target(self) -> float:
        east, north, up = self.position_est.position
        te, tn, tu = self.target_enu
        return math.sqrt((te - east) ** 2 + (tn - north) ** 2)

    def reached_target(self, accept_m: float = WP_ACCEPT_M) -> bool:
        return (self._dist_to_target() <= accept_m
                and abs(self.target_enu[2] - self.position_est.position[2]) <= 1.5)

    def _navigate(self, dt_s: float) -> None:
        self.check_fence()
        if self.mode is CopterMode.RTL:
            if self._dist_to_target() <= RTL_LAND_ACCEPT_M and abs(
                self.position_est.position[2] - self.target_enu[2]
            ) < 1.5:
                if self.target_enu[:2] == [0.0, 0.0]:
                    self.set_mode(CopterMode.LAND)
            return
        if self.mode is not CopterMode.AUTO or not self.mission:
            return
        if self.mission_index >= len(self.mission):
            self.set_mode(CopterMode.LOITER)
            return
        item = self.mission[self.mission_index]
        command = MavCommand(item.command)
        if command is MavCommand.NAV_TAKEOFF:
            self.target_enu = [self.position_est.position[0],
                               self.position_est.position[1], max(1.0, item.z)]
            if self.position_est.position[2] >= item.z - 1.0:
                self._advance_mission()
        elif command is MavCommand.NAV_WAYPOINT:
            target = GeoPoint(item.x, item.y, item.z)
            east, north, _ = enu_between(self.home, target)
            self.target_enu = [east, north, item.z]
            if self.reached_target():
                if item.param1 > 0 and self._loiter_until_us is None:
                    self._loiter_until_us = self.time_us + int(item.param1 * 1e6)
                if self._loiter_until_us is None or self.time_us >= self._loiter_until_us:
                    self._loiter_until_us = None
                    self._advance_mission()
        elif command is MavCommand.NAV_LAND:
            self.set_mode(CopterMode.LAND)
        elif command is MavCommand.NAV_RETURN_TO_LAUNCH:
            self.set_mode(CopterMode.RTL)
        else:
            self._advance_mission()

    def _advance_mission(self) -> None:
        self.mission_index += 1
