"""Software-in-the-loop (SITL) flight simulation.

Couples an :class:`~repro.flight.autopilot.Autopilot` to
:class:`~repro.flight.physics.QuadcopterPhysics` on the shared simulator
clock, the role ArduPilot's SITL plays in Section 6.6.  An optional
``jitter_provider`` injects extra per-tick delay — wire it to kernel
wakeup-latency samples to couple scheduling behaviour into control timing
(the Section 6.2 stability experiment).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.flight.autopilot import Autopilot, DirectSensors
from repro.flight.geo import GeoPoint
from repro.flight.logs import FlightLog
from repro.flight.physics import QuadcopterParams, QuadcopterPhysics
from repro.mavlink.enums import CopterMode, MavCommand, MavResult
from repro.mavlink.messages import CommandAck, CommandLong, MavlinkMessage, SetPositionTarget
from repro.sim import RngRegistry, Simulator


class SitlDrone:
    """A simulated vehicle: physics + sensors + autopilot, self-ticking."""

    def __init__(
        self,
        sim: Simulator,
        rng: RngRegistry,
        home: Optional[GeoPoint] = None,
        rate_hz: float = 400.0,
        jitter_provider: Optional[Callable[[], float]] = None,
        params: Optional[QuadcopterParams] = None,
        log: Optional[FlightLog] = None,
        sensors_factory=None,
    ):
        """``sensors_factory``, if given, is called with the physics object
        and must return a sensors frontend (e.g. the flight container's
        HAL bridge); the default owns its devices directly."""
        self.sim = sim
        self.rate_hz = rate_hz
        self.period_us = 1e6 / rate_hz
        self.jitter_provider = jitter_provider
        params = params or QuadcopterParams()
        self.physics = QuadcopterPhysics(
            params=params,
            home=home or GeoPoint(43.6084298, -85.8110359, 0.0),
            rng=rng.stream("physics.gusts"),
        )
        if sensors_factory is not None:
            sensors = sensors_factory(self.physics)
        else:
            sensors = DirectSensors(self.physics, rng.stream("sensors"))
        self.log = log
        self.autopilot = Autopilot(
            sensors,
            home=self.physics.home,
            hover_throttle=params.hover_throttle(),
            log=log,
            truth_provider=self.physics.snapshot,
        )
        self._running = False
        self._last_tick_us: Optional[int] = None

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._last_tick_us = self.sim.now
        self.sim.call_soon(self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        dt_s = max(1e-4, (now - self._last_tick_us) / 1e6) if self._last_tick_us is not None else 1.0 / self.rate_hz
        if self._last_tick_us == now:
            dt_s = 1.0 / self.rate_hz
        self._last_tick_us = now
        commands = self.autopilot.control_step(dt_s)
        self.physics.step(dt_s, commands)
        delay = self.period_us
        if self.jitter_provider is not None:
            delay += max(0.0, self.jitter_provider())
        self.sim.after(max(1, int(round(delay))), self._tick)

    # -- MAVLink entry point --------------------------------------------------------
    def handle_mavlink(self, msg: MavlinkMessage) -> Optional[MavlinkMessage]:
        """Process one inbound message; returns the ack (if any)."""
        if isinstance(msg, CommandLong):
            result = self.autopilot.handle_command(msg)
            return CommandAck(command=msg.command, result=int(result))
        if isinstance(msg, SetPositionTarget):
            self.autopilot.handle_position_target(msg)
            return None
        return None

    # -- scripting helpers (used by tests and the flight planner) --------------------
    def arm(self) -> MavResult:
        return self.autopilot.handle_command(
            CommandLong(command=int(MavCommand.COMPONENT_ARM_DISARM), param1=1.0)
        )

    def takeoff(self, altitude_m: float) -> MavResult:
        self.autopilot.set_mode(CopterMode.GUIDED)
        return self.autopilot.handle_command(
            CommandLong(command=int(MavCommand.NAV_TAKEOFF), param7=altitude_m)
        )

    def goto(self, point: GeoPoint) -> MavResult:
        return self.autopilot.handle_command(CommandLong(
            command=int(MavCommand.NAV_WAYPOINT),
            param5=point.latitude, param6=point.longitude, param7=point.altitude_m,
        ))

    def run_until(self, predicate: Callable[[], bool], timeout_s: float = 120.0,
                  poll_s: float = 0.25) -> bool:
        """Advance the simulation until ``predicate()`` or timeout."""
        deadline = self.sim.now + int(timeout_s * 1e6)
        while self.sim.now < deadline:
            self.sim.run(until=min(deadline, self.sim.now + int(poll_s * 1e6)))
            if predicate():
                return True
        return predicate()
