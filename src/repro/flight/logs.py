"""Flight logging and the Attitude Estimate Divergence analyzer.

Section 6.2 validates hover stability with DroneKit's Log Analyzer: the
AED check flags instability "if the drone's yaw, pitch, or roll diverges
more than 5 degrees from the estimates for longer than 0.5 seconds".  The
:class:`FlightLog` records estimated vs canonical (ground-truth) attitude
every fast loop, and :func:`analyze_attitude_divergence` reimplements the
analyzer over it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class LogEntry:
    time_us: int
    est_roll: float
    est_pitch: float
    est_yaw: float
    true_roll: float
    true_pitch: float
    true_yaw: float
    position_enu: Tuple[float, float, float]
    mode: str


@dataclass
class AedResult:
    """Outcome of the Attitude Estimate Divergence analysis."""

    passed: bool
    worst_divergence_deg: float
    worst_axis: str
    longest_excursion_s: float
    entries_analyzed: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "GOOD" if self.passed else "FAIL"
        return (
            f"AED {verdict}: worst {self.worst_divergence_deg:.2f} deg on "
            f"{self.worst_axis}, longest excursion {self.longest_excursion_s:.2f}s "
            f"over {self.entries_analyzed} samples"
        )


class FlightLog:
    """Dataflash-style log: one entry per fast loop, plus GPS and IMU
    channels for the glitch and vibration analyzers."""

    def __init__(self, name: str = "flight"):
        self.name = name
        self.entries: List[LogEntry] = []
        self.events: List[Tuple[int, str]] = []
        #: (time_us, east_m, north_m) per GPS fix.
        self.gps_fixes: List[Tuple[int, float, float]] = []
        #: (time_us, accel_z) per IMU sample.
        self.imu_samples: List[Tuple[int, float]] = []

    def record_gps(self, time_us: int, east: float, north: float) -> None:
        self.gps_fixes.append((time_us, east, north))

    def record_imu(self, time_us: int, accel_z: float) -> None:
        self.imu_samples.append((time_us, accel_z))

    def record(self, time_us: int, estimate, truth, position_enu, mode: str) -> None:
        self.entries.append(LogEntry(
            time_us=time_us,
            est_roll=estimate.roll, est_pitch=estimate.pitch, est_yaw=estimate.yaw,
            true_roll=truth.roll, true_pitch=truth.pitch, true_yaw=truth.yaw,
            position_enu=tuple(position_enu),
            mode=mode,
        ))

    def event(self, time_us: int, text: str) -> None:
        self.events.append((time_us, text))

    def duration_s(self) -> float:
        if len(self.entries) < 2:
            return 0.0
        return (self.entries[-1].time_us - self.entries[0].time_us) / 1e6


def _angle_diff(a: float, b: float) -> float:
    return abs((a - b + math.pi) % (2 * math.pi) - math.pi)


@dataclass
class GpsGlitchResult:
    """Outcome of the GPS glitch analysis (LogAnalyzer's GPS check)."""

    passed: bool
    glitches: int
    worst_jump_m: float    # largest fix-to-fix displacement
    fixes_analyzed: int


def analyze_gps_glitches(log: FlightLog,
                         max_jump_m: float = 15.0) -> GpsGlitchResult:
    """Flag teleporting fixes.

    A quadcopter at 5 Hz fixes moves under ~2 m between fixes (plus a
    couple meters of receiver noise); a fix-to-fix displacement beyond
    ``max_jump_m`` is a receiver glitch, not motion.
    """
    glitches = 0
    worst = 0.0
    fixes = log.gps_fixes
    for (t0, e0, n0), (t1, e1, n1) in zip(fixes, fixes[1:]):
        jump = math.hypot(e1 - e0, n1 - n0)
        worst = max(worst, jump)
        if jump > max_jump_m:
            glitches += 1
    return GpsGlitchResult(
        passed=glitches == 0,
        glitches=glitches,
        worst_jump_m=worst,
        fixes_analyzed=len(fixes),
    )


@dataclass
class VibrationResult:
    """Outcome of the vibration analysis (LogAnalyzer's VCC/vibe check)."""

    passed: bool
    worst_stddev: float
    windows_analyzed: int


def analyze_vibration(log: FlightLog, threshold: float = 3.0,
                      window: int = 200) -> VibrationResult:
    """High-frequency accelerometer-z noise means props/motors are
    shaking the IMU — clipping and estimation failures follow on real
    hardware.  Maneuvering is low-frequency, so the metric is the
    standard deviation of successive-sample *differences* (scaled by
    1/sqrt(2) to estimate per-sample noise), windowed.
    """
    samples = [z for _, z in log.imu_samples]
    worst = 0.0
    windows = 0
    for start in range(0, max(0, len(samples) - window), window):
        chunk = samples[start:start + window]
        diffs = [b - a for a, b in zip(chunk, chunk[1:])]
        if not diffs:
            continue
        mean = sum(diffs) / len(diffs)
        variance = sum((d - mean) ** 2 for d in diffs) / len(diffs)
        worst = max(worst, math.sqrt(variance / 2.0))
        windows += 1
    return VibrationResult(
        passed=worst <= threshold,
        worst_stddev=worst,
        windows_analyzed=windows,
    )


def analyze_attitude_divergence(
    log: FlightLog,
    threshold_deg: float = 5.0,
    max_duration_s: float = 0.5,
) -> AedResult:
    """DroneKit Log Analyzer's AED check over a flight log.

    Fails if any attitude axis diverges from truth by more than
    ``threshold_deg`` for longer than ``max_duration_s`` continuously.
    """
    threshold = math.radians(threshold_deg)
    worst = 0.0
    worst_axis = "none"
    longest_excursion = 0.0
    excursion_start: Optional[int] = None
    passed = True
    for entry in log.entries:
        divergences = {
            "roll": _angle_diff(entry.est_roll, entry.true_roll),
            "pitch": _angle_diff(entry.est_pitch, entry.true_pitch),
            "yaw": _angle_diff(entry.est_yaw, entry.true_yaw),
        }
        axis = max(divergences, key=divergences.get)
        value = divergences[axis]
        if value > worst:
            worst, worst_axis = value, axis
        if value > threshold:
            if excursion_start is None:
                excursion_start = entry.time_us
            excursion = (entry.time_us - excursion_start) / 1e6
            longest_excursion = max(longest_excursion, excursion)
            if excursion > max_duration_s:
                passed = False
        else:
            excursion_start = None
    return AedResult(
        passed=passed,
        worst_divergence_deg=math.degrees(worst),
        worst_axis=worst_axis,
        longest_excursion_s=longest_excursion,
        entries_analyzed=len(log.entries),
    )
