"""Geofencing, with AnDrone's modified breach behaviour.

Stock MAVLink/ArduPilot geofences failsafe-land on breach.  "For AnDrone,
this behavior is undesired as the flight must continue ... a breach causes
the following steps: inform the virtual drone of the breach, disable
commands on the VFC connection, guide the drone back inside the geofence,
and switch it into loiter mode ... Flight control is then returned to the
virtual drone" (Section 4.3).  The fence itself lives here; the recovery
*sequence* is driven by the VFC in :mod:`repro.mavproxy.vfc`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.flight.geo import GeoPoint, enu_between


class GeofenceBreach(Exception):
    """Raised (or reported) when the vehicle exits the fence volume."""

    def __init__(self, distance_m: float, fence: "Geofence"):
        super().__init__(
            f"geofence breach: {distance_m:.1f} m from center "
            f"(radius {fence.radius_m:.1f} m)"
        )
        self.distance_m = distance_m
        self.fence = fence


@dataclass
class Geofence:
    """A spherical volume around a waypoint (Section 3's max-radius).

    The virtual drone definition's waypoint coordinates plus max-radius
    "define a spherical volume" the tenant may fly in; altitude limits
    bound it further.
    """

    center: GeoPoint
    radius_m: float
    min_altitude_m: float = 0.0
    max_altitude_m: float = 120.0   # FAA 400 ft

    def distance_from_center(self, position: GeoPoint) -> float:
        return self.center.distance_to(position)

    def contains(self, position: GeoPoint) -> bool:
        if not self.min_altitude_m <= position.altitude_m <= self.max_altitude_m:
            return False
        return self.distance_from_center(position) <= self.radius_m

    def check(self, position: GeoPoint) -> Optional[GeofenceBreach]:
        """None if inside; a breach report otherwise."""
        if self.contains(position):
            return None
        return GeofenceBreach(self.distance_from_center(position), self)

    def recovery_point(self, position: GeoPoint) -> GeoPoint:
        """A point comfortably inside the fence on the line back to center.

        Used by the breach-recovery sequence to "guide the drone back
        inside the geofence".
        """
        east, north, up = enu_between(self.center, position)
        dist = math.sqrt(east * east + north * north + up * up)
        if dist < 1e-6:
            return self.center
        # Pull in to 70% of the radius along the same ray.
        scale = (0.7 * self.radius_m) / dist
        from repro.flight.geo import offset_geopoint

        target = offset_geopoint(self.center, east * scale, north * scale, up * scale)
        alt = min(max(target.altitude_m, self.min_altitude_m + 1.0),
                  self.max_altitude_m - 1.0)
        return GeoPoint(target.latitude, target.longitude, alt)
