"""The AnDrone SDK implementation (paper Figure 7).

One SDK instance exists per virtual drone container; apps in the
container share it (as they would share the SDK's bound service).  The
VDC holds the other end and invokes the ``notify_*`` methods; user code
only ever sees the public snake_case equivalents of the paper's API:

=============================  =======================================
Paper (Java)                   Here
=============================  =======================================
registerWaypointListener(l)    register_waypoint_listener(l)
waypointCompleted()            waypoint_completed()
getFlightControllerIP()        get_flight_controller_ip()
markFileForUser(path)          mark_file_for_user(path)
getAllottedEnergyLeft()        get_allotted_energy_left()
getAllottedTimeLeft()          get_allotted_time_left()
=============================  =======================================
"""

from __future__ import annotations

from typing import Callable, List

from repro.sdk.listener import Waypoint, WaypointListener


class AndroneSdk:
    """The per-container SDK endpoint."""

    def __init__(self, container: str, vdc, flight_controller_ip: str,
                 intent_bus=None):
        self.container = container
        self._vdc = vdc
        self._fc_ip = flight_controller_ip
        self._listeners: List[WaypointListener] = []
        self.marked_files: List[str] = []
        self.events: List[str] = []   # audit trail of delivered callbacks
        #: when attached, every SDK event is also broadcast as an intent
        #: on the container's bus (manifest-registered receivers).
        self.intent_bus = intent_bus

    # -- app-facing API --------------------------------------------------------------
    def register_waypoint_listener(self, listener: WaypointListener) -> None:
        self._listeners.append(listener)

    def clear_listeners(self) -> None:
        """Detach every listener — the VDC calls this when the container
        restarts, since the registered listeners belong to app instances
        that died with it."""
        self._listeners.clear()

    def waypoint_completed(self) -> None:
        """The app is done at the current waypoint; the VDC moves on."""
        self._vdc.waypoint_completed(self.container)

    def get_flight_controller_ip(self) -> str:
        return self._fc_ip

    def mark_file_for_user(self, path: str) -> None:
        """Queue a container file for upload to cloud storage after the
        flight."""
        self.marked_files.append(path)

    def get_allotted_energy_left(self) -> float:
        return self._vdc.energy_left(self.container)

    def get_allotted_time_left(self) -> float:
        return self._vdc.time_left(self.container)

    # -- VDC-facing notification entry points ---------------------------------------------
    _EVENT_ACTIONS = {
        "waypointActive": "androne.intent.action.WAYPOINT_ACTIVE",
        "waypointInactive": "androne.intent.action.WAYPOINT_INACTIVE",
        "lowEnergyWarning": "androne.intent.action.LOW_ENERGY",
        "lowTimeWarning": "androne.intent.action.LOW_TIME",
        "geofenceBreached": "androne.intent.action.GEOFENCE_BREACHED",
        "suspendContinuousDevices": "androne.intent.action.SUSPEND_CONTINUOUS",
        "resumeContinuousDevices": "androne.intent.action.RESUME_CONTINUOUS",
    }

    def _dispatch(self, event: str, call: Callable[[WaypointListener], None],
                  extras: dict = None) -> None:
        self.events.append(event)
        for listener in self._listeners:
            call(listener)
        if self.intent_bus is not None:
            from repro.android.intents import Intent

            self.intent_bus.send_broadcast(Intent(
                action=self._EVENT_ACTIONS[event],
                extras=extras or {},
                sender_package="androne.sdk",
            ))

    def notify_waypoint_active(self, waypoint: Waypoint) -> None:
        self._dispatch("waypointActive",
                       lambda listener: listener.waypoint_active(waypoint),
                       extras={"index": waypoint.index,
                               "latitude": waypoint.latitude,
                               "longitude": waypoint.longitude})

    def notify_waypoint_inactive(self, waypoint: Waypoint) -> None:
        self._dispatch("waypointInactive",
                       lambda listener: listener.waypoint_inactive(waypoint),
                       extras={"index": waypoint.index})

    def notify_low_energy(self, remaining_j: float) -> None:
        self._dispatch("lowEnergyWarning",
                       lambda listener: listener.low_energy_warning(remaining_j),
                       extras={"remaining_j": remaining_j})

    def notify_low_time(self, remaining_s: float) -> None:
        self._dispatch("lowTimeWarning",
                       lambda listener: listener.low_time_warning(remaining_s),
                       extras={"remaining_s": remaining_s})

    def notify_geofence_breached(self) -> None:
        self._dispatch("geofenceBreached", lambda listener: listener.geofence_breached())

    def notify_suspend_continuous(self) -> None:
        self._dispatch("suspendContinuousDevices",
                       lambda listener: listener.suspend_continuous_devices())

    def notify_resume_continuous(self) -> None:
        self._dispatch("resumeContinuousDevices",
                       lambda listener: listener.resume_continuous_devices())
