"""The WaypointListener callback class (paper Figure 8)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Waypoint:
    """The waypoint handed to listener callbacks."""

    index: int
    latitude: float
    longitude: float
    altitude: float
    max_radius: float


class WaypointListener:
    """Subclass (or instantiate and overwrite attributes) to receive
    AnDrone events.  All callbacks default to no-ops, as in the SDK."""

    def waypoint_active(self, waypoint: Waypoint) -> None:
        """Arrived at a waypoint: flight control and waypoint devices are
        now available."""

    def waypoint_inactive(self, waypoint: Waypoint) -> None:
        """Leaving the waypoint: flight control and waypoint devices are
        about to be removed."""

    def low_energy_warning(self, remaining_j: float) -> None:
        """The energy allotment is running low."""

    def low_time_warning(self, remaining_s: float) -> None:
        """The time allotment is running low."""

    def geofence_breached(self) -> None:
        """The geofence was breached; control is suspended until a
        subsequent waypoint_active() signals recovery."""

    def suspend_continuous_devices(self) -> None:
        """Another tenant's waypoint is being serviced: continuous device
        access must be suspended."""

    def resume_continuous_devices(self) -> None:
        """The other tenant is done: continuous access is restored."""
