"""App front-ends.

"The app may supply a front-end that the user can run on their smartphone
or in a web browser to see additional status information or make
additional input" (Section 2).  The drone side pushes status over the
tenant's per-container VPN; the user side renders it and sends inputs
back — e.g. an RC app forwarding the camera feed and receiving stick
input, as in the paper's usage model.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Callable, Dict, List, Optional

from repro.containers.vpn import VpnTunnel
from repro.net.link import LinkModel, cellular_lte
from repro.net.network import Network


class AppFrontendChannel:
    """The drone-side half, owned by an app."""

    def __init__(self, network: Network, container: str, package: str,
                 user_address: str, link: Optional[LinkModel] = None):
        self.package = package
        # crc32, not hash(): the port feeds endpoint addresses and through
        # them the per-channel rng stream names, so it must be stable
        # across processes (hash() is salted per interpreter run).
        self.tunnel = VpnTunnel(
            network, container,
            local_address=f"10.99.0.3:{7000 + zlib.crc32(package.encode()) % 1000}",
            remote_address=user_address,
            link=link or cellular_lte(),
        )
        self._input_handler: Optional[Callable[[Dict], None]] = None
        self.statuses_pushed = 0
        self._seq = 0
        self.tunnel.on_local_receive(self._receive)

    def push_status(self, status: Dict[str, Any]) -> None:
        """Send a status update (position, progress, thumbnails...)."""
        payload = json.dumps({"type": "status", "package": self.package,
                              "seq": self._next_seq(), "data": status})
        self.statuses_pushed += 1
        self.tunnel.send_to_remote(payload, nbytes=len(payload))

    def push_camera_frame(self, frame: Dict[str, Any]) -> None:
        """Forward a (down-scaled) camera frame to the user's client."""
        payload = json.dumps({"type": "frame", "package": self.package,
                              "seq": self._next_seq(), "data": frame})
        self.tunnel.send_to_remote(payload, nbytes=24_000)  # ~preview JPEG

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def on_input(self, handler: Callable[[Dict], None]) -> None:
        self._input_handler = handler

    def _receive(self, payload: str, source: str) -> None:
        message = json.loads(payload)
        if message.get("type") == "input" and self._input_handler is not None:
            self._input_handler(message["data"])


class UserFrontendClient:
    """The smartphone/browser half."""

    def __init__(self, channel: AppFrontendChannel):
        # The user client shares the tunnel endpoint handed out when the
        # portal provisioned access (same VPN keys).
        self._channel = channel
        self._status_entries: List = []
        self._frame_entries: List = []
        channel.tunnel.on_remote_receive(self._receive)

    @property
    def statuses(self) -> List[Dict]:
        """Status updates in channel order (reordered by sequence)."""
        return [data for _, data in sorted(self._status_entries)]

    @property
    def frames(self) -> List[Dict]:
        return [data for _, data in sorted(self._frame_entries)]

    def _receive(self, payload: str, source: str) -> None:
        # Datagram channels can reorder; the client re-sorts on the
        # channel's sequence numbers.
        message = json.loads(payload)
        entry = (message.get("seq", 0), message["data"])
        if message["type"] == "status":
            self._status_entries.append(entry)
        elif message["type"] == "frame":
            self._frame_entries.append(entry)

    def send_input(self, data: Dict[str, Any]) -> None:
        payload = json.dumps({"type": "input", "data": data})
        self._channel.tunnel.send_to_local(payload, nbytes=len(payload))

    def latest_status(self) -> Optional[Dict]:
        return self.statuses[-1] if self.statuses else None
