"""Command-line access to the SDK.

"For advanced end users, who may not be using an app, AnDrone's SDK
functionality is also made available to them via a command line utility"
(Section 5).  The CLI parses shell-style commands against an
:class:`~repro.sdk.androne_sdk.AndroneSdk` instance and returns text, the
way the real utility would print to the tenant's remote console.
"""

from __future__ import annotations

import shlex
from typing import Callable, Dict, List

from repro.sdk.androne_sdk import AndroneSdk
from repro.sdk.listener import Waypoint, WaypointListener


class _CliListener(WaypointListener):
    """Buffers events so the CLI user can poll them with ``events``."""

    def __init__(self) -> None:
        self.lines: List[str] = []

    def waypoint_active(self, waypoint: Waypoint) -> None:
        self.lines.append(
            f"EVENT waypoint-active {waypoint.index} "
            f"{waypoint.latitude:.7f},{waypoint.longitude:.7f}"
        )

    def waypoint_inactive(self, waypoint: Waypoint) -> None:
        self.lines.append(f"EVENT waypoint-inactive {waypoint.index}")

    def low_energy_warning(self, remaining_j: float) -> None:
        self.lines.append(f"EVENT low-energy {remaining_j:.0f}J")

    def low_time_warning(self, remaining_s: float) -> None:
        self.lines.append(f"EVENT low-time {remaining_s:.0f}s")

    def geofence_breached(self) -> None:
        self.lines.append("EVENT geofence-breached")

    def suspend_continuous_devices(self) -> None:
        self.lines.append("EVENT suspend-continuous-devices")

    def resume_continuous_devices(self) -> None:
        self.lines.append("EVENT resume-continuous-devices")


class AndroneCli:
    """The ``androne`` command-line utility."""

    def __init__(self, sdk: AndroneSdk):
        self.sdk = sdk
        self._listener = _CliListener()
        sdk.register_waypoint_listener(self._listener)

    def run(self, command_line: str) -> str:
        """Execute one command; returns its output text."""
        parts = shlex.split(command_line)
        if not parts:
            return "error: empty command"
        command, args = parts[0], parts[1:]
        handlers: Dict[str, Callable[[List[str]], str]] = {
            "help": self._help,
            "energy-left": lambda a: f"{self.sdk.get_allotted_energy_left():.0f} J",
            "time-left": lambda a: f"{self.sdk.get_allotted_time_left():.0f} s",
            "fc-ip": lambda a: self.sdk.get_flight_controller_ip(),
            "waypoint-completed": self._waypoint_completed,
            "mark-file": self._mark_file,
            "events": self._events,
        }
        handler = handlers.get(command)
        if handler is None:
            return f"error: unknown command {command!r} (try 'help')"
        return handler(args)

    def _help(self, args: List[str]) -> str:
        return (
            "commands: energy-left | time-left | fc-ip | waypoint-completed"
            " | mark-file <path> | events | help"
        )

    def _waypoint_completed(self, args: List[str]) -> str:
        self.sdk.waypoint_completed()
        return "ok"

    def _mark_file(self, args: List[str]) -> str:
        if len(args) != 1:
            return "usage: mark-file <path>"
        self.sdk.mark_file_for_user(args[0])
        return f"marked {args[0]}"

    def _events(self, args: List[str]) -> str:
        lines, self._listener.lines = self._listener.lines, []
        return "\n".join(lines) if lines else "(no events)"
