"""The AnDrone SDK (paper Section 5).

Apps use the SDK to learn about AnDrone-specific events (waypoint arrival
and departure, allotment warnings, geofence breaches, continuous-device
suspension) and to act on them (complete a waypoint, mark files for the
user, find the virtual flight controller).  Advanced users without an app
get the same functionality through :class:`~repro.sdk.cli.AndroneCli`.
"""

from repro.sdk.listener import Waypoint, WaypointListener
from repro.sdk.androne_sdk import AndroneSdk
from repro.sdk.cli import AndroneCli
from repro.sdk.frontend import AppFrontendChannel, UserFrontendClient

__all__ = ["Waypoint", "WaypointListener", "AndroneSdk", "AndroneCli",
           "AppFrontendChannel", "UserFrontendClient"]
