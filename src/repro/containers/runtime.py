"""The container runtime: Docker's role in AnDrone.

Creates containers from tagged images, tracks them by name, and provides
the export/import path the VDC uses to move virtual drones between drones
and the cloud (``docker export`` / ``docker import`` in the prototype).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import repro.obs as obs
from repro.containers.container import Container, ContainerError, ContainerState
from repro.containers.image import ImageStore, Layer
from repro.kernel.cgroups import CgroupLimits
from repro.kernel.kernel import Kernel
from repro.kernel.namespaces import NamespaceSet


class ContainerRuntime:
    """Manages all containers on one drone's kernel."""

    def __init__(self, kernel: Kernel, image_store: Optional[ImageStore] = None):
        self.kernel = kernel
        self.images = image_store or ImageStore()
        self.host_namespaces = NamespaceSet("host", isolate=[])
        self._containers: Dict[str, Container] = {}

    def create(
        self,
        name: str,
        image_tag: str,
        memory_kb: int,
        limits: Optional[CgroupLimits] = None,
    ) -> Container:
        if name in self._containers:
            raise ContainerError(f"container {name!r} already exists")
        image = self.images.get(image_tag)
        cgroup = self.kernel.cgroups.create(name, limits)
        container = Container(
            self.kernel, name, image, memory_kb, cgroup, self.host_namespaces
        )
        self._containers[name] = container
        obs.event("container.lifecycle", action="created", name=name,
                  image=image_tag, memory_kb=memory_kb)
        obs.gauge("container.count").set(len(self._containers))
        return container

    def get(self, name: str) -> Container:
        if name not in self._containers:
            raise KeyError(f"no container named {name!r}")
        return self._containers[name]

    def list(self, state: Optional[ContainerState] = None) -> List[Container]:
        containers = list(self._containers.values())
        if state is not None:
            containers = [c for c in containers if c.state is state]
        return containers

    def remove(self, name: str) -> None:
        container = self.get(name)
        if container.state is ContainerState.RUNNING:
            container.stop()
        container.state = ContainerState.REMOVED
        self.kernel.cgroups.remove(name)
        del self._containers[name]
        obs.event("container.lifecycle", action="removed", name=name)
        obs.gauge("container.count").set(len(self._containers))

    # ------------------------------------------------------------ export/import
    def export(self, name: str, comment: str = "") -> Tuple[str, Layer]:
        """Export a container as (base image id, diff layer).

        Only the diff travels; the receiving side must already have (or
        fetch) the base image — the minimal-storage property of Section 3.
        """
        container = self.get(name)
        base_id, diff = container.image.image_id, container.commit(comment)
        obs.event("container.lifecycle", action="exported", name=name,
                  base=base_id, diff_files=len(diff.files))
        return base_id, diff

    def import_container(
        self,
        name: str,
        base_tag: str,
        diff: Layer,
        memory_kb: int,
        limits: Optional[CgroupLimits] = None,
    ) -> Container:
        """Recreate a container from a base tag plus an exported diff."""
        if name in self._containers:
            raise ContainerError(f"container {name!r} already exists")
        base = self.images.get(base_tag)
        stored_diff = self.images.add_layer(diff)
        restored_image = base.extend(stored_diff, tag=f"{name}-restored")
        self.images.tag(f"{name}-restored", restored_image)
        cgroup = self.kernel.cgroups.create(name, limits)
        container = Container(
            self.kernel, name, restored_image, memory_kb, cgroup, self.host_namespaces
        )
        self._containers[name] = container
        obs.event("container.lifecycle", action="imported", name=name,
                  base=base_tag, memory_kb=memory_kb)
        obs.gauge("container.count").set(len(self._containers))
        return container
