"""Transparent container checkpoint/restore (the CRIU/Zap alternative).

"Although checkpoint-based migration is likely feasible for virtual
drones [Flux, Zap, CRIU], AnDrone simply leverages the existing Android
activity lifecycle" (Section 4.4).  This module implements the road not
taken, so the two migration strategies can be compared:

* **lifecycle migration** (AnDrone's default, in the VDC): apps are asked
  to save state via ``onSaveInstanceState()``; uncooperative apps lose
  their in-memory state;
* **transparent checkpoint** (here): the container's filesystem view and
  every app's live ``memory`` and lifecycle position are captured without
  any app cooperation, and restored exactly — at the cost of a bigger
  image and no opportunity for apps to quiesce external resources.
"""

from __future__ import annotations

import copy
import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.android.app import AppState
from repro.containers.image import Layer


class CheckpointError(RuntimeError):
    """A checkpoint could not be taken or restored."""


class CheckpointMissingError(CheckpointError, KeyError):
    """No checkpoint exists for the requested container/tenant.

    Subclasses ``KeyError`` for compatibility with callers that caught
    the bare lookup error this used to surface as.
    """

    def __init__(self, name: str):
        message = f"no checkpoint for container {name!r}"
        CheckpointError.__init__(self, message)
        self.container_name = name

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


@dataclass
class ProcessImage:
    """One checkpointed app process."""

    package: str
    uid: int
    pid: int
    lifecycle_state: AppState
    memory: Dict
    android_manifest: object
    androne_manifest: object

    def memory_bytes(self) -> int:
        return len(repr(self.memory))


@dataclass
class CheckpointImage:
    """A complete container checkpoint."""

    checkpoint_id: str
    container_name: str
    base_image_tag: str
    fs_diff: Layer
    processes: List[ProcessImage]

    def size_bytes(self) -> int:
        return (self.fs_diff.size_bytes()
                + sum(p.memory_bytes() for p in self.processes))


def checkpoint_container(container, env, base_image_tag: str,
                         checkpoint_id: Optional[str] = None) -> CheckpointImage:
    """Freeze a running virtual drone into a checkpoint image.

    No app callbacks fire: memory and lifecycle state are captured as-is
    (the "transparent" property of Zap/CRIU).  Callers that need
    deterministic replay (the VDC supervision loop) pass their own
    run-scoped ``checkpoint_id``; the default is content-addressed from
    the capture, so ids never depend on how many checkpoints other
    drones in the process took first (repro-lint: fork-safety).
    """
    processes = []
    for package, app in env.apps.items():
        processes.append(ProcessImage(
            package=package,
            uid=app.uid,
            pid=app.pid,
            lifecycle_state=app.state,
            memory=copy.deepcopy(app.memory),
            android_manifest=app.manifest,
            androne_manifest=app.androne_manifest,
        ))
    fs_diff = container.commit(comment=f"checkpoint:{container.name}")
    if checkpoint_id is None:
        capture = ":".join([
            container.name, base_image_tag,
            ",".join(f"{p.package}@{p.pid}:{p.lifecycle_state.value}"
                     for p in processes),
            str(fs_diff.size_bytes()),
        ])
        digest = hashlib.sha256(capture.encode()).hexdigest()[:10]
        checkpoint_id = f"ckpt-{container.name}-{digest}"
    return CheckpointImage(
        checkpoint_id=checkpoint_id,
        container_name=container.name,
        base_image_tag=base_image_tag,
        fs_diff=fs_diff,
        processes=processes,
    )


def restore_container(image: CheckpointImage, runtime, env_factory,
                      memory_kb: int):
    """Materialize a checkpoint on (possibly different) hardware.

    ``env_factory(container)`` must return a fresh AndroidEnvironment for
    the restored container (the caller wires Binder namespaces and shared
    services, since those are per-drone).  Returns (container, env).
    Restored apps resume exactly where they were — lifecycle state and
    memory intact, with **no** onCreate/onRestore callbacks.
    """
    container = runtime.import_container(
        image.container_name, image.base_image_tag, image.fs_diff, memory_kb)
    container.start()
    env = env_factory(container)
    for process in image.processes:
        app = env.install_app(process.android_manifest,
                              process.androne_manifest, container=container)
        app.memory = copy.deepcopy(process.memory)
        # Transparent restore: state is reinstated directly, bypassing the
        # lifecycle (the process simply continues from its dump).
        app.state = process.lifecycle_state
        app.lifecycle_log.append("restoredFromCheckpoint")
    return container, env
