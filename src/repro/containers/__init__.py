"""Linux container runtime (Docker-like).

AnDrone manages virtual drone containers with Docker so that "each
container consists of common read-only base disk images layered together
with a writable layer on top" (Section 4.1).  This package reproduces the
parts AnDrone depends on:

* content-addressed, immutable image **layers** with copy-on-write
  semantics and whiteout-based deletion;
* container lifecycle (create/start/stop/commit/remove) wired into the
  simulated kernel's namespaces, cgroups, and memory accounting;
* export/import of a container as (base image ref + diff layer), which is
  what the Virtual Drone Repository stores offline;
* per-container VPN tunnels for remote access (Section 4).
"""

from repro.containers.image import Layer, Image, ImageStore, WHITEOUT
from repro.containers.container import Container, ContainerState, ContainerError
from repro.containers.runtime import ContainerRuntime

__all__ = [
    "Layer",
    "Image",
    "ImageStore",
    "WHITEOUT",
    "Container",
    "ContainerState",
    "ContainerError",
    "ContainerRuntime",
]
