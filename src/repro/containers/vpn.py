"""Per-container VPN tunnels.

"Remote access to containers is provided by tunneling all communication
over a per-container virtual private network (VPN), allowing potentially
insecure protocols ... to now be used securely over cellular internet
communication" (Section 4).

A tunnel pairs a container-side address with a remote peer over a link and
wraps every payload in an (encrypted, authenticated) envelope.  Messages
arriving at a tunnelled endpoint *not* wrapped by the right tunnel are
rejected — which is the testable property standing in for real crypto.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable

from repro.net.link import LinkModel
from repro.net.network import Network


class VpnEnvelope:
    """An encrypted frame as seen on the wire."""

    __slots__ = ("tunnel_id", "auth", "ciphertext")

    def __init__(self, tunnel_id: int, auth: str, ciphertext: Any):
        self.tunnel_id = tunnel_id
        self.auth = auth
        self.ciphertext = ciphertext


class VpnTunnel:
    """A duplex secure tunnel between a container and a remote peer."""

    def __init__(
        self,
        network: Network,
        container_name: str,
        local_address: str,
        remote_address: str,
        link: LinkModel,
    ):
        # Content-derived id: stable for a given endpoint triple no
        # matter how many tunnels other drones opened first, so serial
        # and sharded fleet runs agree (repro-lint: fork-safety).
        self.tunnel_id = int.from_bytes(hashlib.sha256(
            f"vpn:{container_name}:{local_address}:{remote_address}"
            .encode()).digest()[:4], "big")
        self.container_name = container_name
        self.local_address = local_address
        self.remote_address = remote_address
        self._key = hashlib.sha256(
            f"vpn:{self.tunnel_id}:{container_name}".encode()
        ).hexdigest()
        self._to_remote = network.connect(local_address, remote_address, link, secure=True)
        self._to_local = network.connect(remote_address, local_address, link, secure=True)
        self.rejected = 0

    def _seal(self, payload: Any) -> VpnEnvelope:
        auth = hashlib.sha256(f"{self._key}:{id(payload)}".encode()).hexdigest()[:16]
        return VpnEnvelope(self.tunnel_id, auth, payload)

    def unseal(self, envelope: Any) -> Any:
        """Authenticate and decrypt an envelope; raises on tampering."""
        if not isinstance(envelope, VpnEnvelope) or envelope.tunnel_id != self.tunnel_id:
            self.rejected += 1
            raise PermissionError(
                f"tunnel {self.tunnel_id}: rejected non-tunnel traffic"
            )
        return envelope.ciphertext

    def send_to_remote(self, payload: Any, nbytes: int = 64) -> bool:
        return self._to_remote.send(self._seal(payload), nbytes)

    def send_to_local(self, payload: Any, nbytes: int = 64) -> bool:
        return self._to_local.send(self._seal(payload), nbytes)

    def on_local_receive(self, callback: Callable[[Any, str], None]) -> None:
        """Install a decrypting receive handler at the container side."""
        def handler(envelope: Any, source: str) -> None:
            callback(self.unseal(envelope), source)

        self._to_local.dest.on_receive = handler

    def on_remote_receive(self, callback: Callable[[Any, str], None]) -> None:
        """Install a decrypting receive handler at the remote side."""
        def handler(envelope: Any, source: str) -> None:
            callback(self.unseal(envelope), source)

        self._to_remote.dest.on_receive = handler
