"""Layered container images.

A :class:`Layer` is an immutable mapping of paths to file contents,
identified by a content hash.  An :class:`Image` is an ordered stack of
layers; reads resolve top-down, and a special :data:`WHITEOUT` marker in an
upper layer hides a path from lower layers (overlayfs semantics).  The
:class:`ImageStore` deduplicates layers by content hash, which is what
makes many virtual drones sharing one Android Things base cheap to store —
the storage-cost claim of Section 4.1.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional

#: Marker hiding a lower-layer path (overlayfs whiteout).
WHITEOUT = "\0whiteout\0"


def _content_hash(files: Dict[str, str]) -> str:
    digest = hashlib.sha256()
    for path in sorted(files):
        digest.update(path.encode())
        digest.update(b"\0")
        digest.update(str(files[path]).encode())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


class Layer:
    """One immutable image layer."""

    def __init__(self, files: Dict[str, str], comment: str = ""):
        self._files = dict(files)
        self.comment = comment
        self.layer_id = _content_hash(self._files)

    @property
    def files(self) -> Dict[str, str]:
        return dict(self._files)

    def size_bytes(self) -> int:
        """Approximate layer size (whiteouts are metadata-only)."""
        return sum(
            len(str(content)) for content in self._files.values()
            if content != WHITEOUT
        )

    def paths(self) -> Iterable[str]:
        return self._files.keys()

    def get(self, path: str) -> Optional[str]:
        return self._files.get(path)

    def __contains__(self, path: str) -> bool:
        return path in self._files

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Layer {self.layer_id} files={len(self._files)}>"


class Image:
    """An ordered stack of layers, bottom first."""

    def __init__(self, layers: List[Layer], tag: str = ""):
        if not layers:
            raise ValueError("an image needs at least one layer")
        self.layers = list(layers)
        self.tag = tag

    @property
    def image_id(self) -> str:
        digest = hashlib.sha256(
            "".join(layer.layer_id for layer in self.layers).encode()
        )
        return digest.hexdigest()[:16]

    def read(self, path: str) -> Optional[str]:
        """Resolve ``path`` top-down; whiteouts hide lower layers."""
        for layer in reversed(self.layers):
            if path in layer:
                content = layer.get(path)
                return None if content == WHITEOUT else content
        return None

    def flatten(self) -> Dict[str, str]:
        """The merged filesystem view."""
        merged: Dict[str, str] = {}
        for layer in self.layers:
            for path in layer.paths():
                content = layer.get(path)
                if content == WHITEOUT:
                    merged.pop(path, None)
                else:
                    merged[path] = content
        return merged

    def extend(self, layer: Layer, tag: str = "") -> "Image":
        """A new image with ``layer`` stacked on top."""
        return Image(self.layers + [layer], tag or self.tag)

    def size_bytes(self) -> int:
        return sum(layer.size_bytes() for layer in self.layers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Image {self.tag or self.image_id} layers={len(self.layers)}>"


def diff_layer(base: Image, current_files: Dict[str, str], comment: str = "") -> Layer:
    """Compute the writable-layer delta between an image and a live view.

    Files changed or added appear with their content; files deleted from
    the base appear as whiteouts.  This is what gets committed and shipped
    to the VDR — "only its differences from a base virtual drone image".
    """
    base_view = base.flatten()
    delta: Dict[str, str] = {}
    for path, content in current_files.items():
        if base_view.get(path) != content:
            delta[path] = content
    for path in base_view:
        if path not in current_files:
            delta[path] = WHITEOUT
    return Layer(delta, comment)


class ImageStore:
    """Content-addressed layer and tag registry (the local Docker store)."""

    def __init__(self) -> None:
        self._layers: Dict[str, Layer] = {}
        self._tags: Dict[str, Image] = {}

    def add_layer(self, layer: Layer) -> Layer:
        """Store a layer, deduplicating by content hash."""
        return self._layers.setdefault(layer.layer_id, layer)

    def tag(self, name: str, image: Image) -> Image:
        stored_layers = [self.add_layer(layer) for layer in image.layers]
        stored = Image(stored_layers, name)
        self._tags[name] = stored
        return stored

    def get(self, name: str) -> Image:
        if name not in self._tags:
            raise KeyError(f"unknown image tag {name!r}")
        return self._tags[name]

    def has(self, name: str) -> bool:
        return name in self._tags

    def tags(self) -> List[str]:
        return sorted(self._tags)

    def unique_bytes(self) -> int:
        """Total bytes stored, after layer deduplication."""
        return sum(layer.size_bytes() for layer in self._layers.values())

    def apparent_bytes(self) -> int:
        """Total bytes if every tag stored its full stack separately."""
        return sum(image.size_bytes() for image in self._tags.values())
