"""Container lifecycle.

A container is an image plus a mutable writable layer, a namespace set, a
cgroup, and a memory reservation in the simulated kernel.  Threads started
inside a container are tagged with its name, so scheduler accounting and
Binder transactions can attribute them.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro.containers.image import Image, Layer, diff_layer
from repro.kernel.cgroups import Cgroup
from repro.kernel.kernel import Kernel
from repro.kernel.memory import OutOfMemoryError
from repro.kernel.namespaces import NamespaceSet
from repro.kernel.thread import SchedPolicy, Thread


class ContainerError(RuntimeError):
    """Invalid container operation for its current state."""


class ContainerState(enum.Enum):
    CREATED = "created"
    RUNNING = "running"
    STOPPED = "stopped"
    REMOVED = "removed"


class Container:
    """One container instance, managed by the :class:`ContainerRuntime`."""

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        image: Image,
        memory_kb: int,
        cgroup: Cgroup,
        host_namespaces: NamespaceSet,
    ):
        self.kernel = kernel
        self.name = name
        self.image = image
        self.memory_kb = int(memory_kb)
        self.cgroup = cgroup
        self.namespaces = NamespaceSet(name, parent=host_namespaces)
        self.state = ContainerState.CREATED
        self._writable: Dict[str, str] = {}
        self._deleted: set = set()
        self._threads: list = []

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Reserve memory and mark running; raises OutOfMemoryError if the
        reservation does not fit (leaving other containers untouched)."""
        if self.state not in (ContainerState.CREATED, ContainerState.STOPPED):
            raise ContainerError(f"cannot start container in state {self.state}")
        self.cgroup.charge_memory(self.memory_kb)
        try:
            self.kernel.memory.allocate(self.name, self.memory_kb)
        except OutOfMemoryError:
            self.cgroup.uncharge_memory(self.memory_kb)
            raise
        self.state = ContainerState.RUNNING

    def stop(self) -> None:
        if self.state is not ContainerState.RUNNING:
            raise ContainerError(f"cannot stop container in state {self.state}")
        for thread in self._threads:
            self.kernel.kill(thread)
        self._threads.clear()
        self.kernel.memory.free(self.name)
        self.cgroup.uncharge_memory(self.memory_kb)
        self.state = ContainerState.STOPPED

    # ------------------------------------------------------------ processes
    def spawn(
        self,
        program,
        name: str = "",
        policy: SchedPolicy = SchedPolicy.NORMAL,
        priority: int = 0,
        nice: int = 0,
        uid: int = 10_000,
    ) -> Thread:
        """Start a thread inside this container."""
        if self.state is not ContainerState.RUNNING:
            raise ContainerError(f"container {self.name!r} is not running")
        thread = self.kernel.spawn(
            program,
            name=f"{self.name}/{name}",
            policy=policy,
            priority=priority,
            nice=nice,
            container=self.name,
            uid=uid,
        )
        self._threads.append(thread)
        return thread

    def threads(self):
        """Live threads belonging to this container."""
        self._threads = [t for t in self._threads if t.alive]
        return list(self._threads)

    # ------------------------------------------------------------ filesystem
    def read_file(self, path: str) -> Optional[str]:
        if path in self._deleted:
            return None
        if path in self._writable:
            return self._writable[path]
        return self.image.read(path)

    def write_file(self, path: str, content: str) -> None:
        self._deleted.discard(path)
        self._writable[path] = content

    def delete_file(self, path: str) -> None:
        self._writable.pop(path, None)
        self._deleted.add(path)

    def filesystem_view(self) -> Dict[str, str]:
        view = self.image.flatten()
        for path in self._deleted:
            view.pop(path, None)
        view.update(self._writable)
        return view

    def commit(self, comment: str = "") -> Layer:
        """Snapshot the writable layer as an immutable diff layer.

        This is how a virtual drone's state (including files its apps
        saved) is captured for the VDR at the end of a flight.
        """
        return diff_layer(self.image, self.filesystem_view(), comment)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Container {self.name!r} {self.state.value}>"
