"""LocationManagerService: GPS access for apps and the flight container.

Besides the standard Java-facing ``get_location``, this service exposes
the **native interface** the paper had to create for the flight
container's HAL bridge: "the NDK does not provide access to GPS, so a
native interface for Android's LocationManagerService had to be created"
(Section 4.3).
"""

from __future__ import annotations


from repro.android.permissions import Permission
from repro.android.services.base import SystemService
from repro.binder.objects import Transaction


class LocationManagerService(SystemService):
    name = "LocationManagerService"
    androne_device = "gps"
    required_permission = Permission.ACCESS_FINE_LOCATION

    def __init__(self, environment):
        super().__init__(environment)
        self._gps = None
        self._handle = None

    def start(self, device_bus) -> None:
        self._gps = device_bus.get("gps")
        self._handle = self._gps.open(self.name)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- operations -----------------------------------------------------------------
    def op_get_location(self, txn: Transaction):
        self.attach_client(txn)
        fix = self._gps.read_fix(self._handle)
        return {"status": "ok", "fix": self._payload(fix)}

    # The native (NDK-bridge) entry point used by the flight container's
    # HAL; identical data, but kept as a distinct code so the flight
    # container's access can be separately authorized and audited.
    def op_native_get_location(self, txn: Transaction):
        self.attach_client(txn)
        fix = self._gps.read_fix(self._handle)
        return {"status": "ok", "fix": self._payload(fix)}
