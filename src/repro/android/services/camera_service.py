"""CameraService: multiplexes the single camera among virtual drones.

The camera's native interface accepts one client; CameraService *is* that
client and fans frames out to any number of attached containers.  Video
recording is exclusive per session (the hardware encoder has one
pipeline), but stills interleave freely.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.android.permissions import Permission
from repro.android.services.base import SystemService
from repro.binder.objects import Transaction


class CameraService(SystemService):
    name = "CameraService"
    androne_device = "camera"
    required_permission = Permission.CAMERA

    def __init__(self, environment):
        super().__init__(environment)
        self._camera = None
        self._handle = None
        self._gimbal = None
        self._gimbal_handle = None
        self._recorder: Optional[Tuple[str, int]] = None  # session holding video

    def start(self, device_bus) -> None:
        self._camera = device_bus.get("camera")
        self._handle = self._camera.open(self.name)
        if "gimbal" in device_bus:
            self._gimbal = device_bus.get("gimbal")
            self._gimbal_handle = self._gimbal.open(self.name)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if self._gimbal_handle is not None:
            self._gimbal_handle.close()
            self._gimbal_handle = None

    # -- operations ---------------------------------------------------------------
    def op_connect(self, txn: Transaction):
        self.attach_client(txn)
        return {"status": "ok"}

    def op_disconnect(self, txn: Transaction):
        if self._recorder == (txn.calling_container, txn.calling_euid):
            self._camera.stop_recording(self._handle)
            self._recorder = None
        self.detach_client(txn)
        return {"status": "ok"}

    def op_capture(self, txn: Transaction):
        frame = self._camera.capture(self._handle)
        return {"status": "ok", "frame": self._payload(frame)}

    def op_start_video(self, txn: Transaction):
        if self._recorder is not None:
            return {"error": "video pipeline busy", "busy": True}
        self._camera.start_recording(self._handle)
        self._recorder = (txn.calling_container, txn.calling_euid)
        self.attach_client(txn)
        return {"status": "ok"}

    def op_stop_video(self, txn: Transaction):
        session = (txn.calling_container, txn.calling_euid)
        if self._recorder != session:
            return {"error": "not recording"}
        segment = self._camera.stop_recording(self._handle)
        self._recorder = None
        return {"status": "ok", "segment": self._payload(segment)}

    def op_point_gimbal(self, txn: Transaction):
        if self._gimbal is None:
            return {"error": "no gimbal on this drone"}
        self.attach_client(txn)
        orientation = self._gimbal.point(
            self._gimbal_handle,
            pitch=float(txn.data.get("pitch", 0.0)),
            roll=float(txn.data.get("roll", 0.0)),
            yaw=float(txn.data.get("yaw", 0.0)),
        )
        return {"status": "ok", "pitch": orientation.pitch,
                "roll": orientation.roll, "yaw": orientation.yaw}

    def op_gimbal_nadir(self, txn: Transaction):
        if self._gimbal is None:
            return {"error": "no gimbal on this drone"}
        self.attach_client(txn)
        orientation = self._gimbal.nadir(self._gimbal_handle)
        return {"status": "ok", "pitch": orientation.pitch,
                "roll": orientation.roll, "yaw": orientation.yaw}

    def drop_container(self, container: str) -> int:
        if self._recorder is not None and self._recorder[0] == container:
            self._camera.stop_recording(self._handle)
            self._recorder = None
        return super().drop_container(container)
