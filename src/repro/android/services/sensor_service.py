"""SensorService: motion and environmental sensors (IMU, barometer,
magnetometer), multiplexed from the device container."""

from __future__ import annotations


from repro.android.permissions import Permission
from repro.android.services.base import SystemService
from repro.binder.objects import Transaction


class SensorService(SystemService):
    name = "SensorService"
    androne_device = "sensors"
    required_permission = Permission.BODY_SENSORS

    SENSORS = ("imu", "barometer", "magnetometer")

    def __init__(self, environment):
        super().__init__(environment)
        self._devices = {}
        self._handles = {}

    def start(self, device_bus) -> None:
        for sensor in self.SENSORS:
            device = device_bus.get(sensor)
            self._devices[sensor] = device
            self._handles[sensor] = device.open(self.name)

    def stop(self) -> None:
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()

    # -- operations ----------------------------------------------------------------
    def op_list_sensors(self, txn: Transaction):
        return {"status": "ok", "sensors": sorted(self._devices)}

    def op_read(self, txn: Transaction):
        sensor = txn.data.get("sensor", "")
        if sensor not in self._devices:
            return {"error": f"unknown sensor {sensor!r}"}
        self.attach_client(txn)
        device = self._devices[sensor]
        handle = self._handles[sensor]
        if sensor == "imu":
            reading = device.read(handle)
            return {"status": "ok", "reading": self._payload(reading)}
        if sensor == "barometer":
            return {
                "status": "ok",
                "pressure_pa": device.read_pressure(handle),
                "altitude_m": device.read_altitude(handle),
            }
        return {"status": "ok", "heading_rad": device.read_heading(handle)}
