"""Android system services.

The four device services of paper Table 1:

=======================  ==============================
Service                  Device(s)
=======================  ==============================
AudioFlinger             Microphone, Speakers
CameraService            Camera
LocationManagerService   GPS
SensorService            Motion, Environmental Sensors
=======================  ==============================

They run only in the device container, hold the single-client device
handles, and multiplex requests from every virtual drone, enforcing both
Android permissions (via the calling container's ActivityManager) and
AnDrone device policy (via the VDC hook).
"""

from repro.android.services.base import SystemService, ServiceAccessDenied
from repro.android.services.audio_flinger import AudioFlinger
from repro.android.services.camera_service import CameraService
from repro.android.services.location import LocationManagerService
from repro.android.services.sensor_service import SensorService

__all__ = [
    "SystemService",
    "ServiceAccessDenied",
    "AudioFlinger",
    "CameraService",
    "LocationManagerService",
    "SensorService",
]
