"""Base machinery for device services.

A service dispatches Binder transaction codes to ``op_<code>`` methods.
Access control happens per call, in two stages (Sections 4.2 and 4.4):

1. **Android permission** — the service queries the *calling container's*
   ActivityManager (reached through the device container's ServiceManager
   under the ``ActivityManager@<container>`` name installed by
   PUBLISH_TO_DEV_CON) with the caller's uid.
2. **AnDrone device policy** — the service queries the VDC through the
   environment's permission hook, which knows the virtual drone
   definition's device list and the current waypoint state.  Unlike stock
   Android, this check happens on *every* call, which is what makes
   revocation at waypoint boundaries effective.
"""

from __future__ import annotations

import time
from dataclasses import asdict
from typing import Callable, Optional, Set, Tuple

import repro.obs as obs
from repro.android.permissions import Permission
from repro.binder.driver import TransientBinderError
from repro.binder.objects import Transaction
from repro.faults.policies import RetriesExhausted, RetryPolicy, retry_call


class ServiceAccessDenied(PermissionError):
    """A service call failed its permission or policy check."""


#: Backoff for the cross-container permission lookup (a binder round trip
#: that can fail transiently under injected binder faults).  Delays are
#: accounted, not slept — see repro.faults.policies.
PERMISSION_RETRY = RetryPolicy(max_attempts=3, base_us=5_000, cap_us=100_000)


class SystemService:
    """Base class for the shared device services."""

    #: Binder registration name; subclasses set this.
    name = "SystemService"
    #: AnDrone device name this service's policy checks use.
    androne_device = ""
    #: Android permission guarding calls.
    required_permission: Optional[Permission] = None

    def __init__(self, environment):
        """``environment`` is the device container's AndroidEnvironment."""
        self.env = environment
        # Live client sessions: (container, uid) pairs currently attached.
        self._clients: Set[Tuple[str, int]] = set()
        self.denied_calls = 0
        self.served_calls = 0
        #: fault injection: when set, called as ``hook(txn)`` before the
        #: access check; a returned message fails the call with a
        #: ``transient`` error reply (see repro.faults).  None in
        #: production.
        self.fault_hook: Optional[Callable[[Transaction], Optional[str]]] = None
        #: Fast dispatch (memoized op_<code> lookup, interned call
        #: counters, deepcopy-free reply payloads).  False routes every
        #: call through the original getattr/asdict path — the oracle the
        #: service-dispatch equivalence tests and throughput benchmarks
        #: A/B against.
        self.use_fast_ops = True
        self._call_counters = obs.InstrumentCache()

    # -- lifecycle ------------------------------------------------------------
    def start(self, device_bus) -> None:
        """Open the service's devices (the single native client)."""

    def stop(self) -> None:
        """Release devices."""

    # -- dispatch ----------------------------------------------------------------
    def _call_counter(self, code: str, outcome: str):
        """The ``android.service.calls`` counter for one (code, outcome),
        memoized when fast dispatch is on (self.name never changes)."""
        if not self.use_fast_ops:
            return obs.counter("android.service.calls", service=self.name,
                               code=code, outcome=outcome)
        key = (code, outcome)
        counter = self._call_counters.get(key)
        if counter is None:
            counter = self._call_counters.put(key, obs.counter(
                "android.service.calls", service=self.name,
                code=code, outcome=outcome))
        return counter

    def _op_method(self, code: str):
        # Always a live getattr — never a memoized bound method — so
        # instance-level op overrides take effect on the next call.
        return getattr(self, f"op_{code}", None)

    def _payload(self, obj) -> dict:
        """Flat-dataclass reply payload; ``asdict`` is the legacy oracle
        (identical output, plus a deepcopy per field)."""
        if self.use_fast_ops:
            return obj.to_dict()
        return asdict(obj)

    def handle_txn(self, txn: Transaction):
        if self.use_fast_ops and self.fault_hook is None:
            # Fast lane: one memo lookup yields the op method plus both
            # served-path instruments; miss only on first call per code
            # or after a registry swap.
            code = txn.code
            lane = self._call_counters.get(code)
            if lane is None:
                if getattr(self, f"op_{code}", None) is None:
                    return {"error": f"{self.name}: unknown code {code!r}"}
                lane = self._call_counters.put(code, (
                    f"op_{code}",
                    obs.counter("android.service.calls", service=self.name,
                                code=code, outcome="served"),
                    obs.histogram("android.service.call_us", unit="us-wall",
                                  service=self.name),
                ))
            op_name, served, histo = lane
            # The attribute name is memoized, not the bound method —
            # instance-level op overrides (fault tests, compromised-
            # service scenarios) must keep taking effect.
            method = getattr(self, op_name, None)
            if method is None:
                return {"error": f"{self.name}: unknown code {code!r}"}
            # check_access() inlined (no service overrides it): android
            # permission first, device policy second, short-circuiting
            # exactly like the reference path — a denied android check
            # never consults (or counts a query against) the VDC policy.
            denied_msg = None
            perm = self.required_permission
            if perm is not None:
                # _android_permission_granted() inlined: root passes,
                # same-container asks our AM, cross-container hits the
                # memoized grant table (miss → binder round trip).
                if txn.calling_euid == 0:
                    granted = True
                elif txn.calling_container == self.env.container_name:
                    granted = self.env.activity_manager.check_permission(
                        perm, txn.calling_euid)
                else:
                    # PermissionCache.lookup() inlined (same package);
                    # hit/miss bookkeeping matches the reference path.
                    cache = self.env.permission_cache
                    granted = None
                    if cache is not None and cache.enabled:
                        granted = cache._entries.get(
                            (txn.calling_container, txn.calling_euid, perm))
                        if granted is None:
                            cache.misses += 1
                        else:
                            cache.hits += 1
                    if granted is None:
                        granted = self._remote_permission_check(txn)
            else:
                granted = True
            if not granted:
                denied_msg = (
                    f"{self.name}: {txn.calling_container or 'host'}/uid "
                    f"{txn.calling_euid} lacks {perm}")
            elif self.androne_device:
                hook = self.env.permission_hook
                if hook is not None and not hook(txn.calling_container,
                                                self.androne_device):
                    denied_msg = (
                        f"{self.name}: VDC denies {self.androne_device!r} "
                        f"for container {txn.calling_container!r}")
            if denied_msg is not None:
                self.denied_calls += 1
                obs.counter("android.service.calls", service=self.name,
                            code=code, outcome="denied").inc()
                return {"error": denied_msg, "denied": True}
            self.served_calls += 1
            served.inc()
            # Call latency is wall-clock (the handler runs synchronously,
            # so no sim time passes); the one deliberately
            # nondeterministic metric — see docs/METRICS.md.  With
            # telemetry disabled ``histo`` is the shared null histogram,
            # so no enabled() branch is needed.
            start_ns = time.perf_counter_ns()  # repro-lint: disable=sim-clock
            try:
                return method(txn)
            finally:
                histo.observe(
                    (time.perf_counter_ns() - start_ns) / 1000.0)  # repro-lint: disable=sim-clock
        return self._handle_txn_ref(txn)

    def _handle_txn_ref(self, txn: Transaction):
        """The reference dispatch path: per-call getattr + uncached
        instrument lookups.  Runs when ``use_fast_ops`` is off (the
        oracle for the fast-lane equivalence tests and throughput A/B)
        and whenever a fault hook is installed."""
        method = self._op_method(txn.code)
        if method is None:
            return {"error": f"{self.name}: unknown code {txn.code!r}"}
        if self.fault_hook is not None:
            failure = self.fault_hook(txn)
            if failure is not None:
                self._call_counter(txn.code, "fault").inc()
                return {"error": failure, "transient": True}
        try:
            self.check_access(txn)
        except ServiceAccessDenied as denied:
            self.denied_calls += 1
            self._call_counter(txn.code, "denied").inc()
            return {"error": str(denied), "denied": True}
        self.served_calls += 1
        self._call_counter(txn.code, "served").inc()
        if not obs.enabled():
            return method(txn)
        # Wall-clock call latency, as above.
        start_ns = time.perf_counter_ns()  # repro-lint: disable=sim-clock
        try:
            return method(txn)
        finally:
            obs.histogram("android.service.call_us", unit="us-wall",
                          service=self.name).observe(
                (time.perf_counter_ns() - start_ns) / 1000.0)  # repro-lint: disable=sim-clock

    # -- access control -------------------------------------------------------------
    def check_access(self, txn: Transaction) -> None:
        if self.required_permission is not None:
            if not self._android_permission_granted(txn):
                raise ServiceAccessDenied(
                    f"{self.name}: {txn.calling_container or 'host'}/uid "
                    f"{txn.calling_euid} lacks {self.required_permission}"
                )
        if self.androne_device and not self.env.policy_allows(
            txn.calling_container, self.androne_device
        ):
            raise ServiceAccessDenied(
                f"{self.name}: VDC denies {self.androne_device!r} for "
                f"container {txn.calling_container!r}"
            )

    def _android_permission_granted(self, txn: Transaction) -> bool:
        if txn.calling_euid == 0:
            # Root callers (the flight container's HAL bridge, the VDC)
            # pass the Android check, exactly as in Android's
            # checkPermission(); AnDrone policy still applies.
            return True
        if txn.calling_container == self.env.container_name:
            # A call from inside the device container: use our own AM.
            return self.env.activity_manager.check_permission(
                self.required_permission, txn.calling_euid
            )
        # Modified checkPermission(): find the *calling* container's AM by
        # the scoped name PUBLISH_TO_DEV_CON registered.  The answer only
        # changes when that AM's grant table changes, which fires explicit
        # invalidation — so a memoized answer short-circuits the whole
        # binder round trip (the saturated hot path under service-call
        # storms; see docs/SCALING.md).
        cache = self.env.permission_cache
        if cache is not None:
            cached = cache.lookup(txn.calling_container, txn.calling_euid,
                                  self.required_permission)
            if cached is not None:
                return cached
        return self._remote_permission_check(txn)

    def _remote_permission_check(self, txn: Transaction) -> bool:
        """The cross-container binder round trip (cache already missed)."""
        cache = self.env.permission_cache
        scoped = f"ActivityManager@{txn.calling_container}"
        if not self.env.service_manager.has_service(scoped):
            return False
        handle = self.env.service_manager.lookup_handle(scoped)
        try:
            reply = retry_call(
                lambda: self.env.binder_proc.transact(handle, "checkPermission", {
                    "permission": str(self.required_permission),
                    "uid": txn.calling_euid,
                }),
                PERMISSION_RETRY,
                retry_on=(TransientBinderError,),
                label=f"{self.name}.checkPermission",
            )
        except RetriesExhausted:
            # Fail closed: an unreachable ActivityManager grants nothing.
            # Transient failures are never cached.
            return False
        granted = bool(reply.get("granted"))
        if cache is not None:
            cache.store(txn.calling_container, txn.calling_euid,
                        self.required_permission, granted)
        return granted

    # -- client/session tracking (used by VDC revocation) -----------------------------
    def attach_client(self, txn: Transaction) -> None:
        self._clients.add((txn.calling_container, txn.calling_euid))

    def detach_client(self, txn: Transaction) -> None:
        self._clients.discard((txn.calling_container, txn.calling_euid))

    def clients_from(self, container: str):
        """UIDs in ``container`` still attached — the VDC asks this after a
        revocation notice to find processes to terminate (Section 4.4)."""
        return sorted(uid for c, uid in self._clients if c == container)

    def drop_container(self, container: str) -> int:
        """Force-detach every session from ``container``."""
        stale = {key for key in self._clients if key[0] == container}
        self._clients -= stale
        return len(stale)
