"""Base machinery for device services.

A service dispatches Binder transaction codes to ``op_<code>`` methods.
Access control happens per call, in two stages (Sections 4.2 and 4.4):

1. **Android permission** — the service queries the *calling container's*
   ActivityManager (reached through the device container's ServiceManager
   under the ``ActivityManager@<container>`` name installed by
   PUBLISH_TO_DEV_CON) with the caller's uid.
2. **AnDrone device policy** — the service queries the VDC through the
   environment's permission hook, which knows the virtual drone
   definition's device list and the current waypoint state.  Unlike stock
   Android, this check happens on *every* call, which is what makes
   revocation at waypoint boundaries effective.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Set, Tuple

import repro.obs as obs
from repro.android.permissions import Permission
from repro.binder.driver import TransientBinderError
from repro.binder.objects import Transaction
from repro.faults.policies import RetriesExhausted, RetryPolicy, retry_call


class ServiceAccessDenied(PermissionError):
    """A service call failed its permission or policy check."""


#: Backoff for the cross-container permission lookup (a binder round trip
#: that can fail transiently under injected binder faults).  Delays are
#: accounted, not slept — see repro.faults.policies.
PERMISSION_RETRY = RetryPolicy(max_attempts=3, base_us=5_000, cap_us=100_000)


class SystemService:
    """Base class for the shared device services."""

    #: Binder registration name; subclasses set this.
    name = "SystemService"
    #: AnDrone device name this service's policy checks use.
    androne_device = ""
    #: Android permission guarding calls.
    required_permission: Optional[Permission] = None

    def __init__(self, environment):
        """``environment`` is the device container's AndroidEnvironment."""
        self.env = environment
        # Live client sessions: (container, uid) pairs currently attached.
        self._clients: Set[Tuple[str, int]] = set()
        self.denied_calls = 0
        self.served_calls = 0
        #: fault injection: when set, called as ``hook(txn)`` before the
        #: access check; a returned message fails the call with a
        #: ``transient`` error reply (see repro.faults).  None in
        #: production.
        self.fault_hook: Optional[Callable[[Transaction], Optional[str]]] = None

    # -- lifecycle ------------------------------------------------------------
    def start(self, device_bus) -> None:
        """Open the service's devices (the single native client)."""

    def stop(self) -> None:
        """Release devices."""

    # -- dispatch ----------------------------------------------------------------
    def handle_txn(self, txn: Transaction):
        method = getattr(self, f"op_{txn.code}", None)
        if method is None:
            return {"error": f"{self.name}: unknown code {txn.code!r}"}
        if self.fault_hook is not None:
            failure = self.fault_hook(txn)
            if failure is not None:
                obs.counter("android.service.calls", service=self.name,
                            code=txn.code, outcome="fault").inc()
                return {"error": failure, "transient": True}
        try:
            self.check_access(txn)
        except ServiceAccessDenied as denied:
            self.denied_calls += 1
            obs.counter("android.service.calls", service=self.name,
                        code=txn.code, outcome="denied").inc()
            return {"error": str(denied), "denied": True}
        self.served_calls += 1
        obs.counter("android.service.calls", service=self.name,
                    code=txn.code, outcome="served").inc()
        if not obs.enabled():
            return method(txn)
        # Call latency is wall-clock (the handler runs synchronously, so
        # no sim time passes); the one deliberately nondeterministic
        # metric — see docs/METRICS.md.
        start_ns = time.perf_counter_ns()  # repro-lint: disable=sim-clock
        try:
            return method(txn)
        finally:
            obs.histogram("android.service.call_us", unit="us-wall",
                          service=self.name).observe(
                (time.perf_counter_ns() - start_ns) / 1000.0)  # repro-lint: disable=sim-clock

    # -- access control -------------------------------------------------------------
    def check_access(self, txn: Transaction) -> None:
        if self.required_permission is not None:
            if not self._android_permission_granted(txn):
                raise ServiceAccessDenied(
                    f"{self.name}: {txn.calling_container or 'host'}/uid "
                    f"{txn.calling_euid} lacks {self.required_permission}"
                )
        if self.androne_device and not self.env.policy_allows(
            txn.calling_container, self.androne_device
        ):
            raise ServiceAccessDenied(
                f"{self.name}: VDC denies {self.androne_device!r} for "
                f"container {txn.calling_container!r}"
            )

    def _android_permission_granted(self, txn: Transaction) -> bool:
        if txn.calling_euid == 0:
            # Root callers (the flight container's HAL bridge, the VDC)
            # pass the Android check, exactly as in Android's
            # checkPermission(); AnDrone policy still applies.
            return True
        if txn.calling_container == self.env.container_name:
            # A call from inside the device container: use our own AM.
            return self.env.activity_manager.check_permission(
                self.required_permission, txn.calling_euid
            )
        # Modified checkPermission(): find the *calling* container's AM by
        # the scoped name PUBLISH_TO_DEV_CON registered.  The answer only
        # changes when that AM's grant table changes, which fires explicit
        # invalidation — so a memoized answer short-circuits the whole
        # binder round trip (the saturated hot path under service-call
        # storms; see docs/SCALING.md).
        cache = self.env.permission_cache
        if cache is not None:
            cached = cache.lookup(txn.calling_container, txn.calling_euid,
                                  self.required_permission)
            if cached is not None:
                return cached
        scoped = f"ActivityManager@{txn.calling_container}"
        if not self.env.service_manager.has_service(scoped):
            return False
        handle = self.env.service_manager.lookup_handle(scoped)
        try:
            reply = retry_call(
                lambda: self.env.binder_proc.transact(handle, "checkPermission", {
                    "permission": str(self.required_permission),
                    "uid": txn.calling_euid,
                }),
                PERMISSION_RETRY,
                retry_on=(TransientBinderError,),
                label=f"{self.name}.checkPermission",
            )
        except RetriesExhausted:
            # Fail closed: an unreachable ActivityManager grants nothing.
            # Transient failures are never cached.
            return False
        granted = bool(reply.get("granted"))
        if cache is not None:
            cache.store(txn.calling_container, txn.calling_euid,
                        self.required_permission, granted)
        return granted

    # -- client/session tracking (used by VDC revocation) -----------------------------
    def attach_client(self, txn: Transaction) -> None:
        self._clients.add((txn.calling_container, txn.calling_euid))

    def detach_client(self, txn: Transaction) -> None:
        self._clients.discard((txn.calling_container, txn.calling_euid))

    def clients_from(self, container: str):
        """UIDs in ``container`` still attached — the VDC asks this after a
        revocation notice to find processes to terminate (Section 4.4)."""
        return sorted(uid for c, uid in self._clients if c == container)

    def drop_container(self, container: str) -> int:
        """Force-detach every session from ``container``."""
        stale = {key for key in self._clients if key[0] == container}
        self._clients -= stale
        return len(stale)
