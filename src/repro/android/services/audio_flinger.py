"""AudioFlinger: microphone and speaker multiplexing."""

from __future__ import annotations


from repro.android.permissions import Permission
from repro.android.services.base import SystemService
from repro.binder.objects import Transaction


class AudioFlinger(SystemService):
    name = "AudioFlinger"
    androne_device = "microphone"
    required_permission = Permission.RECORD_AUDIO

    def __init__(self, environment):
        super().__init__(environment)
        self._microphone = None
        self._speaker = None
        self._mic_handle = None
        self._speaker_handle = None

    def start(self, device_bus) -> None:
        self._microphone = device_bus.get("microphone")
        self._speaker = device_bus.get("speakers")
        self._mic_handle = self._microphone.open(self.name)
        self._speaker_handle = self._speaker.open(self.name)

    def stop(self) -> None:
        for handle in (self._mic_handle, self._speaker_handle):
            if handle is not None:
                handle.close()
        self._mic_handle = self._speaker_handle = None

    # -- operations -----------------------------------------------------------------
    def op_record(self, txn: Transaction):
        duration = float(txn.data.get("duration_s", 1.0))
        self.attach_client(txn)
        clip = self._microphone.record(self._mic_handle, duration)
        return {"status": "ok", "clip": self._payload(clip)}

    def op_play(self, txn: Transaction):
        from repro.devices.audio import AudioClip

        self.attach_client(txn)
        self._speaker.play(self._speaker_handle, AudioClip(float(txn.data.get("duration_s", 1.0))))
        return {"status": "ok"}
