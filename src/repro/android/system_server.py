"""SystemServer: starts (or deliberately does not start) system services.

In stock Android Things the SystemServer brings up all system services.
AnDrone "disables the equivalent device services inside the virtual drone
containers from starting by modifying init files and Android's
SystemServer" (Section 4.2).  So:

* in the **device container**, SystemServer starts the four device
  services with real device access and registers them (which triggers
  PUBLISH_TO_ALL_NS in the ServiceManager);
* in a **virtual drone container**, the device services are listed as
  disabled and only non-device services (the ActivityManager) start.
"""

from __future__ import annotations

from typing import Dict, List

from repro.android.services import (
    AudioFlinger,
    CameraService,
    LocationManagerService,
    SensorService,
    SystemService,
)

#: The device services AnDrone centralizes (paper Table 1).
DEVICE_SERVICE_CLASSES = (
    AudioFlinger,
    CameraService,
    LocationManagerService,
    SensorService,
)


class SystemServer:
    """Per-container service bootstrap."""

    def __init__(self, environment):
        self.env = environment
        self.services: Dict[str, SystemService] = {}
        self.disabled_services: List[str] = []
        self.started = False

    def start(self, device_bus=None) -> None:
        """Bring up services appropriate to the container type."""
        if self.started:
            raise RuntimeError("SystemServer already started")
        self.started = True
        if self.env.is_device_container:
            if device_bus is None:
                raise ValueError("device container requires a device bus")
            for service_cls in DEVICE_SERVICE_CLASSES:
                service = service_cls(self.env)
                service.start(device_bus)
                self.services[service.name] = service
                ref = self.env.binder_proc.create_node(
                    service.handle_txn, f"{service.name}@{self.env.container_name}"
                )
                # Registration in the device container's ServiceManager
                # triggers PUBLISH_TO_ALL_NS for shared names.
                self.env.service_manager.register(service.name, ref)
        else:
            # AnDrone-modified init: device services must not start here.
            self.disabled_services = [cls.name for cls in DEVICE_SERVICE_CLASSES]

    def stop(self) -> None:
        for service in self.services.values():
            service.stop()
        self.services.clear()
        self.started = False

    def get(self, name: str) -> SystemService:
        return self.services[name]
