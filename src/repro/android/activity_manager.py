"""The per-container ActivityManager.

Holds the container's app permission table and answers
``checkPermission`` transactions.  In AnDrone, the *device container's*
services route permission checks back to the calling container's
ActivityManager (registered with the device container under
``ActivityManager@<container>`` via PUBLISH_TO_DEV_CON) and additionally
to the VDC (Section 4.4), which knows the virtual drone definition's
device grants and the current waypoint state.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.android.permissions import Permission
from repro.binder.objects import Transaction


class ActivityManager:
    """One container's ActivityManager service."""

    def __init__(self, container: str):
        self.container = container
        # package -> granted permissions (install-time model, as on
        # Android Things which has no runtime permission UI).
        self._granted: Dict[str, Set[Permission]] = {}
        # uid -> package, so checks can be made by calling uid.
        self._uid_package: Dict[int, str] = {}
        self.check_count = 0
        #: invalidation hook for the device container's PermissionCache:
        #: called with the list of uids whose grants just changed.
        self.on_permissions_changed: Optional[Callable[[List[int]], None]] = None

    def _changed(self, uids: List[int]) -> None:
        if self.on_permissions_changed is not None and uids:
            self.on_permissions_changed(uids)

    def grant_install_permissions(self, package: str, uid: int,
                                  permissions) -> None:
        self._granted[package] = set(permissions)
        self._uid_package[uid] = package
        self._changed([uid])

    def revoke_all(self, package: str) -> None:
        self._granted.pop(package, None)
        self._changed(sorted(uid for uid, pkg in self._uid_package.items()
                             if pkg == package))

    def package_for_uid(self, uid: int) -> Optional[str]:
        return self._uid_package.get(uid)

    def check_permission(self, permission: Permission, uid: int) -> bool:
        """The classic Android checkPermission(perm, pid, uid)."""
        self.check_count += 1
        package = self._uid_package.get(uid)
        if package is None:
            return False
        return permission in self._granted.get(package, set())

    # -- Binder-facing handler ----------------------------------------------------
    def handle_txn(self, txn: Transaction):
        if txn.code == "checkPermission":
            permission = Permission(txn.data["permission"])
            granted = self.check_permission(permission, txn.data["uid"])
            return {"granted": granted}
        if txn.code == "packageForUid":
            return {"package": self._uid_package.get(txn.data["uid"])}
        return {"error": f"unknown code {txn.code!r}"}
