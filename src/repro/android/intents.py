"""Intents and broadcasts.

Android apps commonly learn about system events through broadcast
intents; AnDrone's SDK events are also delivered this way so that apps
without a live ``WaypointListener`` (e.g. manifest-registered receivers
that should wake the app) still hear about waypoint activity.  Broadcasts
are container-local: one tenant's intents never reach another's receivers
— Binder-level isolation applies to the intent bus too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


#: AnDrone's broadcast actions (mirroring the SDK callbacks).
ACTION_WAYPOINT_ACTIVE = "androne.intent.action.WAYPOINT_ACTIVE"
ACTION_WAYPOINT_INACTIVE = "androne.intent.action.WAYPOINT_INACTIVE"
ACTION_LOW_ENERGY = "androne.intent.action.LOW_ENERGY"
ACTION_LOW_TIME = "androne.intent.action.LOW_TIME"
ACTION_GEOFENCE_BREACHED = "androne.intent.action.GEOFENCE_BREACHED"
ACTION_SUSPEND_CONTINUOUS = "androne.intent.action.SUSPEND_CONTINUOUS"
ACTION_RESUME_CONTINUOUS = "androne.intent.action.RESUME_CONTINUOUS"
ACTION_BOOT_COMPLETED = "android.intent.action.BOOT_COMPLETED"


@dataclass
class Intent:
    """A broadcast intent: an action string plus extras."""

    action: str
    extras: Dict[str, Any] = field(default_factory=dict)
    sender_package: str = ""

    def get_extra(self, key: str, default: Any = None) -> Any:
        return self.extras.get(key, default)


class BroadcastReceiver:
    """Register with :meth:`IntentBus.register_receiver` to hear intents."""

    def __init__(self, callback: Callable[[Intent], None],
                 package: str = ""):
        self.callback = callback
        self.package = package
        self.received: List[Intent] = []

    def on_receive(self, intent: Intent) -> None:
        self.received.append(intent)
        self.callback(intent)


class IntentBus:
    """One container's broadcast bus."""

    def __init__(self, container: str):
        self.container = container
        self._receivers: Dict[str, List[BroadcastReceiver]] = {}
        self.broadcasts_sent = 0

    def register_receiver(self, action: str,
                          receiver: BroadcastReceiver) -> BroadcastReceiver:
        self._receivers.setdefault(action, []).append(receiver)
        return receiver

    def unregister_receiver(self, receiver: BroadcastReceiver) -> None:
        for receivers in self._receivers.values():
            if receiver in receivers:
                receivers.remove(receiver)

    def send_broadcast(self, intent: Intent) -> int:
        """Deliver to every matching receiver; returns delivery count."""
        self.broadcasts_sent += 1
        receivers = list(self._receivers.get(intent.action, ()))
        for receiver in receivers:
            receiver.on_receive(intent)
        return len(receivers)

    def receiver_count(self, action: Optional[str] = None) -> int:
        if action is not None:
            return len(self._receivers.get(action, ()))
        return sum(len(r) for r in self._receivers.values())
