"""Android permission names used by the device services.

``FLIGHT_CONTROL`` is AnDrone's addition: requesting it in the AnDrone
manifest is how an app asks for waypoint flight control.
"""

from __future__ import annotations

import enum


class Permission(str, enum.Enum):
    CAMERA = "android.permission.CAMERA"
    RECORD_AUDIO = "android.permission.RECORD_AUDIO"
    ACCESS_FINE_LOCATION = "android.permission.ACCESS_FINE_LOCATION"
    BODY_SENSORS = "android.permission.BODY_SENSORS"
    INTERNET = "android.permission.INTERNET"
    FLIGHT_CONTROL = "androne.permission.FLIGHT_CONTROL"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Mapping from AnDrone device names (virtual drone definitions use these)
#: to the Android permission guarding the corresponding service.
DEVICE_PERMISSIONS = {
    "camera": Permission.CAMERA,
    "microphone": Permission.RECORD_AUDIO,
    "speakers": Permission.RECORD_AUDIO,
    "gps": Permission.ACCESS_FINE_LOCATION,
    "sensors": Permission.BODY_SENSORS,
    "flight-control": Permission.FLIGHT_CONTROL,
}

#: Mapping from service name to the device names it fronts (paper Table 1).
SERVICE_DEVICES = {
    "AudioFlinger": ("microphone", "speakers"),
    "CameraService": ("camera",),
    "LocationManagerService": ("gps",),
    "SensorService": ("sensors",),
}
