"""Android permission names used by the device services.

``FLIGHT_CONTROL`` is AnDrone's addition: requesting it in the AnDrone
manifest is how an app asks for waypoint flight control.

:class:`PermissionCache` memoizes the answers of the *cross-container*
checkPermission round trip that AnDrone's shared device services make on
every call (Section 4.2).  Install-time permissions only change on
install/uninstall, so the ActivityManager invalidates the cache
explicitly on those events; the per-call AnDrone device policy (waypoint
revocation, Section 4.4) is deliberately NOT cached.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Optional, Tuple


class Permission(str, enum.Enum):
    CAMERA = "android.permission.CAMERA"
    RECORD_AUDIO = "android.permission.RECORD_AUDIO"
    ACCESS_FINE_LOCATION = "android.permission.ACCESS_FINE_LOCATION"
    BODY_SENSORS = "android.permission.BODY_SENSORS"
    INTERNET = "android.permission.INTERNET"
    FLIGHT_CONTROL = "androne.permission.FLIGHT_CONTROL"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Mapping from AnDrone device names (virtual drone definitions use these)
#: to the Android permission guarding the corresponding service.
DEVICE_PERMISSIONS = {
    "camera": Permission.CAMERA,
    "microphone": Permission.RECORD_AUDIO,
    "speakers": Permission.RECORD_AUDIO,
    "gps": Permission.ACCESS_FINE_LOCATION,
    "sensors": Permission.BODY_SENSORS,
    "flight-control": Permission.FLIGHT_CONTROL,
}

#: Mapping from service name to the device names it fronts (paper Table 1).
SERVICE_DEVICES = {
    "AudioFlinger": ("microphone", "speakers"),
    "CameraService": ("camera",),
    "LocationManagerService": ("gps",),
    "SensorService": ("sensors",),
}


class PermissionCache:
    """Memoized cross-container Android permission answers.

    Keyed by ``(container, uid, permission)``.  Only *definitive* replies
    from a reachable ActivityManager are stored — "no AM registered" and
    retries-exhausted failures stay uncached so transient outages never
    poison the table.  Invalidation is explicit: the calling container's
    ActivityManager fires ``on_permissions_changed`` whenever a package's
    grants change (install, uninstall/revoke), and the device container
    drops the affected uids' entries.

    Hit/miss bookkeeping uses plain attributes, not obs instruments, so
    enabling the cache leaves telemetry traces byte-identical.
    """

    def __init__(self):
        self._entries: Dict[Tuple[str, int, Permission], bool] = {}
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, container: str, uid: int,
               permission: Permission) -> Optional[bool]:
        if not self.enabled:
            return None
        granted = self._entries.get((container, uid, permission))
        if granted is None:
            self.misses += 1
        else:
            self.hits += 1
        return granted

    def store(self, container: str, uid: int, permission: Permission,
              granted: bool) -> None:
        if self.enabled:
            self._entries[(container, uid, permission)] = granted

    def invalidate_uids(self, container: str, uids: Iterable[int]) -> None:
        """Drop every cached answer for ``uids`` in ``container``."""
        drop = set(uids)
        stale = [key for key in self._entries
                 if key[0] == container and key[1] in drop]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)

    def invalidate_container(self, container: str) -> None:
        """Drop every cached answer for ``container`` (restart/restore)."""
        stale = [key for key in self._entries if key[0] == container]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)
