"""Android Things model.

Reproduces the Android userspace pieces AnDrone builds on: the
SystemServer that starts system services, the per-container
ActivityManager and its permission model, the four shared device services
(Table 1), app installation with manifests, and the activity lifecycle
(``onSaveInstanceState``) AnDrone uses to save and resume virtual drones.

The package is organised around :class:`~repro.android.environment.
AndroidEnvironment`: one per container, wiring a Binder process, a
ServiceManager, an ActivityManager, and a SystemServer together.  Virtual
drone containers run with device services *disabled* (AnDrone modifies
init and SystemServer, Section 4.2); the device container runs them with
exclusive device access and publishes them everywhere.
"""

from repro.android.permissions import Permission
from repro.android.manifest import AndroidManifest, AnDroneManifest, ManifestError
from repro.android.activity_manager import ActivityManager
from repro.android.system_server import SystemServer
from repro.android.environment import AndroidEnvironment
from repro.android.app import App, AppState

__all__ = [
    "Permission",
    "AndroidManifest",
    "AnDroneManifest",
    "ManifestError",
    "ActivityManager",
    "SystemServer",
    "AndroidEnvironment",
    "App",
    "AppState",
]
