"""Android and AnDrone app manifests.

Every AnDrone app ships the usual Android XML manifest plus an AnDrone
manifest (Section 5) declaring device permissions — each with a ``type``
of ``waypoint`` or ``continuous`` — and the arguments the app expects the
user to supply through the portal.  Both are real XML, parsed with the
standard library.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List

from repro.android.permissions import Permission


class ManifestError(ValueError):
    """Malformed or inconsistent manifest."""


@dataclass
class AndroidManifest:
    """The standard Android manifest (the parts we need)."""

    package: str
    permissions: List[Permission] = field(default_factory=list)
    version: str = "1.0"

    @classmethod
    def parse(cls, xml_text: str) -> "AndroidManifest":
        try:
            root = ET.fromstring(xml_text)
        except ET.ParseError as exc:
            raise ManifestError(f"bad XML: {exc}") from exc
        if root.tag != "manifest":
            raise ManifestError(f"expected <manifest>, got <{root.tag}>")
        package = root.get("package")
        if not package:
            raise ManifestError("manifest missing package attribute")
        permissions = []
        for node in root.findall("uses-permission"):
            name = node.get("name", "")
            try:
                permissions.append(Permission(name))
            except ValueError as exc:
                raise ManifestError(f"unknown permission {name!r}") from exc
        return cls(package=package, permissions=permissions,
                   version=root.get("versionName", "1.0"))


@dataclass
class DevicePermissionRequest:
    """One <uses-permission> entry of the AnDrone manifest."""

    device: str
    access_type: str  # "waypoint" or "continuous"


@dataclass
class ArgumentSpec:
    """One <argument> entry: what the portal must prompt the user for."""

    name: str
    arg_type: str
    required: bool = True


@dataclass
class AnDroneManifest:
    """The AnDrone manifest (Section 5)."""

    package: str
    device_permissions: List[DevicePermissionRequest] = field(default_factory=list)
    arguments: List[ArgumentSpec] = field(default_factory=list)

    VALID_ACCESS_TYPES = ("waypoint", "continuous")

    @classmethod
    def parse(cls, xml_text: str) -> "AnDroneManifest":
        try:
            root = ET.fromstring(xml_text)
        except ET.ParseError as exc:
            raise ManifestError(f"bad XML: {exc}") from exc
        if root.tag != "androne-manifest":
            raise ManifestError(f"expected <androne-manifest>, got <{root.tag}>")
        package = root.get("package")
        if not package:
            raise ManifestError("androne-manifest missing package attribute")
        devices = []
        for node in root.findall("uses-permission"):
            device = node.get("name", "")
            access = node.get("type", "waypoint")
            if access not in cls.VALID_ACCESS_TYPES:
                raise ManifestError(f"bad access type {access!r} for {device!r}")
            if device == "flight-control" and access == "continuous":
                # "Flight control can only be specified as a waypoint
                # device, not a continuous device" (Section 3).
                raise ManifestError("flight-control cannot be continuous")
            devices.append(DevicePermissionRequest(device, access))
        args = []
        for node in root.findall("argument"):
            name = node.get("name", "")
            if not name:
                raise ManifestError("<argument> missing name")
            args.append(ArgumentSpec(
                name=name,
                arg_type=node.get("type", "string"),
                required=node.get("required", "true").lower() == "true",
            ))
        return cls(package=package, device_permissions=devices, arguments=args)

    def waypoint_devices(self) -> List[str]:
        return [d.device for d in self.device_permissions if d.access_type == "waypoint"]

    def continuous_devices(self) -> List[str]:
        return [d.device for d in self.device_permissions if d.access_type == "continuous"]

    def validate_args(self, supplied: Dict[str, object]) -> None:
        """Check user-supplied arguments against the spec (portal-side)."""
        for spec in self.arguments:
            if spec.required and spec.name not in supplied:
                raise ManifestError(f"missing required argument {spec.name!r}")
