"""AndroidEnvironment: one container's Android Things userspace.

Wires together the Binder process, ServiceManager, ActivityManager and
SystemServer for a container, and hosts the VDC's device-policy hook when
the container is the device container.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional

from repro.android.activity_manager import ActivityManager
from repro.android.app import App
from repro.android.manifest import AndroidManifest, AnDroneManifest
from repro.android.system_server import SystemServer
from repro.binder import BinderDriver, BinderError, ServiceManager
from repro.kernel.namespaces import Namespace

# Kernel-scoped (per BinderDriver) pid/uid allocation, lazily attached to
# the driver on first use.  Module-global counters would leak process
# lifetime into uids — which appear in telemetry events — and break the
# replay guarantee that two identical in-process runs trace identically
# (the same class of fix as the PR-2 instance-scoped order/VDR ids).


def _alloc_pid(driver) -> int:
    if not hasattr(driver, "_pid_counter"):
        driver._pid_counter = itertools.count(1000)
    return next(driver._pid_counter)


def _alloc_uid(driver) -> int:
    if not hasattr(driver, "_uid_counter"):
        driver._uid_counter = itertools.count(10_000)
    return next(driver._uid_counter)


class AndroidEnvironment:
    """The Android userspace of one container."""

    def __init__(
        self,
        driver: BinderDriver,
        container_name: str,
        device_ns: Namespace,
        is_device_container: bool = False,
    ):
        self.driver = driver
        self.container_name = container_name
        self.device_ns = device_ns
        self.is_device_container = is_device_container
        #: VDC policy hook: (container, androne_device) -> bool.  Installed
        #: by the VDC on the *device container's* environment.
        self.permission_hook: Optional[Callable[[str, str], bool]] = None
        #: Cross-container checkPermission memo (device container only) —
        #: consulted by SystemService before the binder round trip and
        #: invalidated by the calling containers' ActivityManagers.
        from repro.android.permissions import PermissionCache

        self.permission_cache: Optional[PermissionCache] = \
            PermissionCache() if is_device_container else None

        self.binder_proc = driver.open(
            _alloc_pid(driver), euid=1000, container=container_name,
            device_ns=device_ns
        )
        self.service_manager = ServiceManager(
            self.binder_proc, is_device_container=is_device_container
        )
        self.activity_manager = ActivityManager(container_name)
        am_ref = self.binder_proc.create_node(
            self.activity_manager.handle_txn, f"am:{container_name}"
        )
        try:
            self.service_manager.register("ActivityManager", am_ref)
        except BinderError:
            # Device container not up yet; core assembly retries after it is.
            self._pending_am_ref = am_ref
        else:
            self._pending_am_ref = None
        self.system_server = SystemServer(self)
        from repro.android.intents import IntentBus

        #: container-local broadcast bus (intents never cross containers).
        self.intents = IntentBus(container_name)
        self.apps: Dict[str, App] = {}

    # -- policy ---------------------------------------------------------------
    def policy_allows(self, container: str, device: str) -> bool:
        """Consult the VDC hook; default-allow when no VDC is attached
        (standalone Android, as in unit tests)."""
        if self.permission_hook is None:
            return True
        return self.permission_hook(container, device)

    def retry_am_forwarding(self) -> bool:
        """Re-register the ActivityManager after the device container is up."""
        if self._pending_am_ref is None:
            return True
        try:
            self.service_manager.register("ActivityManager", self._pending_am_ref)
        except BinderError:
            return False
        self._pending_am_ref = None
        return True

    # -- apps ------------------------------------------------------------------
    def install_app(
        self,
        android_manifest: AndroidManifest,
        androne_manifest: Optional[AnDroneManifest] = None,
        container=None,
    ) -> App:
        """Install an app: assign a uid, grant install-time permissions."""
        if android_manifest.package in self.apps:
            raise ValueError(f"app {android_manifest.package!r} already installed")
        uid = _alloc_uid(self.driver)
        self.activity_manager.grant_install_permissions(
            android_manifest.package, uid, android_manifest.permissions
        )
        app = App(self, android_manifest, androne_manifest, uid=uid,
                  pid=_alloc_pid(self.driver), container=container)
        self.apps[android_manifest.package] = app
        return app

    def uninstall_app(self, package: str) -> None:
        app = self.apps.pop(package, None)
        if app is not None:
            self.activity_manager.revoke_all(package)
            app.destroy()
