"""Apps and the activity lifecycle.

An :class:`App` is an installed package with its own Binder fd (so its
uid/pid reach services in transactions), service lookup helpers, and the
Android activity lifecycle.  AnDrone leans on ``onSaveInstanceState()``:
"apps are informed when they are about to be terminated and allowed to
save their current state ... a virtual drone's state can then safely be
saved offline as part of its disk image" (Section 4.4).  Saved state is
written into the container's writable layer, so a container commit
captures it.
"""

from __future__ import annotations

import enum
import json
from typing import Any, Callable, Dict, Optional


class AppState(enum.Enum):
    INSTALLED = "installed"
    CREATED = "created"
    RESUMED = "resumed"     # foreground, running
    PAUSED = "paused"
    STOPPED = "stopped"
    DESTROYED = "destroyed"


class LifecycleError(RuntimeError):
    """Illegal lifecycle transition."""


class App:
    """One installed app in one container's environment."""

    def __init__(self, environment, android_manifest, androne_manifest=None,
                 uid: int = 10_000, pid: int = 1000, container=None):
        self.env = environment
        self.manifest = android_manifest
        self.androne_manifest = androne_manifest
        self.package = android_manifest.package
        self.uid = uid
        self.pid = pid
        #: the repro.containers Container holding this app's files (optional).
        self.container = container
        self.state = AppState.INSTALLED
        self.binder = environment.driver.open(
            pid, euid=uid, container=environment.container_name,
            device_ns=environment.device_ns,
        )
        self._service_handles: Dict[str, int] = {}
        # Lifecycle callbacks the "developer" can install.
        self.on_create: Optional[Callable[[Optional[dict]], None]] = None
        self.on_resume: Optional[Callable[[], None]] = None
        self.on_pause: Optional[Callable[[], None]] = None
        self.on_save_instance_state: Optional[Callable[[], dict]] = None
        self.on_destroy: Optional[Callable[[], None]] = None
        self.lifecycle_log: list = []
        #: the app's live in-memory state: mutated freely while running,
        #: captured verbatim by transparent (CRIU-style) checkpointing —
        #: unlike ``on_save_instance_state``, which needs app cooperation.
        self.memory: Dict[str, Any] = {}

    # -- service access ------------------------------------------------------------
    def get_service(self, name: str) -> int:
        """Look a service up through this container's ServiceManager."""
        if name not in self._service_handles:
            reply = self.binder.transact(0, "get", {"name": name})
            if reply.get("status") != "ok":
                raise LookupError(f"service {name!r} not available: {reply}")
            self._service_handles[name] = reply["service"]
        return self._service_handles[name]

    def call_service(self, service: str, code: str, data: Optional[dict] = None) -> Any:
        handle = self._service_handles.get(service)
        if handle is None:
            handle = self.get_service(service)
        return self.binder.transact(handle, code, data or {})

    # -- files ----------------------------------------------------------------------
    @property
    def data_dir(self) -> str:
        return f"/data/data/{self.package}"

    def write_file(self, relative_path: str, content: str) -> str:
        if self.container is None:
            raise LifecycleError(
                f"app {self.package!r} has no container filesystem")
        path = f"{self.data_dir}/{relative_path}"
        self.container.write_file(path, content)
        return path

    def read_file(self, relative_path: str) -> Optional[str]:
        if self.container is None:
            return None
        return self.container.read_file(f"{self.data_dir}/{relative_path}")

    # -- lifecycle --------------------------------------------------------------------
    def _log(self, event: str) -> None:
        self.lifecycle_log.append(event)

    def create(self) -> None:
        if self.state not in (AppState.INSTALLED, AppState.STOPPED, AppState.DESTROYED):
            raise LifecycleError(f"cannot create from {self.state}")
        saved = self._load_saved_state()
        self.state = AppState.CREATED
        self._log("onCreate")
        if self.on_create is not None:
            self.on_create(saved)

    def resume(self) -> None:
        if self.state not in (AppState.CREATED, AppState.PAUSED):
            raise LifecycleError(f"cannot resume from {self.state}")
        self.state = AppState.RESUMED
        self._log("onResume")
        if self.on_resume is not None:
            self.on_resume()

    def pause(self) -> None:
        if self.state is not AppState.RESUMED:
            raise LifecycleError(f"cannot pause from {self.state}")
        self.state = AppState.PAUSED
        self._log("onPause")
        if self.on_pause is not None:
            self.on_pause()

    def stop(self) -> None:
        """Pause (if needed), save instance state, and stop.

        This is the path the VDC drives before persisting a virtual drone
        to the VDR: the app's saved state lands in the container's
        writable layer just before the commit.
        """
        if self.state is AppState.RESUMED:
            self.pause()
        if self.state is not AppState.PAUSED and self.state is not AppState.CREATED:
            raise LifecycleError(f"cannot stop from {self.state}")
        state = {}
        if self.on_save_instance_state is not None:
            state = self.on_save_instance_state()
        self._log("onSaveInstanceState")
        if self.container is not None:
            self.write_file("saved_state.json", json.dumps(state))
        self.state = AppState.STOPPED
        self._log("onStop")

    def destroy(self) -> None:
        if self.state is AppState.RESUMED:
            self.pause()
        if self.state in (AppState.PAUSED, AppState.CREATED):
            self.stop()
        self.state = AppState.DESTROYED
        self._log("onDestroy")
        if self.on_destroy is not None:
            self.on_destroy()
        self.binder.close()

    def _load_saved_state(self) -> Optional[dict]:
        raw = self.read_file("saved_state.json")
        if raw is None:
            return None
        return json.loads(raw)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<App {self.package} uid={self.uid} {self.state.value}>"
