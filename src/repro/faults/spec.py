"""Fault schedules: what breaks, where, when, and for how long.

A :class:`FaultPlan` is a seed plus an ordered list of :class:`FaultSpec`
entries.  The plan is pure data — it can be built in code, parsed from a
dict/JSON (the schema below), round-tripped, and replayed: the same plan
and seed always produce the same injected faults at the same virtual
times (see :mod:`repro.faults.injector`).

Schema (``FaultPlan.from_dict``)::

    {
      "seed": 7,
      "faults": [
        {"kind": "link-loss",       "target": "vd1",           "at_s": 12.0, "duration_s": 4.0},
        {"kind": "link-latency",    "target": "vd1",           "at_s": 20.0, "duration_s": 5.0,
         "params": {"factor": 8.0}},
        {"kind": "binder-failure",  "target": "",              "at_s": 30.0, "duration_s": 1.0,
         "params": {"rate": 0.5}},
        {"kind": "service-error",   "target": "CameraService", "at_s": 35.0, "duration_s": 2.0},
        {"kind": "sensor-dropout",  "target": "imu",           "at_s": 40.0, "duration_s": 0.5},
        {"kind": "container-crash", "target": "vd1",           "at_s": 50.0},
        {"kind": "vdc-restart",     "target": "",              "at_s": 60.0,
         "params": {"downtime_s": 0.5}}
      ]
    }

Every fault kind, its targets and its parameters are documented in
``docs/FAULTS.md``.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class FaultError(RuntimeError):
    """Base class for fault-injection failures."""


class FaultConfigError(FaultError):
    """A fault plan or spec is malformed."""


class FaultKind(enum.Enum):
    """Every fault the injector knows how to apply."""

    LINK_LOSS = "link-loss"             # radio/MAVLink link drops everything
    LINK_LATENCY = "link-latency"       # latency spike on a link
    BINDER_FAILURE = "binder-failure"   # binder transactions fail transiently
    SERVICE_ERROR = "service-error"     # a device service errors its calls
    SENSOR_DROPOUT = "sensor-dropout"   # one sensor stops producing readings
    CONTAINER_CRASH = "container-crash" # a tenant container dies abruptly
    VDC_RESTART = "vdc-restart"         # the VDC daemon restarts

    @classmethod
    def parse(cls, value: str) -> "FaultKind":
        for kind in cls:
            if kind.value == value:
                return kind
        known = ", ".join(k.value for k in cls)
        raise FaultConfigError(f"unknown fault kind {value!r} (known: {known})")


#: Kinds that are instantaneous — a ``duration_s`` makes no sense for them.
_INSTANT_KINDS = (FaultKind.CONTAINER_CRASH, FaultKind.VDC_RESTART)

_SPEC_KEYS = {"kind", "target", "at_s", "duration_s", "params"}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault."""

    kind: FaultKind
    #: What the fault hits: a link/tenant name for link faults and crashes,
    #: a service name for service errors, a sensor name for dropouts.
    #: Binder failures and VDC restarts are drone-wide ("" target).
    target: str = ""
    #: Injection time, in virtual seconds from simulation start.
    at_s: float = 0.0
    #: How long the fault stays active; 0 for instantaneous kinds.
    duration_s: float = 0.0
    params: Dict[str, object] = field(default_factory=dict)

    def validate(self) -> None:
        if self.at_s < 0:
            raise FaultConfigError(f"{self.kind.value}: negative at_s {self.at_s}")
        if self.duration_s < 0:
            raise FaultConfigError(
                f"{self.kind.value}: negative duration_s {self.duration_s}")
        if self.kind in _INSTANT_KINDS and self.duration_s:
            raise FaultConfigError(
                f"{self.kind.value} is instantaneous; duration_s must be 0")
        if self.kind not in _INSTANT_KINDS \
                and self.kind is not FaultKind.BINDER_FAILURE \
                and not self.target:
            raise FaultConfigError(f"{self.kind.value}: target is required")
        rate = self.params.get("rate")
        if rate is not None and not (0.0 < float(rate) <= 1.0):
            raise FaultConfigError(f"{self.kind.value}: rate must be in (0, 1]")

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind.value, "target": self.target,
                     "at_s": self.at_s}
        if self.duration_s:
            out["duration_s"] = self.duration_s
        if self.params:
            out["params"] = dict(self.params)
        return out

    @classmethod
    def from_dict(cls, raw: dict) -> "FaultSpec":
        if not isinstance(raw, dict):
            raise FaultConfigError(f"fault spec must be an object, got {raw!r}")
        unknown = set(raw) - _SPEC_KEYS
        if unknown:
            raise FaultConfigError(
                f"unknown fault spec keys: {sorted(unknown)}")
        if "kind" not in raw:
            raise FaultConfigError(f"fault spec missing 'kind': {raw!r}")
        spec = cls(
            kind=FaultKind.parse(str(raw["kind"])),
            target=str(raw.get("target", "")),
            at_s=float(raw.get("at_s", 0.0)),
            duration_s=float(raw.get("duration_s", 0.0)),
            params=dict(raw.get("params") or {}),
        )
        spec.validate()
        return spec


@dataclass
class FaultPlan:
    """A seed plus the ordered fault schedule for one chaos run."""

    seed: int = 0
    faults: List[FaultSpec] = field(default_factory=list)

    def validate(self) -> None:
        for spec in self.faults:
            spec.validate()

    def add(self, kind: FaultKind, target: str = "", at_s: float = 0.0,
            duration_s: float = 0.0, params: Optional[dict] = None,
            **extra) -> "FaultPlan":
        """Builder convenience; returns self for chaining.

        Fault parameters may be passed as a dict (``params={"rate": .5}``)
        or as keyword arguments (``rate=.5``); both merge into the spec.
        """
        merged = dict(params or {})
        merged.update(extra)
        spec = FaultSpec(kind=kind, target=target, at_s=at_s,
                         duration_s=duration_s, params=merged)
        spec.validate()
        self.faults.append(spec)
        return self

    def to_dict(self) -> dict:
        return {"seed": self.seed,
                "faults": [spec.to_dict() for spec in self.faults]}

    @classmethod
    def from_dict(cls, raw: dict) -> "FaultPlan":
        if not isinstance(raw, dict):
            raise FaultConfigError(f"fault plan must be an object, got {raw!r}")
        unknown = set(raw) - {"seed", "faults"}
        if unknown:
            raise FaultConfigError(f"unknown fault plan keys: {sorted(unknown)}")
        faults_raw = raw.get("faults", [])
        if not isinstance(faults_raw, list):
            raise FaultConfigError("'faults' must be a list")
        return cls(seed=int(raw.get("seed", 0)),
                   faults=[FaultSpec.from_dict(f) for f in faults_raw])

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultConfigError(f"invalid fault plan JSON: {exc}") from exc
        return cls.from_dict(raw)
