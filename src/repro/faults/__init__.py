"""Deterministic fault injection & resilience for the onboard stack.

Three pieces (full reference in ``docs/FAULTS.md``):

* :mod:`repro.faults.spec` — the fault vocabulary (:class:`FaultKind`),
  schedules (:class:`FaultSpec` / :class:`FaultPlan`) and their JSON
  config schema, with typed :class:`FaultConfigError` validation;
* :mod:`repro.faults.policies` — retry-with-exponential-backoff
  (:class:`RetryPolicy`, :func:`retry_call`) used by the binder/HAL and
  device-service call sites;
* :mod:`repro.faults.injector` — the seeded :class:`FaultInjector` that
  schedules faults on the discrete-event clock and applies them by
  reversible mutation, so chaos runs replay bit-for-bit and fault-free
  runs are byte-identical to an uninstrumented build.

Typical chaos run::

    plan = FaultPlan(seed=7).add(FaultKind.CONTAINER_CRASH, "vd1", at_s=30)
    injector = FaultInjector(system.sim, plan).attach_node(node).start()
    node.vdc.enable_supervision()
    ...  # fly the mission
    assert injector.log  # deterministic inject/clear record
"""

from repro.faults.injector import SENSOR_SERVICES, FaultInjector
from repro.faults.policies import RetriesExhausted, RetryPolicy, retry_call
from repro.faults.spec import (
    FaultConfigError,
    FaultError,
    FaultKind,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "FaultConfigError", "FaultError", "FaultInjector", "FaultKind",
    "FaultPlan", "FaultSpec", "RetriesExhausted", "RetryPolicy",
    "SENSOR_SERVICES", "retry_call",
]
