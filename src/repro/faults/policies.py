"""Resilience policies: retry with exponential backoff.

:class:`RetryPolicy` is the schedule math (base, multiplier, cap, optional
jitter); :func:`retry_call` applies it to a synchronous callable.

Backoff delays are *accounted, not slept*: binder and device-service calls
are synchronous within a single simulator event, so a retrying caller
cannot suspend mid-call.  Instead the computed delay for every retry is
recorded (``fault.retry_backoff_us`` histogram) and the retries execute
immediately.  Components that *can* wait — the VDC supervision loop, link
recovery — use real simulator delays.  Determinism: without an ``rng``
the schedule is a pure function of the attempt number; with one, jitter
draws from a named seeded stream (see :mod:`repro.sim.rng`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple, Type

import repro.obs as obs


class RetriesExhausted(RuntimeError):
    """A retried call failed on every attempt; ``last`` is the final error."""

    def __init__(self, label: str, attempts: int, last: BaseException):
        super().__init__(
            f"{label or 'call'} failed after {attempts} attempt(s): {last}")
        self.label = label
        self.attempts = attempts
        self.last = last


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff: ``base * multiplier^(n-1)`` capped at ``cap``.

    ``jitter`` adds up to that fraction of the computed delay, drawn
    uniformly from the supplied rng (full determinism when the rng comes
    from a seeded :class:`~repro.sim.rng.RngRegistry` stream).
    """

    max_attempts: int = 4
    base_us: int = 10_000
    cap_us: int = 1_000_000
    multiplier: float = 2.0
    jitter: float = 0.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_us < 0 or self.cap_us < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_us(self, attempt: int, rng=None) -> int:
        """Delay before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = min(float(self.cap_us),
                    self.base_us * self.multiplier ** (attempt - 1))
        if self.jitter and rng is not None:
            delay += delay * self.jitter * rng.random()
        return int(round(delay))

    def schedule_us(self, rng=None) -> List[int]:
        """The full backoff schedule: one delay per retry (attempts - 1)."""
        return [self.backoff_us(n, rng) for n in range(1, self.max_attempts)]


def retry_call(
    fn: Callable,
    policy: RetryPolicy,
    *,
    retry_on: Tuple[Type[BaseException], ...] = (RuntimeError,),
    rng=None,
    label: str = "",
):
    """Call ``fn()`` under ``policy``, retrying on ``retry_on`` exceptions.

    Raises :class:`RetriesExhausted` (chaining the last error) once the
    attempt budget is spent.  Non-matching exceptions propagate
    immediately.  The success path adds no work beyond the loop check.
    """
    attempt = 1
    while True:
        try:
            return fn()
        except retry_on as exc:
            if attempt >= policy.max_attempts:
                obs.counter("fault.retries_exhausted", call=label or "call").inc()
                raise RetriesExhausted(label, attempt, exc) from exc
            backoff = policy.backoff_us(attempt, rng)
            obs.counter("fault.retries", call=label or "call").inc()
            obs.histogram("fault.retry_backoff_us", unit="us",
                          call=label or "call").observe(backoff)
            attempt += 1
