"""The deterministic fault-injection engine.

The :class:`FaultInjector` takes a :class:`~repro.faults.spec.FaultPlan`,
binds the live objects faults can hit (links, the binder driver, device
services, the VDC), and schedules every fault on the discrete-event clock.
Faults apply by *reversible mutation* of the bound objects — when no
injector is attached the production paths are untouched, so a run without
faults is bit-for-bit identical to a build without this module.

Determinism: injection times come from the plan, probabilistic decisions
(partial binder failure rates, latency jitter) draw from named streams of
a :class:`~repro.sim.rng.RngRegistry` seeded with ``plan.seed``, and the
injector keeps an append-only :attr:`log` of every inject/clear action
stamped with virtual time.  Two runs with the same plan, seed and
workload replay the identical log and telemetry trace.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

import repro.obs as obs
from repro.faults.spec import FaultError, FaultPlan, FaultSpec
from repro.sim.rng import RngRegistry
from repro.sim.time import seconds

#: Sensor-dropout targets and the (service, code) they interrupt.
SENSOR_SERVICES = {
    "imu": ("SensorService", "read"),
    "barometer": ("SensorService", "read"),
    "magnetometer": ("SensorService", "read"),
    "gps": ("LocationManagerService", "native_get_location"),
}


class FaultInjector:
    """Schedules and applies one :class:`FaultPlan` on one simulator."""

    def __init__(self, sim, plan: FaultPlan, rng: Optional[RngRegistry] = None):
        plan.validate()
        self.sim = sim
        self.plan = plan
        self._rng = rng or RngRegistry(plan.seed)
        self._binder_rng = self._rng.stream("faults.binder")
        #: Deterministic action log: dicts of t/action/kind/target.
        self.log: List[dict] = []
        self._links: Dict[str, object] = {}
        self._driver = None
        self._services: Dict[str, object] = {}
        self._vdc = None
        #: Active binder faults: list of (target_label, rate).
        self._binder_faults: List[Tuple[str, float]] = []
        #: Active service faults per service name: list of predicates.
        self._service_faults: Dict[str, List[Callable]] = {}
        self.started = False

    # ------------------------------------------------------------- binding
    def bind_link(self, name: str, link) -> "FaultInjector":
        """Register a :class:`~repro.net.link.LinkModel` under ``name``."""
        self._links[name] = link
        return self

    def bind_binder(self, driver) -> "FaultInjector":
        self._driver = driver
        return self

    def bind_service(self, service) -> "FaultInjector":
        """Register a device service (its ``name`` attribute is the key)."""
        self._services[service.name] = service
        return self

    def bind_vdc(self, vdc) -> "FaultInjector":
        self._vdc = vdc
        return self

    def attach_node(self, node) -> "FaultInjector":
        """Bind everything faultable on an assembled DroneNode."""
        self.bind_binder(node.driver)
        self.bind_vdc(node.vdc)
        for service in node.device_env.system_server.services.values():
            self.bind_service(service)
        return self

    # ------------------------------------------------------------ schedule
    def start(self) -> "FaultInjector":
        """Arm every fault in the plan on the simulator clock."""
        if self.started:
            raise FaultError("injector already started")
        self.started = True
        for index, spec in enumerate(self.plan.faults):
            self.sim.at(max(self.sim.now, seconds(spec.at_s)),
                        partial(self._inject, index, spec))
        return self

    # ----------------------------------------------------------- injection
    def _record(self, action: str, spec: FaultSpec) -> None:
        self.log.append({"t": self.sim.now, "action": action,
                         "kind": spec.kind.value, "target": spec.target})

    def _inject(self, index: int, spec: FaultSpec) -> None:
        revert = self._apply(spec)
        self._record("inject", spec)
        obs.event("fault.injected", kind=spec.kind.value, target=spec.target,
                  index=index, duration_s=spec.duration_s)
        obs.counter("fault.injected_total", kind=spec.kind.value).inc()
        if revert is not None:
            self.sim.after(seconds(spec.duration_s),
                           partial(self._clear, index, spec, revert))

    def _clear(self, index: int, spec: FaultSpec, revert: Callable) -> None:
        revert()
        self._record("clear", spec)
        obs.event("fault.cleared", kind=spec.kind.value, target=spec.target,
                  index=index)
        obs.counter("fault.cleared_total", kind=spec.kind.value).inc()

    def _apply(self, spec: FaultSpec) -> Optional[Callable]:
        """Apply one fault; returns the revert closure (None = instant)."""
        apply = getattr(self, f"_apply_{spec.kind.name.lower()}")
        return apply(spec)

    # -- link faults --------------------------------------------------------
    def _vfc_for(self, target: str):
        if self._vdc is not None:
            return self._vdc.proxy.vfcs.get(target)
        return None

    def _apply_link_loss(self, spec: FaultSpec) -> Callable:
        link = self._links.get(spec.target)
        vfc = self._vfc_for(spec.target)
        if link is None and vfc is None:
            raise FaultError(f"link-loss: no link or VFC named {spec.target!r}")
        saved_loss = None
        if link is not None:
            saved_loss = link.loss_prob
            link.loss_prob = 1.0
        if vfc is not None:
            vfc.link_down()

        def revert():
            if link is not None:
                link.loss_prob = saved_loss
            if vfc is not None:
                vfc.link_up()
        return revert

    def _apply_link_latency(self, spec: FaultSpec) -> Callable:
        link = self._links.get(spec.target)
        if link is None:
            raise FaultError(f"link-latency: no link named {spec.target!r}")
        factor = float(spec.params.get("factor", 10.0))
        saved = (link.mean_us, link.stddev_us, link.max_us, link.min_us)
        link.mean_us *= factor
        link.stddev_us *= factor
        link.max_us *= factor
        link.min_us *= factor

        def revert():
            link.mean_us, link.stddev_us, link.max_us, link.min_us = saved
        return revert

    # -- binder faults ------------------------------------------------------
    def _binder_hook(self, proc, node, code: str):
        """Installed as BinderDriver.fault_hook while binder faults run."""
        from repro.binder.driver import TransientBinderError

        label = node.label or ""
        for target, rate in self._binder_faults:
            if target and target != label:
                continue
            if rate >= 1.0 or self._binder_rng.random() < rate:
                obs.counter("fault.binder_failures",
                            service=label or "anonymous").inc()
                return TransientBinderError(
                    f"injected binder fault on {label or code!r}")
        return None

    def _apply_binder_failure(self, spec: FaultSpec) -> Callable:
        if self._driver is None:
            raise FaultError("binder-failure: no binder driver bound")
        entry = (spec.target, float(spec.params.get("rate", 1.0)))
        self._binder_faults.append(entry)
        self._driver.fault_hook = self._binder_hook

        def revert():
            self._binder_faults.remove(entry)
            if not self._binder_faults:
                self._driver.fault_hook = None
        return revert

    # -- device-service faults ----------------------------------------------
    def _service_hook(self, service_name: str):
        def hook(txn):
            for predicate in self._service_faults.get(service_name, ()):
                message = predicate(txn)
                if message:
                    return message
            return None
        return hook

    def _install_service_fault(self, service_name: str,
                               predicate: Callable) -> Callable:
        service = self._services.get(service_name)
        if service is None:
            raise FaultError(f"no device service named {service_name!r} bound")
        active = self._service_faults.setdefault(service_name, [])
        active.append(predicate)
        service.fault_hook = self._service_hook(service_name)

        def revert():
            active.remove(predicate)
            if not active:
                service.fault_hook = None
        return revert

    def _apply_service_error(self, spec: FaultSpec) -> Callable:
        name = spec.target

        def predicate(txn):
            return f"{name}: injected transient service error"
        return self._install_service_fault(name, predicate)

    def _apply_sensor_dropout(self, spec: FaultSpec) -> Callable:
        sensor = spec.target
        if sensor not in SENSOR_SERVICES:
            raise FaultError(
                f"sensor-dropout: unknown sensor {sensor!r} "
                f"(known: {sorted(SENSOR_SERVICES)})")
        service_name, code = SENSOR_SERVICES[sensor]

        def predicate(txn):
            if txn.code != code:
                return None
            if service_name == "SensorService" \
                    and txn.data.get("sensor") != sensor:
                return None
            return f"{sensor}: injected sensor dropout"
        return self._install_service_fault(service_name, predicate)

    # -- container / daemon faults --------------------------------------------
    def _apply_container_crash(self, spec: FaultSpec) -> None:
        if self._vdc is None:
            raise FaultError("container-crash: no VDC bound")
        self._vdc.crash_container(spec.target)
        return None

    def _apply_vdc_restart(self, spec: FaultSpec) -> None:
        if self._vdc is None:
            raise FaultError("vdc-restart: no VDC bound")
        self._vdc.simulate_restart(
            downtime_s=float(spec.params.get("downtime_s", 0.5)))
        return None
