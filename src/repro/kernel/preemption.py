"""Kernel preemptibility model — the heart of the Figure 11 reproduction.

On real hardware, the latency between a high-resolution timer firing and
the highest-priority SCHED_FIFO thread actually running is dominated by
*non-preemptible sections*: regions where the kernel runs with preemption
or local interrupts disabled.  Under CONFIG_PREEMPT those sections can
stretch to many milliseconds when the system is loaded with I/O and
interrupts; under PREEMPT_RT, threaded interrupt handlers and sleeping
spinlocks bound them to the microsecond range.

We model this statistically rather than section-by-section: at each RT
wakeup the model samples the residual non-preemptible delay from a
distribution parameterized by the kernel configuration and the current
system activity (CPU, I/O, IRQ, and syscall load, all tracked by the
kernel as time-decayed utilizations).  The distribution is a light-tailed
body (scheduler/irq entry costs) plus, for PREEMPT, a rare heavy tail
representing long preemption-disabled windows.

Calibration targets (paper Figure 11, 100M-sample cyclictest runs):

====================  ==========  ==========
scenario              avg (us)    max (us)
====================  ==========  ==========
PREEMPT idle          17          1,307
PREEMPT PassMark      44          14,513
PREEMPT stress        162         17,819
PREEMPT_RT idle       10          103
PREEMPT_RT PassMark   12          382
PREEMPT_RT stress     16          340
====================  ==========  ==========

Our runs use far fewer samples, so observed maxima land somewhat below the
paper's; the orders of magnitude and the PREEMPT vs PREEMPT_RT separation
are what the model reproduces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.kernel.config import KernelConfig, PreemptionMode


@dataclass
class Activity:
    """Instantaneous system activity, each component in [0, 1]."""

    cpu_load: float = 0.0
    io_load: float = 0.0
    irq_load: float = 0.0
    syscall_load: float = 0.0

    def clamped(self) -> "Activity":
        def c(x: float) -> float:
            return min(1.0, max(0.0, x))

        return Activity(
            c(self.cpu_load), c(self.io_load), c(self.irq_load), c(self.syscall_load)
        )


class Ewma:
    """Time-decayed exponential moving average of a 0/1 busy indicator.

    ``update(now, value)`` folds in the level held since the last update;
    used by the kernel to track CPU, I/O and IRQ utilization cheaply.
    """

    def __init__(self, tau_us: float = 100_000.0):
        self.tau_us = float(tau_us)
        self._value = 0.0
        self._level = 0.0
        self._last_us = 0

    def update(self, now_us: int, level: float) -> None:
        dt = max(0, now_us - self._last_us)
        if dt:
            alpha = math.exp(-dt / self.tau_us)
            self._value = self._value * alpha + self._level * (1.0 - alpha)
            self._last_us = now_us
        self._level = level

    def read(self, now_us: int) -> float:
        self.update(now_us, self._level)
        return self._value


class PreemptionModel:
    """Samples RT wakeup latencies given kernel config and activity."""

    def __init__(self, config: KernelConfig, rng):
        self.config = config
        self._rng = rng

    # -- body of the distribution -------------------------------------------------
    def _body_mean(self, act: Activity) -> float:
        if self.config.preemption is PreemptionMode.PREEMPT_RT:
            # PREEMPT_RT keeps dispatch latency nearly load-independent.
            return 7.0 + 2.0 * act.cpu_load + 4.0 * act.io_load + 2.0 * act.irq_load
        # PREEMPT: softirqs and syscalls inflate the common case with load.
        return (
            9.0
            + 6.0 * act.cpu_load
            + 70.0 * act.io_load * act.io_load
            + 8.0 * act.irq_load
            + 8.0 * act.syscall_load
        )

    def _sample_body(self, mean: float) -> float:
        # Log-normal with sigma=0.6 gives a realistic right-skewed body.
        sigma = 0.6
        mu = math.log(mean) - 0.5 * sigma * sigma
        return self._rng.lognormvariate(mu, sigma)

    # -- heavy tail: long non-preemptible windows --------------------------------
    def _tail_params(self, act: Activity):
        """Return (probability, max_window_us) of hitting a long window."""
        if self.config.preemption is PreemptionMode.PREEMPT_RT:
            # Residual spikes only; bounded in the low hundreds of us.
            cutoff = 90.0 + 260.0 * max(act.io_load, act.irq_load, act.cpu_load)
            return 0.002, cutoff
        window = 1_250.0 + 16_500.0 * min(
            1.0, 0.45 * act.io_load + 0.75 * act.irq_load
        )
        prob = 0.0015 + 0.0035 * act.io_load + 0.0020 * act.irq_load
        return prob, window

    def sample_wakeup_latency(self, activity: Activity) -> float:
        """One draw of the timer-to-dispatch latency, in microseconds."""
        act = activity.clamped()
        latency = self._sample_body(self._body_mean(act))
        prob, window = self._tail_params(act)
        if self._rng.random() < prob:
            latency += self._rng.uniform(0.15, 1.0) * window
        if self.config.preemption is PreemptionMode.PREEMPT_RT:
            # The RT kernel bounds worst-case latency by design.
            _, cutoff = self._tail_params(act)
            latency = min(latency, cutoff + 45.0)
        return latency
