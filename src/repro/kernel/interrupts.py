"""Interrupt sources.

Network and sensor hardware raise interrupts independent of thread
activity.  An :class:`IrqSource` periodically injects IRQ activity into
the kernel's accounting, feeding the preemption model (heavy interrupt
load is what stretches PREEMPT's non-preemptible windows in Figure 11).
"""

from __future__ import annotations


from repro.kernel.kernel import Kernel


class IrqSource:
    """A periodic interrupt generator (e.g. the NIC while iperf runs)."""

    def __init__(self, kernel: Kernel, name: str, rate_hz: float):
        if rate_hz <= 0:
            raise ValueError("rate must be positive")
        self.kernel = kernel
        self.name = name
        self.rate_hz = float(rate_hz)
        self._running = False
        self._jitter = kernel.rng.stream(f"irq.{name}")

    @property
    def period_us(self) -> float:
        return 1e6 / self.rate_hz

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._tick()

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.kernel.note_irq()
        delay = self._jitter.expovariate(1.0) * self.period_us
        self.kernel.sim.after(max(1, int(delay)), self._tick)
