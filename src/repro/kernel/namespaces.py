"""Kernel namespaces.

AnDrone's container architecture relies on standard Linux namespaces for
isolation plus the *device namespace* concept (Cells/AnDrone lineage) that
the Binder driver uses to give each container its own Context Manager.
This module models namespace identity; the Binder-specific behaviour lives
in :mod:`repro.binder.driver`.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Dict


class NamespaceKind(enum.Enum):
    PID = "pid"
    NET = "net"
    MOUNT = "mnt"
    UTS = "uts"
    IPC = "ipc"
    DEVICE = "device"   # the Cells-style device namespace


@dataclass(frozen=True)
class Namespace:
    """An instance of one namespace kind."""

    kind: NamespaceKind
    ns_id: int
    label: str = ""

    def __str__(self) -> str:
        return f"{self.kind.value}:{self.ns_id}({self.label})"


def _stable_ns_id(kind: NamespaceKind, label: str) -> int:
    """Content-derived namespace id.

    Ids are a function of (kind, owner label) alone — no process-global
    counter — so a container gets the same namespace identity whether the
    fleet runs serially or partitioned across executor shards
    (repro-lint: fork-safety).  Owner labels are unique within a host, so
    ids are unique wherever namespaces can meet (e.g. one Binder driver).
    """
    digest = hashlib.sha256(f"{kind.value}:{label}".encode()).digest()
    return int.from_bytes(digest[:6], "big")


class NamespaceSet:
    """The full set of namespaces a container (or the host) lives in."""

    def __init__(self, label: str, parent: "NamespaceSet" = None, isolate=None):
        """Create a namespace set.

        Args:
            label: human-readable owner name (container name or "host").
            parent: namespaces to inherit from for kinds not isolated.
            isolate: iterable of :class:`NamespaceKind` to create fresh
                instances of.  Containers isolate everything by default.
        """
        self.label = label
        if isolate is None:
            isolate = list(NamespaceKind) if parent is not None else []
        isolate = set(isolate)
        self._spaces: Dict[NamespaceKind, Namespace] = {}
        for kind in NamespaceKind:
            if parent is not None and kind not in isolate:
                self._spaces[kind] = parent.get(kind)
            else:
                self._spaces[kind] = Namespace(kind, _stable_ns_id(kind, label), label)

    def get(self, kind: NamespaceKind) -> Namespace:
        return self._spaces[kind]

    @property
    def device_ns(self) -> Namespace:
        """The device namespace — Binder's isolation unit in AnDrone."""
        return self.get(NamespaceKind.DEVICE)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NamespaceSet {self.label!r}>"
