"""The simulated kernel: scheduler, timers, I/O, and activity tracking.

Threads are generator programs yielding :mod:`repro.kernel.ops` operations.
The kernel multiplexes them over ``config.num_cpus`` simulated CPUs with a
CFS-like fair scheduler for SCHED_NORMAL threads and strict priority
preemptive scheduling for SCHED_FIFO threads.  Timer wakeups of RT threads
pass through the :class:`~repro.kernel.preemption.PreemptionModel`, which
is how the PREEMPT vs PREEMPT_RT latency difference (Figure 11) emerges.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Dict, List, Optional

import repro.obs as obs
from repro.kernel import ops
from repro.kernel.cgroups import CgroupManager
from repro.kernel.config import KernelConfig
from repro.kernel.memory import MemoryAccounting
from repro.kernel.preemption import Activity, Ewma, PreemptionModel
from repro.kernel.thread import SchedPolicy, Thread, ThreadState
from repro.sim import RngRegistry, Simulator

#: Cost of the context-switch stub charged when a thread is woken.
_RESUME_COST_US = 0.5
#: Sentinel: resume value is the measured wakeup latency.
_WAKE_LATENCY = object()


class _RateEwma:
    """Exponentially-decayed rate/utilization estimator fed by impulses."""

    def __init__(self, tau_us: float):
        self.tau_us = float(tau_us)
        self._value = 0.0
        self._last_us = 0

    def add(self, now_us: int, amount: float) -> None:
        self._decay(now_us)
        self._value += amount / self.tau_us

    def read(self, now_us: int) -> float:
        self._decay(now_us)
        return self._value

    def _decay(self, now_us: int) -> None:
        dt = now_us - self._last_us
        if dt > 0:
            self._value *= math.exp(-dt / self.tau_us)
            self._last_us = now_us


class IoDevice:
    """A single-server FIFO I/O device (e.g. the microSD card, mmc0)."""

    def __init__(self, kernel: "Kernel", name: str):
        self.kernel = kernel
        self.name = name
        self.queue: List[tuple] = []
        self.busy = False
        self.utilization = Ewma(tau_us=100_000.0)
        self.completed = 0

    def submit(self, thread: Thread, service_us: float) -> None:
        self.queue.append((thread, service_us))
        if not self.busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self.queue:
            self.busy = False
            self.utilization.update(self.kernel.sim.now, 0.0)
            return
        self.busy = True
        self.utilization.update(self.kernel.sim.now, 1.0)
        thread, service_us = self.queue.pop(0)
        self.kernel.sim.after(
            max(1, int(round(service_us))), lambda: self._complete(thread)
        )

    def _complete(self, thread: Thread) -> None:
        self.completed += 1
        self.kernel.note_irq()
        self.kernel._wake(thread, None)
        self._start_next()


class _CpuState:
    """Per-CPU bookkeeping."""

    def __init__(self, index: int):
        self.index = index
        self.thread: Optional[Thread] = None
        self.completion = None        # scheduled sim Event for slice end
        self.slice_work = 0.0         # work units in the current slice
        self.slice_wall = 0.0         # wall-clock length of the slice
        self.started_at = 0           # sim time the slice started


class Kernel:
    """A simulated kernel instance (one per physical drone SBC)."""

    def __init__(
        self,
        sim: Simulator,
        rng: RngRegistry,
        config: Optional[KernelConfig] = None,
        name: str = "host",
    ):
        self.sim = sim
        self.name = name
        self.config = config or KernelConfig()
        self.rng = rng
        self.preemption = PreemptionModel(self.config, rng.stream(f"{name}.preempt"))
        self.memory = MemoryAccounting(self.config.memory_kb)
        self.cgroups = CgroupManager()
        self._tids = itertools.count(1)
        self._arrival = itertools.count()
        self.threads: Dict[int, Thread] = {}
        self._cpus = [_CpuState(i) for i in range(self.config.num_cpus)]
        # Run queues: RT is a heap keyed by (-priority, arrival); NORMAL is a
        # heap keyed by (vruntime, arrival).  Entries are lazily invalidated.
        self._rt_queue: List[tuple] = []
        self._normal_queue: List[tuple] = []
        self._queued: set = set()
        self._wait_channels: Dict[Any, List[Thread]] = {}
        self.io_devices: Dict[str, IoDevice] = {}
        # Activity tracking for the preemption model and the power model.
        self._cpu_util = Ewma(tau_us=100_000.0)
        self._irq_rate = _RateEwma(tau_us=100_000.0)
        self._syscall_util = _RateEwma(tau_us=100_000.0)
        self._busy_integral_us = 0.0   # cumulative busy cpu-time for power
        self._mem_bound_running = 0    # concurrent MemAccess slices
        # Throughput penalty factors (see DESIGN.md calibration notes).
        if self.config.is_rt():
            self._cpu_penalty = 1.005
            self._syscall_penalty = 1.03
            self._io_penalty = 1.10
            self._mem_bw_beta = 0.65
        else:
            self._cpu_penalty = 1.0
            self._syscall_penalty = 1.0
            self._io_penalty = 1.0
            self._mem_bw_beta = 0.40
        #: Per-container I/O overhead of the overlay filesystem.
        self._container_io_overhead = 1.015
        #: Per-container CPU overhead (namespaces, seccomp, cgroup hooks).
        self._container_cpu_overhead = 1.012

    # ------------------------------------------------------------------ spawn
    def spawn(
        self,
        program,
        name: str = "",
        policy: SchedPolicy = SchedPolicy.NORMAL,
        priority: int = 0,
        nice: int = 0,
        container: str = "",
        uid: int = 0,
    ) -> Thread:
        """Create a thread from a generator program and make it runnable."""
        thread = Thread(
            next(self._tids),
            program,
            name=name,
            policy=policy,
            priority=priority,
            nice=nice,
            container=container,
            uid=uid,
        )
        # New NORMAL threads start at the minimum queued vruntime so they
        # neither starve nor monopolise.
        thread.vruntime = self._min_vruntime()
        self.threads[thread.tid] = thread
        thread.state = ThreadState.READY
        obs.counter("kernel.spawns", container=container or "host",
                    policy=policy.name).inc()
        self.sim.call_soon(lambda: self._advance(thread, None))
        return thread

    def kill(self, thread: Thread) -> None:
        """Terminate a thread immediately (used by the VDC to enforce
        device-access revocation, Section 4.4)."""
        if not thread.alive:
            return
        if thread.state is ThreadState.RUNNING and thread.cpu is not None:
            cpu = self._cpus[thread.cpu]
            if cpu.completion is not None:
                cpu.completion.cancel()
            self._account_partial(cpu)
            cpu.thread = None
            thread.cpu = None
            self._update_cpu_util()
            self._dispatch(cpu)
        thread.state = ThreadState.DEAD
        self._queued.discard(thread.tid)
        self.notify(("thread-exit", thread.tid), None)

    def device(self, name: str) -> IoDevice:
        if name not in self.io_devices:
            self.io_devices[name] = IoDevice(self, name)
        return self.io_devices[name]

    # --------------------------------------------------------------- activity
    def note_irq(self, count: float = 1.0) -> None:
        """Record interrupt activity (I/O completions, network RX, ...)."""
        self._irq_rate.add(self.sim.now, count)

    def activity(self) -> Activity:
        """Snapshot of current system activity for the preemption model."""
        now = self.sim.now
        io = 0.0
        for dev in self.io_devices.values():
            io += dev.utilization.read(now)
        # Normalize IRQ rate: ~6000 irq/s (saturated gigabit + disk) -> 1.0.
        irq = self._irq_rate.read(now) * 1e6 / 6000.0
        return Activity(
            cpu_load=self._cpu_util.read(now),
            io_load=min(1.0, io),
            irq_load=min(1.0, irq),
            syscall_load=min(1.0, self._syscall_util.read(now)),
        )

    def cpu_busy_integral_us(self) -> float:
        """Cumulative busy CPU-time (all CPUs), for the power model."""
        total = self._busy_integral_us
        for cpu in self._cpus:
            if cpu.thread is not None:
                total += self.sim.now - cpu.started_at
        return total

    def runnable_count(self) -> int:
        return len(self._queued) + sum(1 for c in self._cpus if c.thread)

    # ---------------------------------------------------------------- advance
    def _advance(self, thread: Thread, value: Any) -> None:
        """Resume a thread's generator with ``value`` and act on its yield."""
        if not thread.alive:
            return
        try:
            op = thread.program.send(value)
        except StopIteration as stop:
            thread.state = ThreadState.DEAD
            thread.exit_value = stop.value
            self.notify(("thread-exit", thread.tid), stop.value)
            return
        thread._current_op = op
        if isinstance(op, ops.Cpu):
            thread._op_remaining = op.duration_us * self._cpu_penalty * (
                self._container_cpu_overhead if thread.container else 1.0
            )
            self._make_runnable(thread)
        elif isinstance(op, ops.Syscall):
            cost = self.config.syscall_cost_us + op.duration_us
            thread._op_remaining = cost * self._syscall_penalty
            self._syscall_util.add(self.sim.now, cost)
            self._make_runnable(thread)
        elif isinstance(op, ops.MemAccess):
            thread._op_remaining = op.duration_us
            self._make_runnable(thread)
        elif isinstance(op, ops.Sleep):
            self._sleep_until(thread, self.sim.now + int(round(op.duration_us)))
        elif isinstance(op, ops.SleepUntil):
            self._sleep_until(thread, op.deadline_us)
        elif isinstance(op, ops.Io):
            thread.state = ThreadState.BLOCKED
            service = op.service_us * self._io_penalty * (
                self._container_io_overhead if thread.container else 1.0
            )
            self.device(op.device).submit(thread, service)
        elif isinstance(op, ops.Wait):
            thread.state = ThreadState.BLOCKED
            self._wait_channels.setdefault(op.channel, []).append(thread)
        elif isinstance(op, ops.Join):
            if not op.thread.alive:
                self.sim.call_soon(
                    lambda: self._advance(thread, op.thread.exit_value))
            else:
                thread.state = ThreadState.BLOCKED
                self._wait_channels.setdefault(
                    ("thread-exit", op.thread.tid), []).append(thread)
        elif isinstance(op, ops.Yield):
            # Push vruntime to the back of the fair queue and requeue.
            thread.vruntime = self._max_vruntime()
            thread._op_remaining = 0.0
            self.sim.call_soon(lambda: self._advance(thread, None))
        elif isinstance(op, ops.Fork):
            child = self.spawn(
                op.program,
                name=op.name or f"{thread.name}-child",
                policy=op.policy or thread.policy,
                priority=op.priority if op.priority is not None else thread.priority,
                container=thread.container,
                uid=thread.uid,
            )
            self.sim.call_soon(lambda: self._advance(thread, child))
        else:
            raise TypeError(f"thread {thread.name!r} yielded {op!r}")

    # ----------------------------------------------------------------- timers
    def _sleep_until(self, thread: Thread, deadline_us: int) -> None:
        thread.state = ThreadState.SLEEPING
        thread._requested_wake_us = max(deadline_us, self.sim.now)
        fire_at = max(deadline_us, self.sim.now)
        self.sim.at(fire_at, lambda: self._timer_fire(thread))

    def _timer_fire(self, thread: Thread) -> None:
        if not thread.alive:
            return
        delay = self.config.timer_irq_overhead_us
        if thread.is_rt:
            delay += self.preemption.sample_wakeup_latency(self.activity())
        self.note_irq(0.2)  # timer interrupts are cheap but countable
        self.sim.after(max(0, int(round(delay))), lambda: self._wake(thread, _WAKE_LATENCY))

    def _wake(self, thread: Thread, value: Any) -> None:
        """Make a blocked/sleeping thread runnable with a pending resume."""
        if not thread.alive or thread.state in (ThreadState.READY, ThreadState.RUNNING):
            return
        thread._send_value = value
        thread._current_op = "resume"
        thread._op_remaining = _RESUME_COST_US
        self._make_runnable(thread)

    def notify(self, channel: Any, value: Any = None) -> int:
        """Wake every thread blocked in ``ops.Wait(channel)``.

        Returns the number of threads woken.
        """
        waiters = self._wait_channels.pop(channel, [])
        for thread in waiters:
            self._wake(thread, value)
        return len(waiters)

    # -------------------------------------------------------------- scheduler
    def _min_vruntime(self) -> float:
        candidates = [t.vruntime for t in self.threads.values()
                      if t.alive and not t.is_rt and t.state in
                      (ThreadState.READY, ThreadState.RUNNING)]
        return min(candidates) if candidates else 0.0

    def _max_vruntime(self) -> float:
        candidates = [t.vruntime for t in self.threads.values()
                      if t.alive and not t.is_rt and t.state in
                      (ThreadState.READY, ThreadState.RUNNING)]
        return max(candidates) if candidates else 0.0

    def _make_runnable(self, thread: Thread) -> None:
        thread.state = ThreadState.READY
        self._enqueue(thread)
        idle = next((c for c in self._cpus if c.thread is None), None)
        if idle is not None:
            self._dispatch(idle)
            return
        if thread.is_rt:
            # Strict priority preemption: evict the weakest running thread
            # if it is weaker than the waker.
            victim_cpu = min(
                self._cpus, key=lambda c: c.thread.effective_priority()
            )
            if victim_cpu.thread.effective_priority() < thread.effective_priority():
                self._preempt(victim_cpu)

    def _enqueue(self, thread: Thread) -> None:
        if thread.tid in self._queued:
            return
        self._queued.add(thread.tid)
        seq = next(self._arrival)
        if thread.is_rt:
            heapq.heappush(self._rt_queue, (-thread.priority, seq, thread))
        else:
            weight = thread.weight() * self.cgroups.get(thread.container).weight_multiplier()
            heapq.heappush(
                self._normal_queue, (thread.vruntime, seq, thread, weight)
            )

    def _pop_next(self) -> Optional[Thread]:
        while self._rt_queue:
            _, _, thread = heapq.heappop(self._rt_queue)
            if thread.tid in self._queued and thread.state is ThreadState.READY:
                self._queued.discard(thread.tid)
                return thread
        deferred = []
        chosen = None
        while self._normal_queue:
            entry = heapq.heappop(self._normal_queue)
            _, _, thread, _ = entry
            if thread.tid not in self._queued or thread.state is not ThreadState.READY:
                continue
            # CFS bandwidth control: skip threads of throttled cgroups
            # until their next quota period opens.
            wake_at = self.cgroups.get(thread.container).throttled_until(self.sim.now)
            if wake_at is not None:
                deferred.append(entry)
                self._arm_unthrottle(wake_at)
                continue
            self._queued.discard(thread.tid)
            chosen = thread
            break
        for entry in deferred:
            heapq.heappush(self._normal_queue, entry)
        return chosen

    def _arm_unthrottle(self, wake_at: int) -> None:
        """Kick idle CPUs when a throttled cgroup's period rolls over."""
        if getattr(self, "_unthrottle_armed_until", -1) >= wake_at:
            return
        self._unthrottle_armed_until = wake_at

        def kick():
            for cpu in self._cpus:
                if cpu.thread is None:
                    self._dispatch(cpu)

        self.sim.at(max(wake_at, self.sim.now), kick)

    def _dispatch(self, cpu: _CpuState) -> None:
        if cpu.thread is not None:
            return
        thread = self._pop_next()
        if thread is None:
            self._update_cpu_util()
            return
        self._run_slice(cpu, thread)

    def _run_slice(self, cpu: _CpuState, thread: Thread) -> None:
        thread.state = ThreadState.RUNNING
        thread.cpu = cpu.index
        cpu.thread = thread
        work = thread._op_remaining
        if not thread.is_rt:
            work = min(work, self.config.sched_quantum_us)
        work = max(work, 0.05)
        wall = work
        if isinstance(thread._current_op, ops.MemAccess):
            self._mem_bound_running += 1
            m = self._mem_bound_running
            wall = work * (1.0 + self._mem_bw_beta * (m - 1))
        cpu.slice_work = work
        cpu.slice_wall = wall
        cpu.started_at = self.sim.now
        cpu.completion = self.sim.after(
            max(1, int(round(wall))), lambda: self._slice_done(cpu)
        )
        self._update_cpu_util()

    def _account_partial(self, cpu: _CpuState) -> None:
        """Charge a (possibly partial) slice to its thread on eviction."""
        thread = cpu.thread
        elapsed = self.sim.now - cpu.started_at
        frac = min(1.0, elapsed / cpu.slice_wall) if cpu.slice_wall else 1.0
        work_done = cpu.slice_work * frac
        thread._op_remaining = max(0.0, thread._op_remaining - work_done)
        thread.cpu_time_us += elapsed
        self._busy_integral_us += elapsed
        cgroup = self.cgroups.get(thread.container)
        cgroup.charge_cpu(elapsed)
        cgroup.charge_quota(self.sim.now, elapsed)
        if not thread.is_rt:
            weight = thread.weight() * self.cgroups.get(thread.container).weight_multiplier()
            thread.vruntime += work_done * 1024.0 / max(weight, 1e-9)
        if isinstance(thread._current_op, ops.MemAccess):
            self._mem_bound_running = max(0, self._mem_bound_running - 1)

    def _preempt(self, cpu: _CpuState) -> None:
        thread = cpu.thread
        if thread is None:
            return
        if cpu.completion is not None:
            cpu.completion.cancel()
        self._account_partial(cpu)
        cpu.thread = None
        thread.cpu = None
        if thread._op_remaining <= 1e-9:
            # The evicted slice had actually finished its op's work.
            self.sim.call_soon(lambda: self._finish_op(thread))
        else:
            thread.state = ThreadState.READY
            self._enqueue(thread)
        self._dispatch(cpu)

    def _slice_done(self, cpu: _CpuState) -> None:
        thread = cpu.thread
        if thread is None:
            return
        self._account_partial(cpu)
        cpu.thread = None
        cpu.completion = None
        thread.cpu = None
        if thread._op_remaining <= 1e-9:
            self._finish_op(thread)
        else:
            # Quantum expired mid-op: go to the back of the fair queue.
            thread.state = ThreadState.READY
            self._enqueue(thread)
        self._dispatch(cpu)

    def _finish_op(self, thread: Thread) -> None:
        if not thread.alive:
            return
        value = thread._send_value
        thread._send_value = None
        if value is _WAKE_LATENCY:
            value = float(self.sim.now - (thread._requested_wake_us or self.sim.now))
            thread._requested_wake_us = None
        thread._current_op = None
        self._advance(thread, value)

    def _update_cpu_util(self) -> None:
        busy = sum(1 for c in self._cpus if c.thread is not None)
        self._cpu_util.update(self.sim.now, busy / len(self._cpus))
