"""Kernel configuration.

The two preemption modes correspond to the kernels compared throughout the
paper's evaluation: the Navio2 default configuration with ``CONFIG_PREEMPT``
and AnDrone's default with the PREEMPT_RT patch set applied.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PreemptionMode(enum.Enum):
    """Kernel preemptibility level.

    PREEMPT: the stock preemptible kernel — preemption is disallowed while
    local interrupts are disabled, so heavy I/O and interrupt load opens
    long non-preemptible windows (the paper measured up to ~18 ms).

    PREEMPT_RT: the RT patch set — threaded interrupt handlers and sleeping
    spinlocks shrink non-preemptible windows to the microsecond scale
    (the paper measured at most ~400 us under stress).
    """

    PREEMPT = "preempt"
    PREEMPT_RT = "preempt_rt"


@dataclass
class KernelConfig:
    """Static configuration of a simulated kernel instance.

    Defaults model the paper's prototype: a Raspberry Pi 3 Model B with a
    4-core Cortex-A53 and 1 GB of RAM of which 880 MB is available to the
    OS after peripheral I/O and GPU carve-outs (Section 6.3).
    """

    num_cpus: int = 4
    cpu_freq_mhz: int = 1200
    memory_kb: int = 880 * 1024
    preemption: PreemptionMode = PreemptionMode.PREEMPT_RT
    # CFS-like scheduling quantum for SCHED_NORMAL threads.
    sched_quantum_us: int = 4_000
    # Fixed cost charged to every syscall-flavoured operation.
    syscall_cost_us: float = 1.0
    # Base timer-interrupt dispatch overhead (hardware + irq entry).
    timer_irq_overhead_us: float = 3.0
    hostname: str = "androne"

    def is_rt(self) -> bool:
        return self.preemption is PreemptionMode.PREEMPT_RT
