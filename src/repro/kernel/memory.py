"""Memory accounting.

Models the RAM budget of the drone SBC (880 MB usable on the prototype,
Section 6.3).  Allocations are tagged by owner so per-container usage can
be reported for Figure 12, and an allocation that does not fit raises
:class:`OutOfMemoryError` *without* disturbing existing allocations — the
paper notes that starting a fourth virtual drone fails but running virtual
drones are unaffected.
"""

from __future__ import annotations

from typing import Dict


class OutOfMemoryError(MemoryError):
    """Raised when an allocation exceeds the remaining RAM budget."""

    def __init__(self, owner: str, request_kb: int, free_kb: int):
        super().__init__(
            f"cannot allocate {request_kb} kB for {owner!r}: only {free_kb} kB free"
        )
        self.owner = owner
        self.request_kb = request_kb
        self.free_kb = free_kb


class MemoryAccounting:
    """Tracks RAM usage per owner against a fixed total."""

    def __init__(self, total_kb: int):
        if total_kb <= 0:
            raise ValueError("total_kb must be positive")
        self.total_kb = int(total_kb)
        self._usage: Dict[str, int] = {}

    @property
    def used_kb(self) -> int:
        return sum(self._usage.values())

    @property
    def free_kb(self) -> int:
        return self.total_kb - self.used_kb

    def usage_of(self, owner: str) -> int:
        return self._usage.get(owner, 0)

    def owners(self) -> Dict[str, int]:
        """Snapshot of per-owner usage in kB."""
        return dict(self._usage)

    def allocate(self, owner: str, kb: int) -> None:
        """Charge ``kb`` to ``owner``; raises OutOfMemoryError if it won't fit."""
        if kb < 0:
            raise ValueError("negative allocation")
        if kb > self.free_kb:
            raise OutOfMemoryError(owner, kb, self.free_kb)
        self._usage[owner] = self._usage.get(owner, 0) + kb

    def free(self, owner: str, kb: int = -1) -> None:
        """Release ``kb`` from ``owner`` (all of it if ``kb`` is -1)."""
        held = self._usage.get(owner, 0)
        if kb == -1:
            kb = held
        if kb > held:
            raise ValueError(f"{owner!r} frees {kb} kB but holds {held} kB")
        remaining = held - kb
        if remaining:
            self._usage[owner] = remaining
        else:
            self._usage.pop(owner, None)
