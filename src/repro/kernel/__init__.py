"""Simulated Linux kernel.

This package models the parts of Linux that AnDrone's evaluation depends
on: multi-CPU scheduling with both fair-share (CFS-like) and real-time
SCHED_FIFO policies, high-resolution timers, interrupt load, memory
accounting with cgroup limits, namespaces, and — crucially for Figure 11 —
an explicit model of *kernel preemptibility* distinguishing the PREEMPT and
PREEMPT_RT configurations.

Threads are Python generators yielding :mod:`repro.kernel.ops` operations
(``cpu``, ``sleep``, ``io``, ...); the kernel executes them on simulated
CPUs under its scheduler, so workload behaviour (contention, wakeup
latency) emerges from the same mechanisms as on real hardware.
"""

from repro.kernel.config import KernelConfig, PreemptionMode
from repro.kernel.kernel import Kernel
from repro.kernel.thread import Thread, ThreadState, SchedPolicy
from repro.kernel import ops
from repro.kernel.memory import OutOfMemoryError

__all__ = [
    "Kernel",
    "KernelConfig",
    "PreemptionMode",
    "Thread",
    "ThreadState",
    "SchedPolicy",
    "ops",
    "OutOfMemoryError",
]
