"""Thread (task) model.

A thread is a generator program plus scheduling metadata.  The kernel owns
all state transitions; this module only defines the data structures.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional


class SchedPolicy(enum.Enum):
    """Scheduling policy, mirroring Linux."""

    NORMAL = "SCHED_NORMAL"
    FIFO = "SCHED_FIFO"


class ThreadState(enum.Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    SLEEPING = "sleeping"   # blocked on a timer
    BLOCKED = "blocked"     # blocked on I/O or a wait channel
    DEAD = "dead"


class Thread:
    """A simulated kernel task.

    Attributes:
        tid: unique task id.
        program: the generator yielding :mod:`repro.kernel.ops` operations.
        policy: SCHED_NORMAL or SCHED_FIFO.
        priority: RT priority (1..99) for FIFO threads; higher wins.
        nice: weight adjustment for NORMAL threads (-20..19, lower = more CPU).
        container: name of the owning container ("" = host), used for
            cgroup accounting and Binder container identification.
        cpu_time_us: total CPU time consumed, for utilization accounting.
    """

    def __init__(
        self,
        tid: int,
        program: Generator,
        name: str = "",
        policy: SchedPolicy = SchedPolicy.NORMAL,
        priority: int = 0,
        nice: int = 0,
        container: str = "",
        uid: int = 0,
    ):
        self.tid = tid
        self.program = program
        self.name = name or f"task-{tid}"
        self.policy = policy
        self.priority = priority
        self.nice = nice
        self.container = container
        self.uid = uid
        self.state = ThreadState.NEW
        self.cpu: Optional[int] = None          # CPU currently running on
        self.vruntime = 0.0                     # CFS virtual runtime
        self.cpu_time_us = 0.0
        self.exit_value: Any = None
        # Remaining time of the operation currently being executed (for
        # resumable CPU bursts that get preempted mid-way).
        self._op_remaining = 0.0
        self._current_op = None
        # For Sleep/SleepUntil latency measurement.
        self._requested_wake_us: Optional[int] = None
        # Value to send into the generator on next resume.
        self._send_value: Any = None

    @property
    def is_rt(self) -> bool:
        return self.policy is SchedPolicy.FIFO

    @property
    def alive(self) -> bool:
        return self.state is not ThreadState.DEAD

    def effective_priority(self) -> int:
        """Key used by the scheduler: RT threads sort above all NORMAL."""
        return self.priority if self.is_rt else -1

    def weight(self) -> float:
        """CFS-style load weight derived from nice (1.25x per nice step)."""
        return 1024.0 / (1.25 ** self.nice)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Thread {self.tid} {self.name!r} {self.policy.value}"
            f" prio={self.priority} {self.state.value}>"
        )
