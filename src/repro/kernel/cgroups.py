"""Control groups: per-container resource limits and accounting.

Docker exposes these to AnDrone so it can "place restrictions on the
resources each virtual drone can use" (Section 4.1).  The evaluation runs
without resource controls ("Docker container resource controls were not
used"), so the benchmark harness creates unlimited cgroups, but the
mechanism is implemented and tested: CPU shares weight the scheduler, a
CPU quota caps utilization, and a memory limit bounds allocations before
they reach the global :class:`~repro.kernel.memory.MemoryAccounting`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


class CgroupLimitExceeded(RuntimeError):
    """Raised when an allocation would exceed the cgroup's memory limit."""


@dataclass
class CgroupLimits:
    """Static limits for one cgroup; ``None`` means unlimited."""

    cpu_shares: int = 1024
    cpu_quota_percent: Optional[float] = None
    memory_limit_kb: Optional[int] = None


#: CFS bandwidth-control period (Linux default: 100 ms).
QUOTA_PERIOD_US = 100_000


class Cgroup:
    """One control group (one per container plus the host root)."""

    def __init__(self, name: str, limits: Optional[CgroupLimits] = None):
        self.name = name
        self.limits = limits or CgroupLimits()
        self.memory_used_kb = 0
        self.cpu_time_us = 0.0
        # CFS bandwidth control state: usage within the current period.
        self._period_start_us = 0
        self._period_usage_us = 0.0

    def quota_us_per_period(self) -> Optional[float]:
        if self.limits.cpu_quota_percent is None:
            return None
        return self.limits.cpu_quota_percent / 100.0 * QUOTA_PERIOD_US

    def charge_quota(self, now_us: int, used_us: float) -> None:
        self._roll_period(now_us)
        self._period_usage_us += used_us

    def throttled_until(self, now_us: int) -> Optional[int]:
        """If the cgroup exhausted its quota, the time its next period
        starts; None when runnable."""
        quota = self.quota_us_per_period()
        if quota is None:
            return None
        self._roll_period(now_us)
        if self._period_usage_us < quota:
            return None
        return self._period_start_us + QUOTA_PERIOD_US

    def _roll_period(self, now_us: int) -> None:
        if now_us - self._period_start_us >= QUOTA_PERIOD_US:
            periods = (now_us - self._period_start_us) // QUOTA_PERIOD_US
            self._period_start_us += periods * QUOTA_PERIOD_US
            self._period_usage_us = 0.0

    def charge_memory(self, kb: int) -> None:
        limit = self.limits.memory_limit_kb
        if limit is not None and self.memory_used_kb + kb > limit:
            raise CgroupLimitExceeded(
                f"cgroup {self.name!r}: {self.memory_used_kb}+{kb} kB exceeds "
                f"limit {limit} kB"
            )
        self.memory_used_kb += kb

    def uncharge_memory(self, kb: int) -> None:
        self.memory_used_kb = max(0, self.memory_used_kb - kb)

    def charge_cpu(self, us: float) -> None:
        self.cpu_time_us += us

    def weight_multiplier(self) -> float:
        """Scheduler weight factor relative to the default 1024 shares."""
        return self.limits.cpu_shares / 1024.0


class CgroupManager:
    """Registry of cgroups, keyed by container name ('' is the host root)."""

    def __init__(self) -> None:
        self._groups: Dict[str, Cgroup] = {"": Cgroup("")}

    def create(self, name: str, limits: Optional[CgroupLimits] = None) -> Cgroup:
        if name in self._groups:
            raise ValueError(f"cgroup {name!r} already exists")
        group = Cgroup(name, limits)
        self._groups[name] = group
        return group

    def get(self, name: str) -> Cgroup:
        return self._groups.get(name) or self._groups[""]

    def remove(self, name: str) -> None:
        if name == "":
            raise ValueError("cannot remove the root cgroup")
        self._groups.pop(name, None)

    def all(self) -> Dict[str, Cgroup]:
        return dict(self._groups)
