"""Operations thread programs may yield to the kernel.

A thread is a generator; each ``yield`` hands the kernel one of these
operation objects.  The kernel charges simulated time (and contention) for
the operation and resumes the generator when it completes.  Most operations
resume with ``None``; a few (noted below) send a value back.
"""

from __future__ import annotations

from typing import Any, Optional


class Op:
    """Base class for kernel operations."""

    __slots__ = ()


class Cpu(Op):
    """Burn ``duration_us`` of CPU time (preemptible, resumable)."""

    __slots__ = ("duration_us",)

    def __init__(self, duration_us: float):
        if duration_us < 0:
            raise ValueError("negative cpu burst")
        self.duration_us = float(duration_us)


class Syscall(Op):
    """Enter the kernel for ``duration_us``.

    Under PREEMPT, time spent in a syscall contributes to the kernel
    activity that opens non-preemptible windows; under PREEMPT_RT it mostly
    does not.  Functionally it behaves like a CPU burst.
    """

    __slots__ = ("duration_us", "name")

    def __init__(self, duration_us: float, name: str = ""):
        if duration_us < 0:
            raise ValueError("negative syscall time")
        self.duration_us = float(duration_us)
        self.name = name


class Sleep(Op):
    """Block on a timer for ``duration_us``.

    Resumes with the measured wakeup latency in microseconds (actual wake
    time minus requested wake time) — this is exactly what cyclictest
    records.
    """

    __slots__ = ("duration_us",)

    def __init__(self, duration_us: float):
        if duration_us < 0:
            raise ValueError("negative sleep")
        self.duration_us = float(duration_us)


class SleepUntil(Op):
    """Block until absolute virtual time ``deadline_us`` (clock_nanosleep
    with TIMER_ABSTIME).  Resumes with the measured wakeup latency."""

    __slots__ = ("deadline_us",)

    def __init__(self, deadline_us: int):
        self.deadline_us = int(deadline_us)


class Io(Op):
    """Issue a blocking I/O request.

    ``service_us`` is the device service time; the request also queues
    behind other outstanding I/O on the same device (named by ``device``),
    and its completion raises an interrupt that contributes to kernel
    activity.
    """

    __slots__ = ("service_us", "device", "bytes")

    def __init__(self, service_us: float, device: str = "mmc0", nbytes: int = 0):
        if service_us < 0:
            raise ValueError("negative io service time")
        self.service_us = float(service_us)
        self.device = device
        self.bytes = int(nbytes)


class MemAccess(Op):
    """A memory-bandwidth-bound burst of ``duration_us`` (at full speed).

    Unlike :class:`Cpu`, concurrent MemAccess bursts on different CPUs
    contend for shared DRAM bandwidth, so they slow each other down even
    when each has a CPU to itself.  Used by the PassMark memory test.
    """

    __slots__ = ("duration_us",)

    def __init__(self, duration_us: float):
        if duration_us < 0:
            raise ValueError("negative memory burst")
        self.duration_us = float(duration_us)


class Wait(Op):
    """Block until :meth:`repro.kernel.kernel.Kernel.notify` is called on
    ``channel``.  Resumes with the value passed to notify."""

    __slots__ = ("channel",)

    def __init__(self, channel: Any):
        self.channel = channel


class Yield(Op):
    """Voluntarily release the CPU (sched_yield)."""

    __slots__ = ()


class Join(Op):
    """Block until ``thread`` exits.  Resumes with its exit value."""

    __slots__ = ("thread",)

    def __init__(self, thread):
        self.thread = thread


class Fork(Op):
    """Spawn a child thread running ``program``; resumes with the child
    :class:`~repro.kernel.thread.Thread`."""

    __slots__ = ("program", "name", "policy", "priority")

    def __init__(self, program, name: str = "", policy=None, priority: Optional[int] = None):
        self.program = program
        self.name = name
        self.policy = policy
        self.priority = priority
