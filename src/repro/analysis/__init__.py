"""Statistics helpers and table/figure renderers for the benchmark
harness (every benchmark prints the same rows/series the paper reports)."""

from repro.analysis.stats import Summary, summarize
from repro.analysis.reporting import (render_table, render_series,
                                      render_histogram,
                                      render_metrics_report)

__all__ = ["Summary", "summarize", "render_table", "render_series",
           "render_histogram", "render_metrics_report"]
