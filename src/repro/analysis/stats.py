"""Summary statistics for benchmark samples."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass
class Summary:
    count: int
    mean: float
    stddev: float
    minimum: float
    p50: float
    p99: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"n={self.count} mean={self.mean:.2f} sd={self.stddev:.2f} "
                f"min={self.minimum:.2f} p50={self.p50:.2f} "
                f"p99={self.p99:.2f} max={self.maximum:.2f}")


def _percentile(ordered: Sequence[float], p: float) -> float:
    if not ordered:
        return 0.0
    k = (len(ordered) - 1) * p / 100.0
    lo = math.floor(k)
    hi = math.ceil(k)
    if lo == hi:
        return ordered[int(k)]
    value = ordered[lo] * (hi - k) + ordered[hi] * (k - lo)
    # Interpolation can overshoot its bracket by one ulp; clamp.
    return min(max(value, ordered[lo]), ordered[hi])


def summarize(samples: Sequence[float]) -> Summary:
    """Full summary of a sample list (empty lists allowed)."""
    if not samples:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    ordered = sorted(samples)
    n = len(ordered)
    mean = sum(ordered) / n
    variance = sum((x - mean) ** 2 for x in ordered) / max(1, n - 1)
    return Summary(
        count=n,
        mean=mean,
        stddev=math.sqrt(variance),
        minimum=ordered[0],
        p50=_percentile(ordered, 50),
        p99=_percentile(ordered, 99),
        maximum=ordered[-1],
    )
