"""Plain-text tables and series, matching how EXPERIMENTS.md records
paper-vs-measured results."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """A fixed-width ASCII table."""
    rendered_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(name: str, points: Sequence[Tuple[float, float]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """A figure series as aligned (x, y) pairs."""
    lines = [f"series {name} ({x_label} -> {y_label})"]
    for x, y in points:
        lines.append(f"  {_fmt(x):>12}  {_fmt(y)}")
    return "\n".join(lines)


def render_histogram(name: str, bins: Sequence[Tuple[float, int]],
                     width: int = 50) -> str:
    """Log-style histogram with hash bars (Figure 11's presentation)."""
    import math

    lines = [f"histogram {name} (latency_us -> samples)"]
    if not bins:
        return lines[0] + "\n  (empty)"
    max_count = max(count for _, count in bins)
    for value, count in bins:
        bar = "#" * max(1, int(width * math.log10(count + 1)
                               / math.log10(max_count + 1)))
        lines.append(f"  {value:>10.1f}  {count:>9d}  {bar}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}" if abs(value) < 10 else f"{value:.1f}"
    return str(value)
