"""Plain-text tables and series, matching how EXPERIMENTS.md records
paper-vs-measured results.  Also renders the telemetry report the obs
layer's exporter produces (:func:`render_metrics_report`)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """A fixed-width ASCII table."""
    rendered_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(name: str, points: Sequence[Tuple[float, float]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """A figure series as aligned (x, y) pairs."""
    lines = [f"series {name} ({x_label} -> {y_label})"]
    for x, y in points:
        lines.append(f"  {_fmt(x):>12}  {_fmt(y)}")
    return "\n".join(lines)


def render_histogram(name: str, bins: Sequence[Tuple[float, int]],
                     width: int = 50) -> str:
    """Log-style histogram with hash bars (Figure 11's presentation)."""
    import math

    lines = [f"histogram {name} (latency_us -> samples)"]
    if not bins:
        return lines[0] + "\n  (empty)"
    max_count = max(count for _, count in bins)
    for value, count in bins:
        bar = "#" * max(1, int(width * math.log10(count + 1)
                               / math.log10(max_count + 1)))
        lines.append(f"  {value:>10.1f}  {count:>9d}  {bar}")
    return "\n".join(lines)


def _labels(labels: Dict[str, str]) -> str:
    return ", ".join(f"{k}={v}" for k, v in sorted(labels.items()))


def render_metrics_report(snapshot: Sequence[dict],
                          closed_spans: Sequence[Tuple[str, int]] = (),
                          n_trace_records: Optional[int] = None) -> str:
    """The human-readable telemetry summary.

    ``snapshot`` is ``TelemetryRegistry.snapshot()`` output (one dict per
    instrument); ``closed_spans`` is the tracer's (name, duration_us)
    list.  Grouped into one table per instrument kind plus a span-duration
    summary, so a flight's telemetry reads like the paper's tables.
    """
    sections: List[str] = []
    counters = [r for r in snapshot if r["kind"] == "counter"]
    gauges = [r for r in snapshot if r["kind"] == "gauge"]
    histograms = [r for r in snapshot if r["kind"] == "histogram"]
    if counters:
        sections.append(render_table(
            ["Counter", "Labels", "Value"],
            [(r["name"], _labels(r["labels"]), r["value"]) for r in counters],
            title="counters"))
    if gauges:
        sections.append(render_table(
            ["Gauge", "Labels", "Value"],
            [(r["name"], _labels(r["labels"]), r["value"]) for r in gauges],
            title="gauges"))
    if histograms:
        sections.append(render_table(
            ["Histogram", "Labels", "Unit", "Count", "p50", "p95", "p99", "Max"],
            [(r["name"], _labels(r["labels"]), r.get("unit", ""), r["count"],
              r["p50"], r["p95"], r["p99"], r["max"]) for r in histograms],
            title="histograms"))
    if closed_spans:
        by_name: Dict[str, List[int]] = {}
        for name, duration in closed_spans:
            by_name.setdefault(name, []).append(duration)
        rows = []
        for name in sorted(by_name):
            durations = sorted(by_name[name])
            n = len(durations)
            rows.append((name, n, durations[0], durations[n // 2],
                         durations[-1]))
        sections.append(render_table(
            ["Span", "Count", "Min (us)", "Median (us)", "Max (us)"], rows,
            title="span durations (sim time)"))
    if not sections:
        sections.append("(no telemetry recorded)")
    header = "telemetry report"
    if n_trace_records is not None:
        header += f" — {n_trace_records} trace records"
    return header + "\n\n" + "\n\n".join(sections)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}" if abs(value) < 10 else f"{value:.1f}"
    return str(value)
