"""MAVLink connections over the simulated network.

A :class:`MavlinkConnection` binds a codec to a network endpoint pair:
messages are encoded to real frames, shipped over the link (with its
latency and loss), and decoded on arrival.  Handlers receive
``(message, sysid, compid)``.
"""

from __future__ import annotations

from typing import Callable, List

import repro.obs as obs
from repro.mavlink.codec import CodecError, MavlinkCodec
from repro.mavlink.messages import MavlinkMessage
from repro.net.link import LinkModel
from repro.net.network import Network
from repro.security.channel import FRAME_OVERHEAD_BYTES
from repro.security.errors import ChannelAuthError


class MavlinkConnection:
    """One side of a MAVLink link."""

    def __init__(self, network: Network, local: str, remote: str, link=None,
                 sysid: int = 1, compid: int = 1, session=None):
        self.codec = MavlinkCodec(sysid, compid)
        self._tx = network.connect(local, remote, link)
        self.local = local
        self.remote = remote
        #: optional :class:`~repro.security.channel.SecureEndpoint`: when
        #: set, outbound frames are sealed (sequence-numbered, tagged)
        #: and inbound frames must open cleanly — spoofed or replayed
        #: traffic is counted and dropped instead of decoded.
        self.session = session
        self._handlers: List[Callable[[MavlinkMessage, int, int], None]] = []
        self.received: List[MavlinkMessage] = []
        self.rx_count = 0
        self.tx_count = 0
        self.dropped = 0
        self.rejected = 0
        network.endpoint(local).on_receive = self._on_frame

    @property
    def link(self) -> LinkModel:
        """The link model this side transmits over — the object a
        :class:`~repro.faults.injector.FaultInjector` binds to inject
        loss and latency faults on this connection."""
        return self._tx.link

    def send(self, msg: MavlinkMessage) -> bool:
        """Encode and transmit; returns False if the link dropped it."""
        frame = self.codec.encode(msg)
        self.tx_count += 1
        nbytes = len(frame)
        if self.session is not None:
            frame = self.session.seal(frame)
            nbytes += FRAME_OVERHEAD_BYTES
        sent = self._tx.send(frame, nbytes=nbytes)
        if not sent:
            self.dropped += 1
            obs.counter("mavlink.dropped", local=self.local,
                        remote=self.remote).inc()
        return sent

    def on_message(self, handler: Callable[[MavlinkMessage, int, int], None]) -> None:
        self._handlers.append(handler)

    def _on_frame(self, frame: bytes, source: str) -> None:
        if self.session is not None:
            try:
                frame = self.session.open(frame)
            except ChannelAuthError:  # repro-lint: disable=flow-exceptions
                # Spoofed, replayed, or stale-epoch traffic: the session
                # endpoint already counted it (sec.channel.rejected) and
                # fed the anomaly detector; the frame never reaches the
                # codec, let alone the VFC.
                self.rejected += 1
                return
        elif not isinstance(frame, (bytes, bytearray)):
            return  # a sealed frame reaching an insecure endpoint is noise
        try:
            msg, sysid, compid = self.codec.decode(frame)
        except CodecError:
            return  # corrupt frames are dropped silently, as on a real link
        self.rx_count += 1
        if self._handlers:
            for handler in self._handlers:
                handler(msg, sysid, compid)
        else:
            self.received.append(msg)

    def drain(self) -> List[MavlinkMessage]:
        messages, self.received = self.received, []
        return messages
