"""MAVLink connections over the simulated network.

A :class:`MavlinkConnection` binds a codec to a network endpoint pair:
messages are encoded to real frames, shipped over the link (with its
latency and loss), and decoded on arrival.  Handlers receive
``(message, sysid, compid)``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.mavlink.codec import CodecError, MavlinkCodec
from repro.mavlink.messages import MavlinkMessage
from repro.net.network import Channel, Network


class MavlinkConnection:
    """One side of a MAVLink link."""

    def __init__(self, network: Network, local: str, remote: str, link=None,
                 sysid: int = 1, compid: int = 1):
        self.codec = MavlinkCodec(sysid, compid)
        self._tx = network.connect(local, remote, link)
        self.local = local
        self.remote = remote
        self._handlers: List[Callable[[MavlinkMessage, int, int], None]] = []
        self.received: List[MavlinkMessage] = []
        self.rx_count = 0
        self.tx_count = 0
        network.endpoint(local).on_receive = self._on_frame

    def send(self, msg: MavlinkMessage) -> bool:
        """Encode and transmit; returns False if the link dropped it."""
        frame = self.codec.encode(msg)
        self.tx_count += 1
        return self._tx.send(frame, nbytes=len(frame))

    def on_message(self, handler: Callable[[MavlinkMessage, int, int], None]) -> None:
        self._handlers.append(handler)

    def _on_frame(self, frame: bytes, source: str) -> None:
        try:
            msg, sysid, compid = self.codec.decode(frame)
        except CodecError:
            return  # corrupt frames are dropped silently, as on a real link
        self.rx_count += 1
        if self._handlers:
            for handler in self._handlers:
                handler(msg, sysid, compid)
        else:
            self.received.append(msg)

    def drain(self) -> List[MavlinkMessage]:
        messages, self.received = self.received, []
        return messages
