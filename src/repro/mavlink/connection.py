"""MAVLink connections over the simulated network.

A :class:`MavlinkConnection` binds a codec to a network endpoint pair:
messages are encoded to real frames, shipped over the link (with its
latency and loss), and decoded on arrival.  Handlers receive
``(message, sysid, compid)``.
"""

from __future__ import annotations

from typing import Callable, List

import repro.obs as obs
from repro.mavlink.codec import CodecError, MavlinkCodec
from repro.mavlink.messages import MavlinkMessage
from repro.net.link import LinkModel
from repro.net.network import Network


class MavlinkConnection:
    """One side of a MAVLink link."""

    def __init__(self, network: Network, local: str, remote: str, link=None,
                 sysid: int = 1, compid: int = 1):
        self.codec = MavlinkCodec(sysid, compid)
        self._tx = network.connect(local, remote, link)
        self.local = local
        self.remote = remote
        self._handlers: List[Callable[[MavlinkMessage, int, int], None]] = []
        self.received: List[MavlinkMessage] = []
        self.rx_count = 0
        self.tx_count = 0
        self.dropped = 0
        network.endpoint(local).on_receive = self._on_frame

    @property
    def link(self) -> LinkModel:
        """The link model this side transmits over — the object a
        :class:`~repro.faults.injector.FaultInjector` binds to inject
        loss and latency faults on this connection."""
        return self._tx.link

    def send(self, msg: MavlinkMessage) -> bool:
        """Encode and transmit; returns False if the link dropped it."""
        frame = self.codec.encode(msg)
        self.tx_count += 1
        sent = self._tx.send(frame, nbytes=len(frame))
        if not sent:
            self.dropped += 1
            obs.counter("mavlink.dropped", local=self.local,
                        remote=self.remote).inc()
        return sent

    def on_message(self, handler: Callable[[MavlinkMessage, int, int], None]) -> None:
        self._handlers.append(handler)

    def _on_frame(self, frame: bytes, source: str) -> None:
        try:
            msg, sysid, compid = self.codec.decode(frame)
        except CodecError:
            return  # corrupt frames are dropped silently, as on a real link
        self.rx_count += 1
        if self._handlers:
            for handler in self._handlers:
                handler(msg, sysid, compid)
        else:
            self.received.append(msg)

    def drain(self) -> List[MavlinkMessage]:
        messages, self.received = self.received, []
        return messages
