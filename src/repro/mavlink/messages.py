"""MAVLink message definitions.

Each message declares its real MAVLink v1 ``MSG_ID``, its ``CRC_EXTRA``
seed byte (from the official XML definitions — receivers with a different
message definition fail the checksum), and a ``FIELDS`` spec of
``(name, struct_format)`` pairs in *wire order* (MAVLink v1 sorts fields
by decreasing size; the orders below follow the real generated code).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, Tuple


@dataclass
class MavlinkMessage:
    """Base class; subclasses are plain dataclasses with wire metadata."""

    MSG_ID: ClassVar[int] = -1
    CRC_EXTRA: ClassVar[int] = 0
    FIELDS: ClassVar[Tuple[Tuple[str, str], ...]] = ()

    @property
    def name(self) -> str:
        return type(self).__name__


@dataclass
class Heartbeat(MavlinkMessage):
    MSG_ID: ClassVar[int] = 0
    CRC_EXTRA: ClassVar[int] = 50
    FIELDS: ClassVar = (
        ("custom_mode", "I"), ("type", "B"), ("autopilot", "B"),
        ("base_mode", "B"), ("system_status", "B"), ("mavlink_version", "B"),
    )
    custom_mode: int = 0
    type: int = 2            # MAV_TYPE_QUADROTOR
    autopilot: int = 3       # MAV_AUTOPILOT_ARDUPILOTMEGA
    base_mode: int = 0
    system_status: int = 3   # MAV_STATE_STANDBY
    mavlink_version: int = 3


@dataclass
class SysStatus(MavlinkMessage):
    MSG_ID: ClassVar[int] = 1
    CRC_EXTRA: ClassVar[int] = 124
    FIELDS: ClassVar = (
        ("onboard_control_sensors_present", "I"),
        ("onboard_control_sensors_enabled", "I"),
        ("onboard_control_sensors_health", "I"),
        ("load", "H"), ("voltage_battery", "H"), ("current_battery", "h"),
        ("drop_rate_comm", "H"), ("errors_comm", "H"),
        ("errors_count1", "H"), ("errors_count2", "H"),
        ("errors_count3", "H"), ("errors_count4", "H"),
        ("battery_remaining", "b"),
    )
    onboard_control_sensors_present: int = 0
    onboard_control_sensors_enabled: int = 0
    onboard_control_sensors_health: int = 0
    load: int = 0
    voltage_battery: int = 11_100    # mV
    current_battery: int = -1        # cA, -1 = unknown
    drop_rate_comm: int = 0
    errors_comm: int = 0
    errors_count1: int = 0
    errors_count2: int = 0
    errors_count3: int = 0
    errors_count4: int = 0
    battery_remaining: int = 100     # percent


@dataclass
class GlobalPositionInt(MavlinkMessage):
    MSG_ID: ClassVar[int] = 33
    CRC_EXTRA: ClassVar[int] = 104
    FIELDS: ClassVar = (
        ("time_boot_ms", "I"), ("lat", "i"), ("lon", "i"),
        ("alt", "i"), ("relative_alt", "i"),
        ("vx", "h"), ("vy", "h"), ("vz", "h"), ("hdg", "H"),
    )
    time_boot_ms: int = 0
    lat: int = 0             # degE7
    lon: int = 0             # degE7
    alt: int = 0             # mm AMSL
    relative_alt: int = 0    # mm above home
    vx: int = 0              # cm/s
    vy: int = 0
    vz: int = 0
    hdg: int = 0             # cdeg


@dataclass
class Attitude(MavlinkMessage):
    MSG_ID: ClassVar[int] = 30
    CRC_EXTRA: ClassVar[int] = 39
    FIELDS: ClassVar = (
        ("time_boot_ms", "I"), ("roll", "f"), ("pitch", "f"), ("yaw", "f"),
        ("rollspeed", "f"), ("pitchspeed", "f"), ("yawspeed", "f"),
    )
    time_boot_ms: int = 0
    roll: float = 0.0
    pitch: float = 0.0
    yaw: float = 0.0
    rollspeed: float = 0.0
    pitchspeed: float = 0.0
    yawspeed: float = 0.0


@dataclass
class CommandLong(MavlinkMessage):
    MSG_ID: ClassVar[int] = 76
    CRC_EXTRA: ClassVar[int] = 152
    FIELDS: ClassVar = (
        ("param1", "f"), ("param2", "f"), ("param3", "f"), ("param4", "f"),
        ("param5", "f"), ("param6", "f"), ("param7", "f"),
        ("command", "H"), ("target_system", "B"), ("target_component", "B"),
        ("confirmation", "B"),
    )
    param1: float = 0.0
    param2: float = 0.0
    param3: float = 0.0
    param4: float = 0.0
    param5: float = 0.0      # usually latitude
    param6: float = 0.0      # usually longitude
    param7: float = 0.0      # usually altitude
    command: int = 0
    target_system: int = 1
    target_component: int = 1
    confirmation: int = 0


@dataclass
class CommandAck(MavlinkMessage):
    MSG_ID: ClassVar[int] = 77
    CRC_EXTRA: ClassVar[int] = 143
    FIELDS: ClassVar = (("command", "H"), ("result", "B"))
    command: int = 0
    result: int = 0


@dataclass
class SetPositionTarget(MavlinkMessage):
    """SET_POSITION_TARGET_GLOBAL_INT: guided-mode position/velocity."""

    MSG_ID: ClassVar[int] = 86
    CRC_EXTRA: ClassVar[int] = 5
    FIELDS: ClassVar = (
        ("time_boot_ms", "I"), ("lat_int", "i"), ("lon_int", "i"), ("alt", "f"),
        ("vx", "f"), ("vy", "f"), ("vz", "f"),
        ("afx", "f"), ("afy", "f"), ("afz", "f"),
        ("yaw", "f"), ("yaw_rate", "f"),
        ("type_mask", "H"), ("target_system", "B"), ("target_component", "B"),
        ("coordinate_frame", "B"),
    )
    time_boot_ms: int = 0
    lat_int: int = 0
    lon_int: int = 0
    alt: float = 0.0
    vx: float = 0.0
    vy: float = 0.0
    vz: float = 0.0
    afx: float = 0.0
    afy: float = 0.0
    afz: float = 0.0
    yaw: float = 0.0
    yaw_rate: float = 0.0
    type_mask: int = 0
    target_system: int = 1
    target_component: int = 1
    coordinate_frame: int = 6  # GLOBAL_RELATIVE_ALT_INT


@dataclass
class ManualControl(MavlinkMessage):
    """Gamepad-style control (the Xbox 360 pad in Section 6.5)."""

    MSG_ID: ClassVar[int] = 69
    CRC_EXTRA: ClassVar[int] = 243
    FIELDS: ClassVar = (
        ("x", "h"), ("y", "h"), ("z", "h"), ("r", "h"),
        ("buttons", "H"), ("target", "B"),
    )
    x: int = 0
    y: int = 0
    z: int = 500
    r: int = 0
    buttons: int = 0
    target: int = 1


@dataclass
class MissionItem(MavlinkMessage):
    MSG_ID: ClassVar[int] = 39
    CRC_EXTRA: ClassVar[int] = 254
    FIELDS: ClassVar = (
        ("param1", "f"), ("param2", "f"), ("param3", "f"), ("param4", "f"),
        ("x", "f"), ("y", "f"), ("z", "f"),
        ("seq", "H"), ("command", "H"),
        ("target_system", "B"), ("target_component", "B"),
        ("frame", "B"), ("current", "B"), ("autocontinue", "B"),
    )
    param1: float = 0.0
    param2: float = 0.0
    param3: float = 0.0
    param4: float = 0.0
    x: float = 0.0
    y: float = 0.0
    z: float = 0.0
    seq: int = 0
    command: int = 16
    target_system: int = 1
    target_component: int = 1
    frame: int = 3
    current: int = 0
    autocontinue: int = 1


@dataclass
class Statustext(MavlinkMessage):
    MSG_ID: ClassVar[int] = 253
    CRC_EXTRA: ClassVar[int] = 83
    FIELDS: ClassVar = (("severity", "B"), ("text", "50s"))
    severity: int = 6  # INFO
    text: str = ""


#: msg_id -> message class, for decoding.
MESSAGE_REGISTRY: Dict[int, type] = {
    cls.MSG_ID: cls
    for cls in (
        Heartbeat, SysStatus, Attitude, GlobalPositionInt, MissionItem,
        ManualControl, CommandLong, CommandAck, SetPositionTarget, Statustext,
    )
}
