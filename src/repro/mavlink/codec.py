"""MAVLink v1 wire codec.

Frame layout::

    0xFE | payload_len | seq | sysid | compid | msgid | payload | crc_lo | crc_hi

The checksum is the X.25/CRC-16-MCRF4XX over everything after the magic
byte, then extended with the message's CRC_EXTRA byte so that peers built
from different message definitions reject each other's frames.
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.mavlink.messages import MESSAGE_REGISTRY, MavlinkMessage

STX = 0xFE


class CodecError(ValueError):
    """Malformed or corrupt MAVLink frame."""


def x25_crc(data: bytes, crc: int = 0xFFFF) -> int:
    """CRC-16/MCRF4XX, the MAVLink checksum."""
    for byte in data:
        tmp = byte ^ (crc & 0xFF)
        tmp = (tmp ^ (tmp << 4)) & 0xFF
        crc = ((crc >> 8) ^ (tmp << 8) ^ (tmp << 3) ^ (tmp >> 4)) & 0xFFFF
    return crc


def _pack_payload(msg: MavlinkMessage) -> bytes:
    # Messages are value objects (constructed, sent, never mutated), so
    # the packed payload is memoized on the instance: a telemetry
    # snapshot shared across a whole fan-out round packs exactly once.
    packed = msg.__dict__.get("_packed_payload")
    if packed is not None:
        return packed
    parts = []
    for name, fmt in msg.FIELDS:
        value = getattr(msg, name)
        if fmt.endswith("s"):
            width = int(fmt[:-1])
            raw = str(value).encode()[:width]
            parts.append(raw.ljust(width, b"\0"))
        else:
            parts.append(struct.pack("<" + fmt, value))
    packed = b"".join(parts)
    msg.__dict__["_packed_payload"] = packed
    return packed


def _unpack_payload(cls, payload: bytes) -> MavlinkMessage:
    values = {}
    offset = 0
    for name, fmt in cls.FIELDS:
        if fmt.endswith("s"):
            width = int(fmt[:-1])
            raw = payload[offset:offset + width]
            values[name] = raw.rstrip(b"\0").decode(errors="replace")
            offset += width
        else:
            size = struct.calcsize("<" + fmt)
            (values[name],) = struct.unpack_from("<" + fmt, payload, offset)
            offset += size
    return cls(**values)


class MavlinkCodec:
    """Stateful encoder/decoder for one endpoint (tracks tx sequence)."""

    def __init__(self, sysid: int = 1, compid: int = 1):
        self.sysid = sysid
        self.compid = compid
        self._tx_seq = 0
        self.decode_errors = 0

    def encode(self, msg: MavlinkMessage) -> bytes:
        payload = _pack_payload(msg)
        if len(payload) > 255:
            raise CodecError(f"{msg.name}: payload too long ({len(payload)})")
        header = struct.pack(
            "<BBBBB", len(payload), self._tx_seq, self.sysid, self.compid, msg.MSG_ID
        )
        self._tx_seq = (self._tx_seq + 1) & 0xFF
        crc = x25_crc(header + payload)
        crc = x25_crc(bytes([msg.CRC_EXTRA]), crc)
        return bytes([STX]) + header + payload + struct.pack("<H", crc)

    def decode(self, frame: bytes) -> Tuple[MavlinkMessage, int, int]:
        """Decode one frame; returns (message, sysid, compid)."""
        if len(frame) < 8:
            self.decode_errors += 1
            raise CodecError("frame too short")
        if frame[0] != STX:
            self.decode_errors += 1
            raise CodecError(f"bad magic byte {frame[0]:#x}")
        payload_len = frame[1]
        expected = 6 + payload_len + 2
        if len(frame) != expected:
            self.decode_errors += 1
            raise CodecError(f"length mismatch: {len(frame)} != {expected}")
        msgid = frame[5]
        cls = MESSAGE_REGISTRY.get(msgid)
        if cls is None:
            self.decode_errors += 1
            raise CodecError(f"unknown msgid {msgid}")
        body = frame[1:6 + payload_len]
        crc = x25_crc(body)
        crc = x25_crc(bytes([cls.CRC_EXTRA]), crc)
        (wire_crc,) = struct.unpack_from("<H", frame, 6 + payload_len)
        if crc != wire_crc:
            self.decode_errors += 1
            raise CodecError(f"bad checksum for {cls.__name__}")
        msg = _unpack_payload(cls, frame[6:6 + payload_len])
        return msg, frame[3], frame[4]
