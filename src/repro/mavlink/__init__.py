"""MAVLink: the Micro Air Vehicle Link protocol.

"Communication with the flight controller commonly takes place via the
MAVLink protocol" (Section 4.3).  This package implements MAVLink v1 wire
framing (magic byte, sequence numbers, X.25 CRC with per-message
CRC_EXTRA), the message set AnDrone's evaluation exercises, and a
connection abstraction that rides the simulated network.
"""

from repro.mavlink.enums import CopterMode, MavCommand, MavResult, MavState
from repro.mavlink.messages import (
    Attitude,
    CommandAck,
    CommandLong,
    GlobalPositionInt,
    Heartbeat,
    ManualControl,
    MissionItem,
    SetPositionTarget,
    Statustext,
    SysStatus,
    MESSAGE_REGISTRY,
)
from repro.mavlink.codec import MavlinkCodec, CodecError
from repro.mavlink.connection import MavlinkConnection

__all__ = [
    "CopterMode",
    "MavCommand",
    "MavResult",
    "MavState",
    "Attitude",
    "CommandAck",
    "CommandLong",
    "GlobalPositionInt",
    "Heartbeat",
    "ManualControl",
    "MissionItem",
    "SetPositionTarget",
    "Statustext",
    "SysStatus",
    "MESSAGE_REGISTRY",
    "MavlinkCodec",
    "CodecError",
    "MavlinkConnection",
]
