"""The MAVLink mission (waypoint) upload protocol.

Real ground stations upload AUTO-mode missions with the
MISSION_COUNT -> MISSION_REQUEST -> MISSION_ITEM -> MISSION_ACK
handshake, with per-item retransmission on loss.  AnDrone's flight
planner and advanced tenants both use it; implementing it end-to-end
(rather than stuffing items into the autopilot directly) exercises the
MAVLink stack under the lossy links of Section 6.5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, ClassVar, List, Optional

from repro.mavlink.connection import MavlinkConnection
from repro.mavlink.messages import MESSAGE_REGISTRY, MavlinkMessage, MissionItem


@dataclass
class MissionCount(MavlinkMessage):
    MSG_ID: ClassVar[int] = 44
    CRC_EXTRA: ClassVar[int] = 221
    FIELDS: ClassVar = (("count", "H"), ("target_system", "B"),
                        ("target_component", "B"))
    count: int = 0
    target_system: int = 1
    target_component: int = 1


@dataclass
class MissionRequest(MavlinkMessage):
    MSG_ID: ClassVar[int] = 40
    CRC_EXTRA: ClassVar[int] = 230
    FIELDS: ClassVar = (("seq", "H"), ("target_system", "B"),
                        ("target_component", "B"))
    seq: int = 0
    target_system: int = 1
    target_component: int = 1


@dataclass
class MissionAck(MavlinkMessage):
    MSG_ID: ClassVar[int] = 47
    CRC_EXTRA: ClassVar[int] = 153
    FIELDS: ClassVar = (("target_system", "B"), ("target_component", "B"),
                        ("type", "B"))
    target_system: int = 1
    target_component: int = 1
    type: int = 0   # MAV_MISSION_ACCEPTED


MESSAGE_REGISTRY[MissionCount.MSG_ID] = MissionCount
MESSAGE_REGISTRY[MissionRequest.MSG_ID] = MissionRequest
MESSAGE_REGISTRY[MissionAck.MSG_ID] = MissionAck


class MissionUploader:
    """GCS side: answers MISSION_REQUESTs until the vehicle acks."""

    def __init__(self, connection: MavlinkConnection, sim,
                 items: List[MissionItem],
                 on_complete: Optional[Callable[[bool], None]] = None,
                 timeout_us: int = 3_000_000, max_retries: int = 5):
        self.connection = connection
        self.sim = sim
        self.items = list(items)
        self.on_complete = on_complete
        self.timeout_us = timeout_us
        self.max_retries = max_retries
        self.retries = 0
        self.done = False
        self.accepted = False
        connection.on_message(self._on_message)

    def start(self) -> None:
        self._send_count()

    def _send_count(self) -> None:
        self.connection.send(MissionCount(count=len(self.items)))
        self._arm_timeout(expected_progress=self.retries)

    def _arm_timeout(self, expected_progress) -> None:
        def check():
            if self.done:
                return
            self.retries += 1
            if self.retries > self.max_retries:
                self.done = True
                if self.on_complete:
                    self.on_complete(False)
                return
            self._send_count()   # restart; the receiver is idempotent

        self.sim.after(self.timeout_us, check)

    def _on_message(self, msg, sysid, compid) -> None:
        if self.done:
            return
        if isinstance(msg, MissionRequest):
            if 0 <= msg.seq < len(self.items):
                item = self.items[msg.seq]
                item.seq = msg.seq
                self.connection.send(item)
        elif isinstance(msg, MissionAck):
            self.done = True
            self.accepted = msg.type == 0
            if self.on_complete:
                self.on_complete(self.accepted)


class MissionReceiver:
    """Vehicle side: requests each item, then acks and installs."""

    def __init__(self, connection: MavlinkConnection, sim, autopilot,
                 timeout_us: int = 2_000_000, max_retries: int = 8):
        self.connection = connection
        self.sim = sim
        self.autopilot = autopilot
        self.timeout_us = timeout_us
        self.max_retries = max_retries
        self._expected: Optional[int] = None
        self._items: List[MissionItem] = []
        self._retries = 0
        self.completed_missions = 0
        connection.on_message(self._on_message)

    def _on_message(self, msg, sysid, compid) -> None:
        if isinstance(msg, MissionCount):
            # (Re)start a transfer; idempotent on duplicate COUNTs.
            self._expected = msg.count
            self._items = []
            self._retries = 0
            self._request_next()
        elif isinstance(msg, MissionItem) and self._expected is not None:
            if msg.seq == len(self._items):
                self._items.append(msg)
            if len(self._items) >= self._expected:
                self.autopilot.upload_mission(self._items)
                self.completed_missions += 1
                self._expected = None
                self.connection.send(MissionAck(type=0))
            else:
                self._request_next()

    def _request_next(self) -> None:
        if self._expected is None:
            return
        seq = len(self._items)
        self.connection.send(MissionRequest(seq=seq))
        self._arm_retry(seq)

    def _arm_retry(self, seq: int) -> None:
        def check():
            if self._expected is None or len(self._items) != seq:
                return   # progressed; nothing to do
            self._retries += 1
            if self._retries > self.max_retries:
                self._expected = None   # abort transfer
                return
            self._request_next()

        self.sim.after(self.timeout_us, check)
