"""MAVLink enums: ArduPilot Copter flight modes, commands, results."""

from __future__ import annotations

import enum


class CopterMode(enum.IntEnum):
    """ArduPilot Copter custom_mode values (the real numbering)."""

    STABILIZE = 0
    ALT_HOLD = 2
    AUTO = 3
    GUIDED = 4
    LOITER = 5
    RTL = 6
    LAND = 9
    POSHOLD = 16
    BRAKE = 17


class MavCommand(enum.IntEnum):
    """MAV_CMD values used by AnDrone (real MAVLink ids)."""

    NAV_WAYPOINT = 16
    NAV_LOITER_UNLIM = 17
    NAV_RETURN_TO_LAUNCH = 20
    NAV_LAND = 21
    NAV_TAKEOFF = 22
    CONDITION_YAW = 115
    DO_SET_MODE = 176
    DO_CHANGE_SPEED = 178
    DO_SET_HOME = 179
    DO_FENCE_ENABLE = 207
    DO_DIGICAM_CONTROL = 203
    DO_MOUNT_CONTROL = 205
    COMPONENT_ARM_DISARM = 400
    REQUEST_MESSAGE = 512
    SET_MESSAGE_INTERVAL = 511


class MavResult(enum.IntEnum):
    ACCEPTED = 0
    TEMPORARILY_REJECTED = 1
    DENIED = 2
    UNSUPPORTED = 3
    FAILED = 4
    IN_PROGRESS = 5


class MavState(enum.IntEnum):
    UNINIT = 0
    BOOT = 1
    CALIBRATING = 2
    STANDBY = 3
    ACTIVE = 4
    CRITICAL = 5
    EMERGENCY = 6


class MavType(enum.IntEnum):
    GENERIC = 0
    QUADROTOR = 2
    GCS = 6


#: MAV_MODE_FLAG bits carried in the heartbeat base_mode.
CUSTOM_MODE_ENABLED = 1
SAFETY_ARMED = 128
