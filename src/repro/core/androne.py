"""The complete AnDrone system: cloud service plus drone fleet."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import repro.obs as obs
from repro.android.manifest import AndroidManifest, AnDroneManifest
from repro.cloud.app_store import AppStore
from repro.cloud.billing import BillingService
from repro.cloud.planner import DroneEnergyModel, FlightPlanner
from repro.cloud.portal import Order, WebPortal
from repro.cloud.storage import CloudStorage
from repro.cloud.vdr import VirtualDroneRepository
from repro.core.drone_node import DroneNode
from repro.core.mission import MissionReport, MissionRunner
from repro.flight.geo import GeoPoint
from repro.kernel.config import PreemptionMode
from repro.sim import RngRegistry, Simulator

DEFAULT_HOME = GeoPoint(43.6084298, -85.8110359, 0.0)


class AnDroneSystem:
    """Top-level façade: one cloud service and a fleet of drones."""

    def __init__(self, sim: Optional[Simulator] = None, seed: int = 0,
                 home: GeoPoint = DEFAULT_HOME, fleet_size: int = 1):
        self.sim = sim or Simulator()
        # ANDRONE_TRACE=<path> switches telemetry on for the whole stack,
        # timestamped from this system's sim clock (see docs/METRICS.md).
        obs.auto_enable(self.sim)
        self.rng = RngRegistry(seed)
        self.home = home
        self.app_store = AppStore()
        self.billing = BillingService()
        self.portal = WebPortal(self.app_store, self.billing)
        self.vdr = VirtualDroneRepository()
        self.storage = CloudStorage()
        self.planner = FlightPlanner(home, DroneEnergyModel(),
                                     fleet_size=fleet_size,
                                     rng=self.rng.stream("planner.sa"))
        self.fleet: List[DroneNode] = []
        #: package -> behaviour installer, called as f(app, sdk, vdrone)
        #: when a virtual drone starts with that app.
        self.app_behaviors: Dict[str, Callable] = {}

    # -- fleet -------------------------------------------------------------------------
    def add_drone(self, seed: Optional[int] = None,
                  preemption: PreemptionMode = PreemptionMode.PREEMPT_RT,
                  sitl_rate_hz: float = 100.0,
                  drone_type: str = "standard", **kw) -> DroneNode:
        """Add a drone of one of the portal's types to the fleet."""
        from repro.core.hardware import profile_for_drone_type

        node = DroneNode(
            sim=self.sim,
            seed=seed if seed is not None else len(self.fleet) + 1,
            profile=profile_for_drone_type(drone_type),
            home=self.home,
            sitl_rate_hz=sitl_rate_hz,
            preemption=preemption,
            vdr=self.vdr,
            cloud_storage=self.storage,
            **kw,
        )
        node.drone_type = drone_type
        self.fleet.append(node)
        return node

    # -- app behaviours ------------------------------------------------------------------
    def register_app_behavior(self, package: str, installer: Callable) -> None:
        """``installer(app, sdk, vdrone)`` wires an app's runtime logic
        (SDK listeners, service calls) when its virtual drone starts."""
        self.app_behaviors[package] = installer

    def _manifests_for(self, order: Order) -> Dict[str, Tuple[AndroidManifest, AnDroneManifest]]:
        manifests = {}
        for package in order.definition.apps:
            store_app = self.app_store.download(package)
            manifests[package] = (store_app.android_manifest,
                                  store_app.androne_manifest)
        return manifests

    # -- fleet dispatch --------------------------------------------------------------------
    def dispatch_orders(self, orders: List[Order],
                        resume: bool = False) -> Dict[str, MissionReport]:
        """Group orders by requested drone type and fly each group on a
        matching drone (creating fleet drones as needed).

        Returns a report per drone type flown.
        """
        by_type: Dict[str, List[Order]] = {}
        for order in orders:
            by_type.setdefault(order.drone_type, []).append(order)
        reports: Dict[str, MissionReport] = {}
        for drone_type, group in by_type.items():
            node = next((d for d in self.fleet
                         if getattr(d, "drone_type", "standard") == drone_type
                         and not d.vdc.drones), None)
            if node is None:
                node = self.add_drone(drone_type=drone_type)
            reports[drone_type] = self.fly_orders(group, node=node,
                                                  resume=resume)
        return reports

    # -- the end-to-end flow -----------------------------------------------------------------
    def fly_orders(self, orders: List[Order], node: Optional[DroneNode] = None,
                   resume: bool = False) -> MissionReport:
        """Plan and execute one flight servicing ``orders``.

        With ``resume=True``, tenants with a resumable VDR entry are
        restored from their stored diff instead of a clean image.
        """
        if node is None:
            node = self.fleet[0] if self.fleet else self.add_drone()
        definitions = [order.definition for order in orders]
        plans = self.planner.plan(definitions,
                                  battery_j=node.battery.remaining_j * 0.8)
        # Communicate operating windows (Section 2).
        order_ids = {}
        for order in orders:
            order_ids[order.definition.name] = order.order_id
            for plan in plans:
                try:
                    window = plan.operating_window(order.definition.name)
                except KeyError:
                    continue
                self.portal.confirm_window(order.order_id, *window)
                break
        # Create (or resume) the virtual drones on the hardware.
        for order in orders:
            name = order.definition.name
            resume_diff = None
            completed = None
            if resume:
                entry = self.vdr.latest_for(name)
                if entry is not None and entry.resumable:
                    resume_diff = entry.diff
                    completed = entry.completed_waypoints
            vdrone = node.start_virtual_drone(
                order.definition,
                app_manifests=self._manifests_for(order),
                resume_diff=resume_diff,
                completed_waypoints=completed,
            )
            for package, app in vdrone.env.apps.items():
                installer = self.app_behaviors.get(package)
                if installer is not None:
                    # Remembered so a supervision restart can rewire the
                    # restored app instances (vdc.restart_virtual_drone).
                    vdrone.installers[package] = installer
                    installer(app, vdrone.sdk, vdrone)
        node.boot()
        # Execute every planned flight, swapping a fresh pack in between.
        report: MissionReport = None
        for index, plan in enumerate(plans):
            if index:
                node.battery.swap_pack()
            runner = MissionRunner(node, plan, portal=self.portal,
                                   order_ids=order_ids)
            flight_report = runner.execute()
            if report is None:
                report = flight_report
            else:
                report.merge(flight_report)
        return report
