"""AnDrone assembled: the paper's system, end to end.

* :mod:`repro.core.hardware` — the prototype hardware profile (Raspberry
  Pi 3 + Navio2 + camera + battery) and its device inventory;
* :mod:`repro.core.power` — the SoC power model and battery-draw monitor
  behind Figure 13 and energy billing;
* :mod:`repro.core.drone_node` — one physical drone: kernel, containers
  (device, flight, virtual drones), Binder, MAVProxy, VDC;
* :mod:`repro.core.androne` — the full system: cloud service + fleet;
* :mod:`repro.core.mission` — flies a flight plan, coordinating the
  planner, VDC, VFCs, tenants and the portal (the Figure 4 workflow).
"""

from repro.core.hardware import HardwareProfile
from repro.core.power import PowerModel, PowerMonitor
from repro.core.drone_node import DroneNode
from repro.core.androne import AnDroneSystem
from repro.core.mission import MissionRunner, MissionReport

__all__ = [
    "HardwareProfile",
    "PowerModel",
    "PowerMonitor",
    "DroneNode",
    "AnDroneSystem",
    "MissionRunner",
    "MissionReport",
]
