"""Mission execution: the Figure 4 workflow in code.

The :class:`MissionRunner` is the autonomous pilot half of the flight
planner: it flies the physical drone along a :class:`FlightPlan`,
notifies the VDC at waypoint boundaries, waits for tenants to complete
(or exhausts their window), returns the drone to base, and triggers the
end-of-flight offload (VDR save, cloud-storage upload, portal
notifications, invoices).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cloud.planner.flight_plan import FlightPlan
from repro.flight.geo import GeoPoint
from repro.mavlink.enums import CopterMode, MavCommand
from repro.mavlink.messages import CommandLong
from repro.sim import Process, Timeout


class MissionError(RuntimeError):
    """The mission could not proceed (arming failure, nav timeout, ...)."""


@dataclass
class MissionEvent:
    time_s: float
    text: str


@dataclass
class MissionReport:
    """What happened on one flight."""

    events: List[MissionEvent] = field(default_factory=list)
    waypoints_serviced: int = 0
    tenants_completed: List[str] = field(default_factory=list)
    tenants_interrupted: List[str] = field(default_factory=list)
    vdr_entries: Dict[str, str] = field(default_factory=dict)
    energy_by_account: Dict[str, float] = field(default_factory=dict)
    duration_s: float = 0.0
    returned_home: bool = False

    def log(self, time_us: int, text: str) -> None:
        self.events.append(MissionEvent(time_us / 1e6, text))

    def merge(self, other: "MissionReport") -> None:
        """Fold a later flight's report into this one (multi-flight days)."""
        self.events.extend(other.events)
        self.waypoints_serviced += other.waypoints_serviced
        self.tenants_completed = other.tenants_completed
        self.tenants_interrupted = other.tenants_interrupted
        self.vdr_entries.update(other.vdr_entries)
        self.energy_by_account = other.energy_by_account
        self.duration_s += other.duration_s
        self.returned_home = other.returned_home


class MissionRunner:
    """Flies one FlightPlan on one DroneNode."""

    def __init__(self, node, plan: FlightPlan, portal=None,
                 order_ids: Optional[Dict[str, int]] = None,
                 cruise_alt_m: float = 15.0,
                 waypoint_accept_m: float = 3.5,
                 nav_timeout_s: float = 240.0,
                 abort_check: Optional[Callable[[], Optional[str]]] = None):
        """``abort_check`` is polled between waypoints; returning a reason
        string aborts the flight: remaining tenants are force-finished
        (resumable) and the drone returns to base — the weather flow of
        Section 2."""
        self.node = node
        self.plan = plan
        self.portal = portal
        self.order_ids = order_ids or {}
        self.cruise_alt_m = cruise_alt_m
        self.waypoint_accept_m = waypoint_accept_m
        self.nav_timeout_s = nav_timeout_s
        self.abort_check = abort_check
        self.report = MissionReport()
        self._done_waypoints: List[str] = []

    # -- helpers ---------------------------------------------------------------------
    def _master(self, command: MavCommand, **params):
        return self.node.proxy.master_command(
            CommandLong(command=int(command), **params))

    def _wait_steps(self, predicate: Callable[[], bool], timeout_s: float):
        """Generator: poll ``predicate`` every 250 ms of sim time.

        The final ``yield`` communicates the result through the mission
        generator's local variable pattern: callers inspect
        ``predicate()`` after iteration.
        """
        sim = self.node.sim
        deadline = sim.now + int(timeout_s * 1e6)
        while sim.now < deadline and not predicate():
            yield Timeout(250_000)

    def _fly_to_steps(self, point: GeoPoint):
        autopilot = self.node.sitl.autopilot
        self.node.proxy.master_set_mode(CopterMode.GUIDED)
        self._master(MavCommand.NAV_WAYPOINT, param5=point.latitude,
                     param6=point.longitude, param7=point.altitude_m)

        def arrived():
            return (autopilot.position().horizontal_distance_to(point)
                    <= self.waypoint_accept_m)

        for step in self._wait_steps(arrived, self.nav_timeout_s):
            yield step
        if not arrived():
            raise MissionError(
                f"navigation timeout toward {point.latitude:.6f},"
                f"{point.longitude:.6f}")

    # -- the flight ------------------------------------------------------------------------
    def steps(self):
        """The mission as a plain generator, for embedding in a larger
        simulation process (a fleet harness chaining flights on one
        drone while other drones fly concurrently)."""
        return self._mission_steps()

    def start_async(self) -> Process:
        """Run the mission as a simulation process (non-blocking), so
        several drones can fly concurrently on the shared clock."""
        return Process(self.node.sim, self._mission_steps(),
                       name=f"mission-{self.plan.flight_id}")

    def execute(self) -> MissionReport:
        """Run the mission to completion, driving the simulator."""
        process = self.start_async()
        sim = self.node.sim
        while not process.done:
            if not sim.step():
                break
        if process.exception is not None:
            raise process.exception
        return self.report

    def _mission_steps(self):
        node, sim, report = self.node, self.node.sim, self.report
        start_us = sim.now
        vdc = node.vdc
        vdc.on_waypoint_done = self._done_waypoints.append

        # Portal: flight started, hand out access info.
        for tenant, order_id in self.order_ids.items():
            if self.portal is not None:
                self.portal.flight_started(order_id, ip="203.0.113.7",
                                           port=5000 + order_id)

        report.log(sim.now, "takeoff")
        self.node.proxy.master_set_mode(CopterMode.GUIDED)
        result = self._master(MavCommand.COMPONENT_ARM_DISARM, param1=1.0)
        if int(result) != 0:
            raise MissionError(f"arming denied: {result}")
        self._master(MavCommand.NAV_TAKEOFF, param7=self.cruise_alt_m)

        def at_altitude():
            return (node.sitl.autopilot.position_est.position[2]
                    > self.cruise_alt_m - 1.5)

        yield from self._wait_steps(at_altitude, 60.0)
        if not at_altitude():
            raise MissionError("takeoff did not reach cruise altitude")

        aborted_reason = None
        for stop in self.plan.stops:
            if self.abort_check is not None:
                aborted_reason = self.abort_check()
                if aborted_reason is not None:
                    report.log(sim.now, f"flight aborted: {aborted_reason}")
                    for name, vdrone in vdc.drones.items():
                        if not vdrone.finished:
                            vdc.force_finish(name, aborted_reason)
                    break
            tenant = stop.tenant
            drone = vdc.drones.get(tenant)
            if drone is None or drone.finished:
                continue
            if stop.waypoint_index in drone.completed:
                continue   # serviced on a previous flight (resume)
            report.log(sim.now, f"enroute to {tenant}#{stop.waypoint_index}")
            drone.vfc.waypoint = stop.location
            drone.vfc.begin_approach()
            yield from self._fly_to_steps(stop.location)
            report.log(sim.now, f"waypoint reached: {tenant}#{stop.waypoint_index}")
            vdc.waypoint_reached(tenant, stop.waypoint_index)
            # The tenant now operates; wait for it to complete (the SDK's
            # waypointCompleted) or for the VDC to force-finish it.
            window_s = min(vdc.time_left(tenant) + 10.0, 600.0)
            yield from self._wait_steps(
                lambda: tenant in self._done_waypoints, window_s)
            if tenant not in self._done_waypoints:
                vdc.force_finish(tenant, "operating window exhausted")
            self._done_waypoints.clear()
            report.waypoints_serviced += 1
            # Re-assert planner control for the transit leg.
            self.node.proxy.master_set_mode(CopterMode.GUIDED)

        report.log(sim.now, "return to base")
        self._master(MavCommand.NAV_RETURN_TO_LAUNCH)

        def landed():
            return (not node.sitl.autopilot.armed
                    and node.sitl.physics.position[2] < 0.5)

        yield from self._wait_steps(landed, self.nav_timeout_s * 2)
        report.returned_home = landed()
        report.log(sim.now, "landed" if report.returned_home else "RTL timeout")

        # Offload: VDR save, file upload, portal notifications.
        report.vdr_entries = vdc.save_all_to_vdr()
        for tenant, drone in vdc.drones.items():
            interrupted = drone.force_finished_reason is not None
            (report.tenants_interrupted if interrupted
             else report.tenants_completed).append(tenant)
            order_id = self.order_ids.get(tenant)
            if self.portal is not None and order_id is not None:
                links = []
                if vdc.cloud_storage is not None:
                    links = [vdc.cloud_storage.link_for(tenant, p)
                             for p in vdc.cloud_storage.list_files(tenant)]
                self.portal.flight_completed(order_id, links,
                                             interrupted=interrupted)
        report.energy_by_account = node.battery.accounts()
        report.duration_s = (sim.now - start_us) / 1e6
        return report
