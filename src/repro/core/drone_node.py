"""One physical drone: the onboard virtualization architecture assembled.

Boot order mirrors the prototype: host OS (kernel + VDC memory), device
container (minimal Android with exclusive device access), flight
container (real-time Linux + ArduPilot + MAVProxy, its sensors reached
through the Binder HAL bridge of Section 4.3), then virtual drones on
demand.
"""

from __future__ import annotations

from typing import Dict, Optional

import repro.obs as obs
from repro.android.environment import AndroidEnvironment
from repro.binder import BinderDriver
from repro.binder.driver import TransientBinderError
from repro.faults.policies import RetriesExhausted, RetryPolicy, retry_call
from repro.containers.image import Image, Layer
from repro.containers.runtime import ContainerRuntime
from repro.core.hardware import HardwareProfile
from repro.core.power import PowerMonitor
from repro.devices.gps import GpsFix
from repro.devices.imu import ImuReading
from repro.flight.geo import GeoPoint
from repro.flight.logs import FlightLog
from repro.flight.sitl import SitlDrone
from repro.kernel import Kernel, SchedPolicy, ops
from repro.kernel.config import PreemptionMode
from repro.mavproxy import MavProxy
from repro.sim import RngRegistry, Simulator
from repro.vdc.controller import VirtualDroneController

#: Memory footprints from Section 6.3 (kB).
HOST_BASE_KB = 95 * 1024
DEVICE_CONTAINER_KB = 100 * 1024
FLIGHT_CONTAINER_KB = 50 * 1024


class HalSensors:
    """The flight container's sensor frontend.

    "AnDrone introduces additional hardware abstraction layer (HAL)
    support to the flight container to provide a Binder based bridge
    between the controller and the device container's device services"
    (Section 4.3).  IMU/baro/compass go through SensorService (NDK path);
    GPS uses the native LocationManagerService interface the paper had to
    create.
    """

    #: Backoff for transient binder/service failures on the sensor path.
    #: The flight loop cannot block, so delays are accounted, not slept
    #: (see repro.faults.policies); after the budget the bridge degrades
    #: to the last good sample rather than crashing the estimator.
    RETRY = RetryPolicy(max_attempts=3, base_us=2_000, cap_us=50_000)

    def __init__(self, driver: BinderDriver, device_env: AndroidEnvironment):
        # The bridge opens Binder inside the device container's namespace.
        self._proc = driver.open(2, euid=0, container="flight",
                                 device_ns=device_env.device_ns)
        self._handles: Dict[str, int] = {}
        #: last good reply per sensor, the hold-last-sample fallback.
        self._last: Dict[str, dict] = {}
        self.calls = 0
        self.held_samples = 0

    def _service(self, name: str) -> int:
        if name not in self._handles:
            reply = self._proc.transact(0, "get", {"name": name})
            if reply.get("status") != "ok":
                raise LookupError(f"HAL bridge: service {name!r} unavailable")
            self._handles[name] = reply["service"]
        return self._handles[name]

    class _TransientReply(RuntimeError):
        """A reply marked ``transient`` — retryable, unlike a denial."""

    def _transact_sensor(self, sensor: str, fn) -> dict:
        """Run one sensor transaction with retry + hold-last degradation."""
        def attempt():
            reply = fn()
            if reply.get("status") == "ok":
                return reply
            if reply.get("transient"):
                raise HalSensors._TransientReply(str(reply))
            raise RuntimeError(f"HAL bridge: {sensor} read failed: {reply}")

        try:
            reply = retry_call(
                attempt, self.RETRY,
                retry_on=(HalSensors._TransientReply, TransientBinderError),
                label=f"hal.{sensor}")
        except RetriesExhausted:
            held = self._last.get(sensor)
            if held is None:
                raise RuntimeError(
                    f"HAL bridge: {sensor} unavailable and no sample held")
            self.held_samples += 1
            obs.counter("fault.sensor_holds", sensor=sensor).inc()
            return held
        self._last[sensor] = reply
        return reply

    def _read(self, sensor: str) -> dict:
        self.calls += 1
        return self._transact_sensor(sensor, lambda: self._proc.transact(
            self._service("SensorService"), "read", {"sensor": sensor}))

    def read_imu(self) -> ImuReading:
        data = self._read("imu")["reading"]
        return ImuReading(time_us=data["time_us"], accel=tuple(data["accel"]),
                          gyro=tuple(data["gyro"]))

    def read_baro_alt(self) -> float:
        return self._read("barometer")["altitude_m"]

    def read_heading(self) -> float:
        return self._read("magnetometer")["heading_rad"]

    def read_gps(self) -> GpsFix:
        self.calls += 1
        reply = self._transact_sensor("gps", lambda: self._proc.transact(
            self._service("LocationManagerService"), "native_get_location", {}))
        return GpsFix(**reply["fix"])


def _base_images(runtime: ContainerRuntime) -> None:
    """Tag the three base images every drone carries."""
    # Sizes loosely proportional to a real Android Things system image,
    # so storage-dedup measurements behave like the paper's.
    android_base = Image([Layer({
        "/system/build.prop": "ro.build.version=android-things-1.0.3",
        "/system/framework/framework.jar": "f" * 220_000,
        "/system/framework/services.jar": "s" * 160_000,
        "/system/lib/libandroid_runtime.so": "r" * 90_000,
        "/system/bin/servicemanager": "servicemanager-bin",
        "/system/bin/app_process": "zygote-bin",
    }, comment="android-things-base")], tag="android-things")
    runtime.images.tag("android-things", android_base)
    runtime.images.tag("android-things-minimal", Image([
        android_base.layers[0],
        Layer({"/system/etc/init/disable-ui.rc": "service surfaceflinger disabled"},
              comment="device-container-overlay"),
    ]))
    runtime.images.tag("alpine-flight", Image([Layer({
        "/etc/alpine-release": "3.7.0",
        "/usr/bin/arducopter": "ardupilot-3.4.4-bin",
        "/usr/bin/mavproxy": "mavproxy-modified",
    }, comment="alpine-flight-base")]))


class DroneNode:
    """A physical drone running the AnDrone onboard stack."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        seed: int = 0,
        profile: Optional[HardwareProfile] = None,
        preemption: PreemptionMode = PreemptionMode.PREEMPT_RT,
        home: Optional[GeoPoint] = None,
        sitl_rate_hz: float = 100.0,
        use_hal_sensors: bool = True,
        flight_log: Optional[FlightLog] = None,
        vdr=None,
        cloud_storage=None,
        run_flight_rt_thread: bool = False,
    ):
        self.sim = sim or Simulator()
        self.rng = RngRegistry(seed)
        self.profile = profile or HardwareProfile()
        self.kernel = Kernel(self.sim, self.rng,
                             self.profile.kernel_config(preemption), name="drone")
        self.runtime = ContainerRuntime(self.kernel)
        _base_images(self.runtime)
        self.kernel.memory.allocate("host-base", HOST_BASE_KB)
        self.driver = BinderDriver(device_container_name="device")
        self.driver.bind_sim(self.sim)
        self.battery = self.profile.build_battery()

        # --- flight physics first (devices need its state snapshots) ---
        self._flight_log = flight_log
        self._pending_sitl_home = home
        self._sitl_rate_hz = sitl_rate_hz
        self._use_hal = use_hal_sensors

        # --- device container ---
        self.device_container = self.runtime.create(
            "device", "android-things-minimal", DEVICE_CONTAINER_KB)
        self.device_container.start()
        self.device_env = AndroidEnvironment(
            self.driver, "device", self.device_container.namespaces.device_ns,
            is_device_container=True)

        # --- flight container ---
        self.flight_container = self.runtime.create(
            "flight", "alpine-flight", FLIGHT_CONTAINER_KB)
        self.flight_container.start()

        # SITL/flight controller construction is deferred until the device
        # bus exists, since the bus samples physics state.
        self.sitl = SitlDrone(
            self.sim, self.rng.fork("sitl"),
            home=home, rate_hz=sitl_rate_hz, log=flight_log,
            sensors_factory=(self._hal_factory if use_hal_sensors else None),
        )
        self.bus = self.profile.build_device_bus(self.sitl.physics.snapshot, self.rng)
        self.device_env.system_server.start(self.bus)
        if use_hal_sensors:
            # Now that services exist, bind the autopilot's HAL frontend.
            self.sitl.autopilot.sensors = HalSensors(self.driver, self.device_env)

        self.proxy = MavProxy(self.sim, self.sitl)
        self.vdc = VirtualDroneController(
            self.sim, self.kernel, self.runtime, self.driver, self.device_env,
            self.proxy, self.battery, base_image_tag="android-things",
            vdr=vdr, cloud_storage=cloud_storage,
        )
        self.power = PowerMonitor(
            self.sim, self.kernel, self.battery,
            physics=self.sitl.physics,
            active_account=lambda: self.vdc.active_tenant,
        )
        self._rt_flight_thread = None
        if run_flight_rt_thread:
            self._start_flight_rt_thread()

    def _hal_factory(self, physics):
        """Placeholder sensors until the device container is up."""
        from repro.flight.autopilot import DirectSensors

        return DirectSensors(physics, self.rng.stream("bootstrap-sensors"))

    def _start_flight_rt_thread(self) -> None:
        """Model ArduPilot's fast loop as a real SCHED_FIFO kernel thread,
        so virtual drone workloads contend with it (Sections 6.1/6.2)."""
        def fast_loop():
            period = 2_500.0  # 400 Hz
            while True:
                yield ops.Sleep(period)
                yield ops.Cpu(180.0)   # estimator + PID + mixer cost

        self._rt_flight_thread = self.flight_container.spawn(
            fast_loop(), "arducopter-fastloop",
            policy=SchedPolicy.FIFO, priority=99,
        )

    # -- lifecycle ------------------------------------------------------------------
    def boot(self) -> None:
        """Start the flight stack and power monitoring."""
        self.sitl.start()
        self.power.start()

    def running_virtual_drones(self) -> int:
        return sum(1 for d in self.vdc.drones.values()
                   if d.container.state.value == "running")

    def start_virtual_drone(self, definition, app_manifests=None,
                            template=None, resume_diff=None,
                            completed_waypoints=None):
        """Create a virtual drone; updates power-model container count."""
        drone = self.vdc.create_virtual_drone(
            definition, app_manifests=app_manifests,
            template=template, resume_diff=resume_diff,
            completed_waypoints=completed_waypoints)
        self.power.containers = self.running_virtual_drones()
        return drone

    def memory_usage_mb(self) -> float:
        return self.kernel.memory.used_kb / 1024.0
