"""SoC power model and battery-draw monitoring.

Calibrated to Section 6.4's Monsoon measurements: the Pi idles around
1.65 W (stock Android Things on its launcher), AnDrone with three idle
virtual drones draws ~1.7 W (all configurations within 3% of stock), and
a fully stressed system draws 3.4 W regardless of configuration.
Compute power "is insignificant when compared to the power draw of the
rest of the drone" (>100 W in flight) — which the monitor makes visible
by accounting both against the same battery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.devices.battery import Battery, BatteryDepletedError


@dataclass
class PowerModel:
    """CPU-utilization-driven SoC power."""

    idle_w: float = 1.65
    max_w: float = 3.40
    #: extra standby draw per running container (page cache, daemons).
    per_container_w: float = 0.012

    def soc_power_w(self, cpu_utilization: float, containers: int = 0) -> float:
        """Power at a given average CPU utilization in [0, 1]."""
        utilization = min(1.0, max(0.0, cpu_utilization))
        return (self.idle_w
                + (self.max_w - self.idle_w) * utilization
                + self.per_container_w * containers)


class PowerMonitor:
    """Periodic sampler: turns kernel utilization and propulsion power
    into battery draw, attributed per tenant for billing."""

    def __init__(self, sim, kernel, battery: Battery,
                 model: Optional[PowerModel] = None,
                 physics=None, active_account=None,
                 period_us: int = 1_000_000):
        """``active_account`` is a zero-arg callable naming who currently
        holds flight control (the VDC's active tenant), or None."""
        self.sim = sim
        self.kernel = kernel
        self.battery = battery
        self.model = model or PowerModel()
        self.physics = physics
        self.active_account = active_account
        self.period_us = period_us
        self._last_busy_us = 0.0
        self._last_sample_us = 0
        self._running = False
        self.samples = []          # (time_us, soc_w, propulsion_w)
        self.containers = 0
        self.depleted = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._last_busy_us = self.kernel.cpu_busy_integral_us()
        self._last_sample_us = self.sim.now
        self.sim.after(self.period_us, self._tick)

    def stop(self) -> None:
        self._running = False

    def utilization_since_last(self) -> float:
        busy = self.kernel.cpu_busy_integral_us()
        span = max(1, self.sim.now - self._last_sample_us)
        cpus = self.kernel.config.num_cpus
        return min(1.0, (busy - self._last_busy_us) / (span * cpus))

    def _tick(self) -> None:
        if not self._running:
            return
        span_s = (self.sim.now - self._last_sample_us) / 1e6
        utilization = self.utilization_since_last()
        soc_w = self.model.soc_power_w(utilization, self.containers)
        propulsion_w = self.physics.propulsion_power_w() if self.physics else 0.0
        account = "platform"
        if self.active_account is not None:
            tenant = self.active_account()
            if tenant:
                account = tenant
        try:
            # Compute power is platform overhead; propulsion is billed to
            # whichever tenant is operating at its waypoint.
            self.battery.draw(soc_w, span_s, account="platform")
            if propulsion_w > 0:
                self.battery.draw(propulsion_w, span_s, account=account)
        except BatteryDepletedError:
            self.depleted = True
            self._running = False
            return
        self.samples.append((self.sim.now, soc_w, propulsion_w))
        self._last_busy_us = self.kernel.cpu_busy_integral_us()
        self._last_sample_us = self.sim.now
        self.sim.after(self.period_us, self._tick)

    def average_soc_power_w(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s[1] for s in self.samples) / len(self.samples)
