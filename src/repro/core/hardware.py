"""Hardware profiles.

The paper's prototype: DJI F450 airframe, four MN2213 motors, Raspberry
Pi 3 Model B (4x Cortex-A53 @1.2 GHz, 1 GB RAM with 880 MB usable), Emlid
Navio2 (IMU, barometer, GPS, magnetometer), Pi Camera v2, Turnigy
5000 mAh 3S pack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.devices import (
    Barometer,
    Battery,
    Camera,
    DeviceBus,
    GpsReceiver,
    Imu,
    Magnetometer,
    Microphone,
    Speaker,
)
from repro.kernel.config import KernelConfig, PreemptionMode


@dataclass
class HardwareProfile:
    """Static description of one drone's hardware."""

    name: str = "rpi3-navio2"
    num_cpus: int = 4
    cpu_freq_mhz: int = 1200
    memory_kb: int = 880 * 1024
    battery_capacity_wh: float = 55.5
    camera_width: int = 3280
    camera_height: int = 2464

    def kernel_config(self, preemption: PreemptionMode = PreemptionMode.PREEMPT_RT,
                      **overrides) -> KernelConfig:
        return KernelConfig(
            num_cpus=self.num_cpus,
            cpu_freq_mhz=self.cpu_freq_mhz,
            memory_kb=self.memory_kb,
            preemption=preemption,
            **overrides,
        )

    def build_device_bus(self, state_provider: Callable, rng) -> DeviceBus:
        """Instantiate the prototype's device inventory."""
        bus = DeviceBus()
        bus.register(Camera(state_provider=state_provider,
                            width=self.camera_width, height=self.camera_height))
        bus.register(GpsReceiver(state_provider=state_provider,
                                 rng=rng.stream("gps.noise")))
        bus.register(Imu(state_provider=state_provider, rng=rng.stream("imu.noise")))
        bus.register(Barometer(state_provider=state_provider,
                               rng=rng.stream("baro.noise")))
        bus.register(Magnetometer(state_provider=state_provider,
                                  rng=rng.stream("mag.noise")))
        bus.register(Microphone())
        bus.register(Speaker(name="speakers"))
        from repro.devices.gimbal import Gimbal

        bus.register(Gimbal(state_provider=state_provider))
        return bus

    def build_battery(self) -> Battery:
        return Battery(capacity_wh=self.battery_capacity_wh)


#: The portal's drone types (Section 2: "drones specializing in obtaining
#: video, drones equipped with specialized sensors, etc.") mapped to
#: hardware profiles.  The video platform carries a heavier stabilized
#: camera and a bigger pack; the sensor platform trades camera resolution
#: for endurance.
DRONE_TYPE_PROFILES = {
    "standard": HardwareProfile(name="rpi3-navio2"),
    "video": HardwareProfile(
        name="rpi3-navio2-video",
        battery_capacity_wh=88.8,       # 8000 mAh 3S
        camera_width=4056, camera_height=3040,
    ),
    "sensor": HardwareProfile(
        name="rpi3-navio2-sensor",
        battery_capacity_wh=66.6,
        camera_width=1640, camera_height=1232,
    ),
    # Multi-tenant platform for fleet soaks: a CM4-class companion with
    # 4 GB usable RAM (16+ virtual drones at 185 MB each, Section 6.3's
    # footprint) and a bigger pack to hold many operating windows.
    "dense": HardwareProfile(
        name="cm4-navio2-dense",
        cpu_freq_mhz=1500,
        memory_kb=4 * 1024 * 1024,
        battery_capacity_wh=111.0,      # 10 Ah 3S
    ),
}


def profile_for_drone_type(drone_type: str) -> HardwareProfile:
    """The hardware profile backing a portal drone type."""
    if drone_type not in DRONE_TYPE_PROFILES:
        raise KeyError(f"unknown drone type {drone_type!r}: "
                       f"choose from {sorted(DRONE_TYPE_PROFILES)}")
    return DRONE_TYPE_PROFILES[drone_type]
